//! DBSCAN density-based clustering with explicit noise labeling.

use serde::{Deserialize, Serialize};

use crate::{check_points, ClusterError};

/// Per-point DBSCAN assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbscanLabel {
    /// Member of the cluster with the given index.
    Cluster(usize),
    /// Density noise (no core point within ε).
    Noise,
}

/// Runs DBSCAN with radius `eps` and density threshold `min_points`
/// (neighborhood counts include the point itself).
///
/// # Errors
///
/// [`ClusterError::InvalidParameter`] if `eps <= 0` or
/// `min_points == 0`; [`ClusterError::InvalidInput`] on empty/ragged
/// input.
///
/// # Example
///
/// ```
/// use edm_cluster::dbscan::{dbscan, DbscanLabel};
///
/// let pts = vec![vec![0.0], vec![0.1], vec![0.2], vec![50.0]];
/// let labels = dbscan(&pts, 0.5, 2)?;
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[3], DbscanLabel::Noise);
/// # Ok::<(), edm_cluster::ClusterError>(())
/// ```
pub fn dbscan(
    x: &[Vec<f64>],
    eps: f64,
    min_points: usize,
) -> Result<Vec<DbscanLabel>, ClusterError> {
    if !(eps > 0.0) {
        return Err(ClusterError::InvalidParameter {
            name: "eps",
            value: eps,
            constraint: "must be positive",
        });
    }
    if min_points == 0 {
        return Err(ClusterError::InvalidParameter {
            name: "min_points",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    check_points(x)?;
    let n = x.len();
    let eps2 = eps * eps;
    let neighbors = |i: usize| -> Vec<usize> {
        (0..n).filter(|&j| edm_linalg::sq_dist(&x[i], &x[j]) <= eps2).collect()
    };

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut assign = vec![UNVISITED; n];
    let mut cluster = 0usize;
    for i in 0..n {
        if assign[i] != UNVISITED {
            continue;
        }
        let nb = neighbors(i);
        if nb.len() < min_points {
            assign[i] = NOISE;
            continue;
        }
        // Start a new cluster; BFS over density-reachable points.
        assign[i] = cluster;
        let mut queue: Vec<usize> = nb;
        while let Some(j) = queue.pop() {
            if assign[j] == NOISE {
                assign[j] = cluster; // border point adopted
            }
            if assign[j] != UNVISITED {
                continue;
            }
            assign[j] = cluster;
            let nbj = neighbors(j);
            if nbj.len() >= min_points {
                queue.extend(nbj);
            }
        }
        cluster += 1;
    }
    Ok(assign
        .into_iter()
        .map(|a| if a == NOISE { DbscanLabel::Noise } else { DbscanLabel::Cluster(a) })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dense_blobs_one_outlier() {
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push(vec![i as f64 * 0.1, 0.0]);
        }
        for i in 0..6 {
            pts.push(vec![i as f64 * 0.1 + 10.0, 0.0]);
        }
        pts.push(vec![5.0, 5.0]);
        let labels = dbscan(&pts, 0.3, 3).unwrap();
        assert_eq!(labels[0], DbscanLabel::Cluster(0));
        assert_eq!(labels[5], DbscanLabel::Cluster(0));
        assert_eq!(labels[6], DbscanLabel::Cluster(1));
        assert_eq!(labels[12], DbscanLabel::Noise);
    }

    #[test]
    fn chain_is_density_connected() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.4]).collect();
        let labels = dbscan(&pts, 0.5, 2).unwrap();
        assert!(labels.iter().all(|&l| l == DbscanLabel::Cluster(0)));
    }

    #[test]
    fn everything_noise_when_sparse() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 100.0]).collect();
        let labels = dbscan(&pts, 1.0, 2).unwrap();
        assert!(labels.iter().all(|&l| l == DbscanLabel::Noise));
    }

    #[test]
    fn border_point_joins_cluster() {
        // 0.0, 0.4, 0.8 are core-dense; 1.7 is within eps of 0.8 only
        // (not core with min_points = 3) -> border, adopted.
        let pts = vec![vec![0.0], vec![0.4], vec![0.8], vec![1.7]];
        let labels = dbscan(&pts, 1.0, 3).unwrap();
        assert_eq!(labels[3], DbscanLabel::Cluster(0));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(dbscan(&[vec![0.0]], 0.0, 1).is_err());
        assert!(dbscan(&[vec![0.0]], 1.0, 0).is_err());
    }
}
