//! # edm-cluster — the unsupervised clustering methods of paper §2.4
//!
//! "Clustering is among the most widely used unsupervised learning
//! methods in data mining" — the paper names six algorithm families, all
//! implemented here:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding
//! * [`hierarchical`] — agglomerative clustering with selectable linkage
//! * [`dbscan`] — density-based clustering with noise labeling
//! * [`spectral`] — normalized-Laplacian spectral embedding + k-means
//! * [`meanshift`] — flat-kernel mode seeking
//! * [`affinity`] — affinity propagation message passing
//!
//! The paper's caveat applies verbatim: "the result may not be robust
//! \[and\] largely depends on the definition of the learning space" — the
//! Fig. 10 DSTC flow in `edm-core` demonstrates the point by clustering
//! paths in a (predicted, measured) delay space where the structure is
//! visible.
//!
//! [`metrics`] has silhouette scores and the Rand index for validating a
//! clustering against ground truth in tests.

#![forbid(unsafe_code)]

pub mod affinity;
pub mod dbscan;
pub mod hierarchical;
pub mod kmeans;
pub mod meanshift;
pub mod metrics;
pub mod spectral;

use std::fmt;

/// Errors from clustering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The input was empty, ragged, or smaller than the requested k.
    InvalidInput(String),
    /// A parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An internal numeric step failed (e.g. the spectral eigensolve).
    Numeric(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidInput(m) => write!(f, "invalid clustering input: {m}"),
            ClusterError::InvalidParameter { name, value, constraint } => {
                write!(f, "parameter {name} = {value} {constraint}")
            }
            ClusterError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

pub(crate) fn check_points(x: &[Vec<f64>]) -> Result<usize, ClusterError> {
    if x.is_empty() {
        return Err(ClusterError::InvalidInput("no points".into()));
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(ClusterError::InvalidInput("ragged point rows".into()));
    }
    Ok(d)
}
