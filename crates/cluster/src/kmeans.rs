//! Lloyd's k-means with k-means++ seeding.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{check_points, ClusterError};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index per input point.
    pub labels: Vec<usize>,
    /// Final centroids, one row per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Points scored per unit of parallel work in the assignment sweep.
const ASSIGN_CHUNK: usize = 256;

/// Runs k-means.
///
/// Seeding is k-means++ (distance-proportional), then Lloyd iterations
/// until assignments stabilize or `max_iter` is reached. Empty clusters
/// are re-seeded with the point farthest from its centroid.
///
/// # Errors
///
/// [`ClusterError::InvalidParameter`] if `k == 0`;
/// [`ClusterError::InvalidInput`] if there are fewer points than `k`.
///
/// # Example
///
/// ```
/// use edm_cluster::kmeans::kmeans;
/// use rand::SeedableRng;
///
/// let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let r = kmeans(&pts, 2, 100, &mut rng)?;
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[2]);
/// # Ok::<(), edm_cluster::ClusterError>(())
/// ```
pub fn kmeans<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> Result<KMeansResult, ClusterError> {
    let _span = edm_trace::span("cluster.kmeans.fit");
    if k == 0 {
        return Err(ClusterError::InvalidParameter {
            name: "k",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    let d = check_points(x)?;
    let n = x.len();
    if n < k {
        return Err(ClusterError::InvalidInput(format!("{n} points for k = {k}")));
    }

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(x[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = x.iter().map(|p| edm_linalg::sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All mass at existing centroids: pick any point.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.push(x[next].clone());
        for (i, p) in x.iter().enumerate() {
            d2[i] = d2[i].min(edm_linalg::sq_dist(p, centroids.last().expect("just pushed")));
        }
    }

    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        // Assignment: the O(n·k·d) sweep. Each point's nearest-centroid
        // search is independent, so chunks of the label buffer go to
        // worker threads; every point sees the same centroid order, so
        // the result is identical to the serial sweep.
        let mut new_labels = vec![0usize; n];
        edm_par::for_each_chunk(&mut new_labels, ASSIGN_CHUNK, |c, chunk| {
            let start = c * ASSIGN_CHUNK;
            for (off, slot) in chunk.iter_mut().enumerate() {
                let p = &x[start + off];
                let (best, _) = centroids
                    .iter()
                    .enumerate()
                    .map(|(cl, cen)| (cl, edm_linalg::sq_dist(p, cen)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                    .expect("k >= 1");
                *slot = best;
            }
        });
        let mut changed = new_labels != labels;
        labels = new_labels;
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in x.iter().zip(&labels) {
            counts[l] += 1;
            for (s, &v) in sums[l].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed with the point farthest from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = edm_linalg::sq_dist(&x[a], &centroids[labels[a]]);
                        let db = edm_linalg::sq_dist(&x[b], &centroids[labels[b]]);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("non-empty");
                centroids[c] = x[far].clone();
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = x.iter().zip(&labels).map(|(p, &l)| edm_linalg::sq_dist(p, &centroids[l])).sum();
    if edm_trace::enabled() {
        edm_trace::counter_add("cluster.kmeans.runs", 1);
        edm_trace::counter_add("cluster.kmeans.iterations", iterations as u64);
        edm_trace::record("cluster.kmeans.iterations_per_run", iterations as f64);
    }
    Ok(KMeansResult { labels, centroids, inertia, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let o = i as f64 * 0.01;
            pts.push(vec![0.0 + o, 0.0]);
            pts.push(vec![10.0 + o, 0.0]);
            pts.push(vec![5.0 + o, 8.0]);
        }
        pts
    }

    #[test]
    fn separates_three_blobs() {
        let pts = three_blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let r = kmeans(&pts, 3, 100, &mut rng).unwrap();
        // points of the same blob share a label
        for b in 0..3 {
            let l0 = r.labels[b];
            for i in 0..10 {
                assert_eq!(r.labels[3 * i + b], l0);
            }
        }
        // three distinct labels
        let mut ls = r.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = three_blobs();
        let i1 = kmeans(&pts, 1, 100, &mut StdRng::seed_from_u64(1)).unwrap().inertia;
        let i3 = kmeans(&pts, 3, 100, &mut StdRng::seed_from_u64(1)).unwrap().inertia;
        assert!(i3 < i1);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let r = kmeans(&pts, 3, 50, &mut StdRng::seed_from_u64(2)).unwrap();
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn rejects_bad_k() {
        let pts = vec![vec![0.0]];
        assert!(kmeans(&pts, 0, 10, &mut StdRng::seed_from_u64(0)).is_err());
        assert!(kmeans(&pts, 2, 10, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let r = kmeans(&pts, 2, 50, &mut StdRng::seed_from_u64(5)).unwrap();
        assert!(r.inertia < 1e-18);
    }
}
