//! Agglomerative hierarchical clustering with selectable linkage.

use serde::{Deserialize, Serialize};

use crate::{check_points, ClusterError};

/// How the distance between two clusters is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Mean pairwise distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram: clusters `a` and `b` (indices into
/// the sequence original points `0..n` followed by merge results
/// `n, n+1, …`) joined at `distance`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
}

/// Result of agglomerative clustering cut at `k` clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalResult {
    /// Cluster index per input point (`0..k`).
    pub labels: Vec<usize>,
    /// Full merge history (length `n − k`).
    pub merges: Vec<Merge>,
}

/// Agglomerates points bottom-up until `k` clusters remain.
///
/// O(n³) in the worst case — fine for the diagnostic populations in this
/// workspace (hundreds to a few thousand paths/devices).
///
/// # Errors
///
/// [`ClusterError::InvalidParameter`] if `k == 0`;
/// [`ClusterError::InvalidInput`] if there are fewer points than `k`.
///
/// # Example
///
/// ```
/// use edm_cluster::hierarchical::{agglomerative, Linkage};
///
/// let pts = vec![vec![0.0], vec![0.2], vec![9.0], vec![9.1]];
/// let r = agglomerative(&pts, 2, Linkage::Average)?;
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[2]);
/// # Ok::<(), edm_cluster::ClusterError>(())
/// ```
pub fn agglomerative(
    x: &[Vec<f64>],
    k: usize,
    linkage: Linkage,
) -> Result<HierarchicalResult, ClusterError> {
    if k == 0 {
        return Err(ClusterError::InvalidParameter {
            name: "k",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    check_points(x)?;
    let n = x.len();
    if n < k {
        return Err(ClusterError::InvalidInput(format!("{n} points for k = {k}")));
    }
    // Active clusters: id -> member point indices.
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut merges = Vec::new();
    let mut next_id = n;

    let cluster_dist = |a: &[usize], b: &[usize]| -> f64 {
        let mut acc: f64 = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => 0.0,
            Linkage::Average => 0.0,
        };
        for &i in a {
            for &j in b {
                let d = edm_linalg::sq_dist(&x[i], &x[j]).sqrt();
                match linkage {
                    Linkage::Single => acc = acc.min(d),
                    Linkage::Complete => acc = acc.max(d),
                    Linkage::Average => acc += d,
                }
            }
        }
        if linkage == Linkage::Average {
            acc / (a.len() * b.len()) as f64
        } else {
            acc
        }
    };

    while active.len() > k {
        // Find the closest active pair.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for ai in 0..active.len() {
            for bi in (ai + 1)..active.len() {
                let (ida, idb) = (active[ai], active[bi]);
                let d = cluster_dist(
                    members[ida].as_ref().expect("active"),
                    members[idb].as_ref().expect("active"),
                );
                if d < best.2 {
                    best = (ida, idb, d);
                }
            }
        }
        let (ida, idb, dist) = best;
        let mut merged = members[ida].take().expect("active");
        merged.extend(members[idb].take().expect("active"));
        members.push(Some(merged));
        active.retain(|&id| id != ida && id != idb);
        active.push(next_id);
        merges.push(Merge { a: ida, b: idb, distance: dist });
        next_id += 1;
    }

    let mut labels = vec![0usize; n];
    for (c, &id) in active.iter().enumerate() {
        for &p in members[id].as_ref().expect("active") {
            labels[p] = c;
        }
    }
    Ok(HierarchicalResult { labels, merges })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_count_is_n_minus_k() {
        let pts: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64]).collect();
        let r = agglomerative(&pts, 3, Linkage::Average).unwrap();
        assert_eq!(r.merges.len(), 4);
        let mut ls = r.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn all_linkages_separate_clear_blobs() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.3, 0.1],
            vec![0.1, 0.2],
            vec![8.0, 8.0],
            vec![8.2, 7.9],
            vec![7.9, 8.1],
        ];
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let r = agglomerative(&pts, 2, linkage).unwrap();
            assert_eq!(r.labels[0], r.labels[1]);
            assert_eq!(r.labels[0], r.labels[2]);
            assert_eq!(r.labels[3], r.labels[4]);
            assert_eq!(r.labels[3], r.labels[5]);
            assert_ne!(r.labels[0], r.labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of points 1 apart, then a gap of 1.5, then one point.
        // Single linkage keeps the chain whole at k=2; complete linkage
        // may split the chain instead — we assert single's behavior only.
        let pts: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.5]];
        let r = agglomerative(&pts, 2, Linkage::Single).unwrap();
        assert_eq!(r.labels[0], r.labels[3]);
        assert_ne!(r.labels[0], r.labels[4]);
    }

    #[test]
    fn merge_distances_nondecreasing_for_single_linkage() {
        let pts: Vec<Vec<f64>> = (0..8).map(|i| vec![(i * i) as f64 * 0.3]).collect();
        let r = agglomerative(&pts, 1, Linkage::Single).unwrap();
        for w in r.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-12);
        }
    }

    #[test]
    fn k_one_puts_everything_together() {
        let pts = vec![vec![0.0], vec![100.0]];
        let r = agglomerative(&pts, 1, Linkage::Complete).unwrap();
        assert_eq!(r.labels, vec![0, 0]);
    }
}
