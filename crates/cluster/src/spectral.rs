//! Spectral clustering: RBF affinity graph → symmetric normalized
//! Laplacian → bottom-k eigenvectors → row-normalized k-means
//! (Ng–Jordan–Weiss).
//!
//! The "learning space" point of paper §2.4 made concrete: the same
//! k-means that fails on ring-shaped input data succeeds in the
//! eigenvector embedding.

use rand::Rng;

use crate::kmeans::kmeans;
use crate::{check_points, ClusterError};

/// Runs spectral clustering with an RBF affinity
/// `exp(−γ‖xᵢ−xⱼ‖²)`.
///
/// # Errors
///
/// [`ClusterError::InvalidParameter`] on non-positive `gamma` or zero
/// `k`; [`ClusterError::InvalidInput`] if there are fewer points than
/// `k`; [`ClusterError::Numeric`] if the eigensolve fails.
///
/// # Example
///
/// ```
/// use edm_cluster::spectral::spectral;
/// use rand::SeedableRng;
///
/// let pts = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let labels = spectral(&pts, 2, 1.0, &mut rng)?;
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// # Ok::<(), edm_cluster::ClusterError>(())
/// ```
pub fn spectral<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    k: usize,
    gamma: f64,
    rng: &mut R,
) -> Result<Vec<usize>, ClusterError> {
    if k == 0 {
        return Err(ClusterError::InvalidParameter {
            name: "k",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    if !(gamma > 0.0) {
        return Err(ClusterError::InvalidParameter {
            name: "gamma",
            value: gamma,
            constraint: "must be positive",
        });
    }
    check_points(x)?;
    let n = x.len();
    if n < k {
        return Err(ClusterError::InvalidInput(format!("{n} points for k = {k}")));
    }

    // Affinity and degree.
    let mut w = edm_linalg::Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let a = (-gamma * edm_linalg::sq_dist(&x[i], &x[j])).exp();
            w[(i, j)] = a;
            w[(j, i)] = a;
        }
    }
    let deg: Vec<f64> = (0..n).map(|i| w.row(i).iter().sum::<f64>().max(1e-12)).collect();
    // Normalized affinity D^{-1/2} W D^{-1/2}; its TOP-k eigenvectors
    // equal the bottom-k of the normalized Laplacian.
    let mut norm = edm_linalg::Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            norm[(i, j)] = w[(i, j)] / (deg[i] * deg[j]).sqrt();
        }
    }
    let eig = norm.symmetric_eigen().map_err(|e| ClusterError::Numeric(e.to_string()))?;
    // Embedding: rows of the top-k eigenvector block, row-normalized.
    let embedding: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let row: Vec<f64> = (0..k).map(|c| eig.eigenvectors()[(i, c)]).collect();
            edm_linalg::normalize(&row)
        })
        .collect();
    let result = kmeans(&embedding, k, 200, rng)?;
    Ok(result.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concentric_rings_separate_where_kmeans_fails() {
        // Inner circle r = 1, outer ring r = 5 (the Fig. 3 geometry).
        let mut pts = Vec::new();
        for i in 0..24 {
            let a = i as f64 * std::f64::consts::TAU / 24.0;
            pts.push(vec![a.cos(), a.sin()]);
        }
        for i in 0..24 {
            let a = i as f64 * std::f64::consts::TAU / 24.0;
            pts.push(vec![5.0 * a.cos(), 5.0 * a.sin()]);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let labels = spectral(&pts, 2, 1.0, &mut rng).unwrap();
        // all inner points together, all outer together
        assert!(labels[..24].iter().all(|&l| l == labels[0]));
        assert!(labels[24..].iter().all(|&l| l == labels[24]));
        assert_ne!(labels[0], labels[24]);
        // sanity: plain k-means on the raw coordinates cannot do this
        let km = kmeans(&pts, 2, 200, &mut StdRng::seed_from_u64(7)).unwrap();
        let km_ok = km.labels[..24].iter().all(|&l| l == km.labels[0])
            && km.labels[24..].iter().all(|&l| l == km.labels[24]);
        assert!(!km_ok, "k-means should not separate concentric rings");
    }

    #[test]
    fn blobs_still_work() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.3],
            vec![6.0, 6.0],
            vec![6.1, 5.9],
            vec![5.9, 6.2],
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let labels = spectral(&pts, 2, 0.5, &mut rng).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(spectral(&[vec![0.0]], 0, 1.0, &mut rng).is_err());
        assert!(spectral(&[vec![0.0]], 1, 0.0, &mut rng).is_err());
    }
}
