//! Cluster-quality metrics: silhouette score (internal) and Rand index
//! (against ground truth).

/// Mean silhouette coefficient over all points, in `[−1, 1]`
/// (higher = tighter, better-separated clusters).
///
/// Points in singleton clusters contribute 0 (the usual convention).
/// Returns `0.0` if there are fewer than two clusters.
///
/// # Panics
///
/// Panics if `x` and `labels` have different lengths.
pub fn silhouette(x: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(x.len(), labels.len(), "points and labels must pair up");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mut classes: Vec<usize> = labels.to_vec();
    classes.sort_unstable();
    classes.dedup();
    if classes.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size <= 1 {
            continue; // contributes 0
        }
        // a(i): mean intra-cluster distance; b(i): min mean distance to
        // another cluster.
        let mut a = 0.0;
        let mut b = f64::INFINITY;
        for &c in &classes {
            let mut sum = 0.0;
            let mut count = 0usize;
            for j in 0..n {
                if j != i && labels[j] == c {
                    sum += edm_linalg::sq_dist(&x[i], &x[j]).sqrt();
                    count += 1;
                }
            }
            if count == 0 {
                continue;
            }
            let mean = sum / count as f64;
            if c == own {
                a = mean;
            } else {
                b = b.min(mean);
            }
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

/// Rand index between two labelings, in `[0, 1]`
/// (1 = identical partitions up to label renaming).
///
/// # Panics
///
/// Panics if the labelings have different lengths or fewer than two
/// points.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must have equal length");
    assert!(a.len() >= 2, "rand index needs at least two points");
    let n = a.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silhouette_high_for_clean_blobs() {
        let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
        let good = silhouette(&pts, &[0, 0, 1, 1]);
        let bad = silhouette(&pts, &[0, 1, 0, 1]);
        assert!(good > 0.9);
        assert!(bad < 0.0);
    }

    #[test]
    fn silhouette_degenerate_cases() {
        assert_eq!(silhouette(&[vec![0.0]], &[0]), 0.0);
        assert_eq!(silhouette(&[vec![0.0], vec![1.0]], &[0, 0]), 0.0);
    }

    #[test]
    fn rand_index_invariant_to_renaming() {
        let a = [0, 0, 1, 1, 2];
        let b = [5, 5, 9, 9, 7];
        assert_eq!(rand_index(&a, &b), 1.0);
    }

    #[test]
    fn rand_index_partial_agreement() {
        let a = [0, 0, 1, 1];
        let b = [0, 1, 1, 1];
        // pairs: (01):s/d, (02):d/d, (03):d/d, (12):d/s, (13):d/s, (23):s/s
        // agreements: (02),(03),(23) = 3 of 6
        assert!((rand_index(&a, &b) - 0.5).abs() < 1e-12);
    }
}

/// Picks the k in `2..=max_k` whose k-means clustering maximizes the
/// silhouette score — the standard answer to "how many clusters does my
/// EDA data have" when nothing domain-specific says otherwise.
///
/// Returns `(best_k, best_score, labels)`.
///
/// # Errors
///
/// Propagates k-means errors (e.g. fewer points than `max_k`).
///
/// # Panics
///
/// Panics if `max_k < 2`.
pub fn select_k_by_silhouette<R: rand::Rng + ?Sized>(
    x: &[Vec<f64>],
    max_k: usize,
    rng: &mut R,
) -> Result<(usize, f64, Vec<usize>), crate::ClusterError> {
    assert!(max_k >= 2, "need to consider at least k = 2");
    let mut best: Option<(usize, f64, Vec<usize>)> = None;
    for k in 2..=max_k {
        let result = crate::kmeans::kmeans(x, k, 200, rng)?;
        let score = silhouette(x, &result.labels);
        if best.as_ref().is_none_or(|&(_, s, _)| score > s) {
            best = Some((k, score, result.labels));
        }
    }
    Ok(best.expect("max_k >= 2 guarantees at least one candidate"))
}

#[cfg(test)]
mod k_selection_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_true_cluster_count() {
        // Three well-separated blobs.
        let mut pts = Vec::new();
        for i in 0..12 {
            let o = i as f64 * 0.02;
            pts.push(vec![0.0 + o, 0.0]);
            pts.push(vec![10.0 + o, 0.0]);
            pts.push(vec![5.0 + o, 9.0]);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let (k, score, labels) = select_k_by_silhouette(&pts, 6, &mut rng).unwrap();
        assert_eq!(k, 3, "silhouette picked k = {k} (score {score})");
        assert_eq!(labels.len(), pts.len());
        assert!(score > 0.8);
    }

    #[test]
    fn two_blobs_prefer_two() {
        let pts: Vec<Vec<f64>> =
            (0..10).map(|i| vec![if i < 5 { 0.0 } else { 8.0 } + i as f64 * 0.01]).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let (k, _, _) = select_k_by_silhouette(&pts, 4, &mut rng).unwrap();
        assert_eq!(k, 2);
    }
}
