//! Mean-shift clustering with a flat (uniform-ball) kernel: every point
//! hill-climbs to the mode of the local density; points converging to the
//! same mode form a cluster.

use serde::{Deserialize, Serialize};

use crate::{check_points, ClusterError};

/// Result of mean-shift clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanShiftResult {
    /// Cluster index per input point.
    pub labels: Vec<usize>,
    /// Discovered modes, one per cluster.
    pub modes: Vec<Vec<f64>>,
}

/// Runs mean-shift with ball radius `bandwidth`.
///
/// Modes closer than `bandwidth / 2` are merged. The number of clusters
/// is discovered, not specified — the practical appeal the paper's survey
/// notes for exploratory EDA data.
///
/// # Errors
///
/// [`ClusterError::InvalidParameter`] if `bandwidth <= 0`;
/// [`ClusterError::InvalidInput`] on empty/ragged input.
///
/// # Example
///
/// ```
/// use edm_cluster::meanshift::mean_shift;
///
/// let pts = vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]];
/// let r = mean_shift(&pts, 1.0, 100)?;
/// assert_eq!(r.modes.len(), 2);
/// assert_eq!(r.labels[0], r.labels[1]);
/// # Ok::<(), edm_cluster::ClusterError>(())
/// ```
pub fn mean_shift(
    x: &[Vec<f64>],
    bandwidth: f64,
    max_iter: usize,
) -> Result<MeanShiftResult, ClusterError> {
    if !(bandwidth > 0.0) {
        return Err(ClusterError::InvalidParameter {
            name: "bandwidth",
            value: bandwidth,
            constraint: "must be positive",
        });
    }
    let d = check_points(x)?;
    let bw2 = bandwidth * bandwidth;

    // Shift every point to its local mode.
    let mut converged: Vec<Vec<f64>> = Vec::with_capacity(x.len());
    for start in x {
        let mut p = start.clone();
        for _ in 0..max_iter {
            let mut mean = vec![0.0; d];
            let mut count = 0usize;
            for q in x {
                if edm_linalg::sq_dist(&p, q) <= bw2 {
                    for (m, &v) in mean.iter_mut().zip(q) {
                        *m += v;
                    }
                    count += 1;
                }
            }
            for m in &mut mean {
                *m /= count.max(1) as f64;
            }
            let moved = edm_linalg::sq_dist(&p, &mean);
            p = mean;
            if moved < 1e-12 * bw2 {
                break;
            }
        }
        converged.push(p);
    }

    // Merge modes within bandwidth/2.
    let merge2 = bw2 / 4.0;
    let mut modes: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::with_capacity(x.len());
    for p in &converged {
        match modes.iter().position(|m| edm_linalg::sq_dist(m, p) <= merge2) {
            Some(i) => labels.push(i),
            None => {
                modes.push(p.clone());
                labels.push(modes.len() - 1);
            }
        }
    }
    Ok(MeanShiftResult { labels, modes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_cluster_count() {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(vec![i as f64 * 0.05, 0.0]);
            pts.push(vec![i as f64 * 0.05 + 20.0, 0.0]);
            pts.push(vec![i as f64 * 0.05 + 40.0, 0.0]);
        }
        let r = mean_shift(&pts, 2.0, 200).unwrap();
        assert_eq!(r.modes.len(), 3);
    }

    #[test]
    fn modes_land_near_blob_centers() {
        let pts = vec![vec![0.0], vec![0.2], vec![0.4], vec![10.0], vec![10.2], vec![10.4]];
        let r = mean_shift(&pts, 1.5, 200).unwrap();
        assert_eq!(r.modes.len(), 2);
        let mut centers: Vec<f64> = r.modes.iter().map(|m| m[0]).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((centers[0] - 0.2).abs() < 0.2);
        assert!((centers[1] - 10.2).abs() < 0.2);
    }

    #[test]
    fn wide_bandwidth_gives_one_cluster() {
        let pts = vec![vec![0.0], vec![3.0], vec![6.0]];
        let r = mean_shift(&pts, 100.0, 100).unwrap();
        assert_eq!(r.modes.len(), 1);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        assert!(mean_shift(&[vec![0.0]], 0.0, 10).is_err());
    }
}
