//! Affinity propagation (Frey & Dueck): clusters by passing
//! responsibility/availability messages on a similarity matrix until a
//! set of exemplars emerges. Like mean-shift, the number of clusters is
//! discovered; the `preference` (self-similarity) controls how many.

use serde::{Deserialize, Serialize};

use crate::{check_points, ClusterError};

/// Result of affinity propagation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityResult {
    /// Cluster index per input point.
    pub labels: Vec<usize>,
    /// Point indices chosen as exemplars, one per cluster.
    pub exemplars: Vec<usize>,
    /// Message-passing iterations performed.
    pub iterations: usize,
}

/// Parameters for affinity propagation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffinityParams {
    /// Self-similarity; `None` = median of pairwise similarities
    /// (moderate cluster count). More negative → fewer clusters.
    pub preference: Option<f64>,
    /// Message damping in `[0.5, 1)`.
    pub damping: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Stop after this many iterations without exemplar changes.
    pub convergence_iter: usize,
}

impl Default for AffinityParams {
    fn default() -> Self {
        AffinityParams { preference: None, damping: 0.7, max_iter: 400, convergence_iter: 30 }
    }
}

/// Runs affinity propagation on negative-squared-distance similarities.
///
/// # Errors
///
/// [`ClusterError::InvalidParameter`] if `damping` is outside
/// `[0.5, 1)`; [`ClusterError::InvalidInput`] on empty/ragged input.
///
/// # Example
///
/// ```
/// use edm_cluster::affinity::{affinity_propagation, AffinityParams};
///
/// let pts = vec![vec![0.0], vec![0.3], vec![12.0], vec![12.3]];
/// let r = affinity_propagation(&pts, AffinityParams::default())?;
/// assert_eq!(r.exemplars.len(), 2);
/// assert_eq!(r.labels[0], r.labels[1]);
/// # Ok::<(), edm_cluster::ClusterError>(())
/// ```
pub fn affinity_propagation(
    x: &[Vec<f64>],
    params: AffinityParams,
) -> Result<AffinityResult, ClusterError> {
    if !(0.5..1.0).contains(&params.damping) {
        return Err(ClusterError::InvalidParameter {
            name: "damping",
            value: params.damping,
            constraint: "must be in [0.5, 1)",
        });
    }
    check_points(x)?;
    let n = x.len();
    if n == 1 {
        return Ok(AffinityResult { labels: vec![0], exemplars: vec![0], iterations: 0 });
    }

    // Similarities: s(i,k) = -‖xᵢ − x_k‖².
    let mut s = vec![vec![0.0; n]; n];
    let mut off_diag = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for k in 0..n {
            if i != k {
                let v = -edm_linalg::sq_dist(&x[i], &x[k]);
                s[i][k] = v;
                off_diag.push(v);
            }
        }
    }
    let pref =
        params.preference.unwrap_or_else(|| edm_linalg::stats::median(&off_diag).unwrap_or(-1.0));
    for (i, row) in s.iter_mut().enumerate() {
        row[i] = pref;
    }

    let mut r = vec![vec![0.0; n]; n];
    let mut a = vec![vec![0.0; n]; n];
    let damp = params.damping;
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut stable = 0usize;
    let mut iterations = 0usize;
    for _ in 0..params.max_iter {
        iterations += 1;
        // Responsibilities: r(i,k) = s(i,k) − max_{k'≠k} (a(i,k') + s(i,k')).
        for i in 0..n {
            // top-2 of a+s over k'.
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            let mut best_k = 0usize;
            for k in 0..n {
                let v = a[i][k] + s[i][k];
                if v > best {
                    second = best;
                    best = v;
                    best_k = k;
                } else if v > second {
                    second = v;
                }
            }
            for k in 0..n {
                let cap = if k == best_k { second } else { best };
                r[i][k] = damp * r[i][k] + (1.0 - damp) * (s[i][k] - cap);
            }
        }
        // Availabilities.
        for k in 0..n {
            let mut pos_sum = 0.0;
            for i in 0..n {
                if i != k {
                    pos_sum += r[i][k].max(0.0);
                }
            }
            for i in 0..n {
                let new =
                    if i == k { pos_sum } else { (r[k][k] + pos_sum - r[i][k].max(0.0)).min(0.0) };
                a[i][k] = damp * a[i][k] + (1.0 - damp) * new;
            }
        }
        // Current exemplars: points where r(k,k) + a(k,k) > 0.
        let exemplars: Vec<usize> = (0..n).filter(|&k| r[k][k] + a[k][k] > 0.0).collect();
        if exemplars == last_exemplars && !exemplars.is_empty() {
            stable += 1;
            if stable >= params.convergence_iter {
                break;
            }
        } else {
            stable = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars = last_exemplars;
    if exemplars.is_empty() {
        // Degenerate fallback: the point with the best net self-message.
        let best = (0..n)
            .max_by(|&p, &q| {
                (r[p][p] + a[p][p]).partial_cmp(&(r[q][q] + a[q][q])).expect("finite messages")
            })
            .expect("non-empty");
        exemplars = vec![best];
    }
    let labels: Vec<usize> = (0..n)
        .map(|i| {
            if let Some(pos) = exemplars.iter().position(|&e| e == i) {
                return pos; // exemplars label themselves
            }
            exemplars
                .iter()
                .enumerate()
                .max_by(|(_, &e1), (_, &e2)| {
                    s[i][e1].partial_cmp(&s[i][e2]).expect("finite similarity")
                })
                .map(|(pos, _)| pos)
                .expect("at least one exemplar")
        })
        .collect();
    Ok(AffinityResult { labels, exemplars, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_blobs_two_exemplars() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.3, 0.0],
            vec![0.0, 0.3],
            vec![9.0, 9.0],
            vec![9.3, 9.0],
            vec![9.0, 9.3],
        ];
        let r = affinity_propagation(&pts, AffinityParams::default()).unwrap();
        assert_eq!(r.exemplars.len(), 2);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_ne!(r.labels[0], r.labels[3]);
    }

    #[test]
    fn low_preference_merges_clusters() {
        let pts: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        let few = affinity_propagation(
            &pts,
            AffinityParams { preference: Some(-1000.0), ..Default::default() },
        )
        .unwrap();
        let many = affinity_propagation(
            &pts,
            AffinityParams { preference: Some(-0.1), ..Default::default() },
        )
        .unwrap();
        assert!(few.exemplars.len() <= many.exemplars.len());
        assert!(many.exemplars.len() >= 3);
    }

    #[test]
    fn single_point_trivial() {
        let r = affinity_propagation(&[vec![1.0]], AffinityParams::default()).unwrap();
        assert_eq!(r.labels, vec![0]);
        assert_eq!(r.exemplars, vec![0]);
    }

    #[test]
    fn exemplars_are_cluster_members() {
        let pts = vec![vec![0.0], vec![0.5], vec![20.0], vec![20.5]];
        let r = affinity_propagation(&pts, AffinityParams::default()).unwrap();
        for (c, &e) in r.exemplars.iter().enumerate() {
            assert_eq!(r.labels[e], c, "exemplar {e} should carry its own label");
        }
    }

    #[test]
    fn invalid_damping_rejected() {
        assert!(affinity_propagation(
            &[vec![0.0]],
            AffinityParams { damping: 0.2, ..Default::default() }
        )
        .is_err());
    }
}
