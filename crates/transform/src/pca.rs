use edm_linalg::{stats, Matrix};
use serde::{Deserialize, Serialize};

use crate::TransformError;

/// Principal component analysis fitted by eigen-decomposition of the
/// sample covariance.
///
/// # Example
///
/// ```
/// use edm_transform::Pca;
///
/// // Points along the diagonal: first PC explains (almost) everything.
/// let x: Vec<Vec<f64>> = (0..20)
///     .map(|i| vec![i as f64, i as f64 + 0.01 * (i % 3) as f64])
///     .collect();
/// let pca = Pca::fit(&x, 2)?;
/// assert!(pca.explained_variance_ratio()[0] > 0.99);
/// let z = pca.transform(&x[5]);
/// assert_eq!(z.len(), 2);
/// # Ok::<(), edm_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    /// `n_components x d`, rows are principal directions.
    components: Matrix,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits `n_components` principal directions.
    ///
    /// # Errors
    ///
    /// [`TransformError::InvalidInput`] if there are fewer than two
    /// samples, rows are ragged, or `n_components` exceeds the feature
    /// count; [`TransformError::Numeric`] if the eigensolve fails.
    pub fn fit(x: &[Vec<f64>], n_components: usize) -> Result<Self, TransformError> {
        if x.len() < 2 {
            return Err(TransformError::InvalidInput("need at least two samples".into()));
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(TransformError::InvalidInput("ragged sample rows".into()));
        }
        if n_components == 0 || n_components > d {
            return Err(TransformError::InvalidParameter {
                name: "n_components",
                value: n_components as f64,
                constraint: "must be in 1..=n_features",
            });
        }
        let xm = Matrix::from_rows(x);
        let mean = stats::column_means(&xm);
        let cov = stats::covariance(&xm);
        let eig = cov.symmetric_eigen().map_err(TransformError::from)?;
        let total_variance: f64 = eig.eigenvalues().iter().map(|&v| v.max(0.0)).sum();
        let mut components = Matrix::zeros(n_components, d);
        let mut explained = Vec::with_capacity(n_components);
        for c in 0..n_components {
            let v = eig.eigenvector(c);
            components.row_mut(c).copy_from_slice(&v);
            explained.push(eig.eigenvalues()[c].max(0.0));
        }
        Ok(Pca { mean, components, explained_variance: explained, total_variance })
    }

    /// Number of components retained.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Variance captured by each component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured per component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let t = self.total_variance.max(1e-300);
        self.explained_variance.iter().map(|&v| v / t).collect()
    }

    /// The principal directions (rows).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Projects a sample onto the principal subspace.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "feature count mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(&v, &m)| v - m).collect();
        self.components.mat_vec(&centered)
    }

    /// Projects a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Reconstructs an input-space point from component scores
    /// (the lossy inverse).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.n_components()`.
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n_components(), "component count mismatch");
        let mut x = self.mean.clone();
        for (c, &zc) in z.iter().enumerate() {
            for (xi, &pc) in x.iter_mut().zip(self.components.row(c)) {
                *xi += zc * pc;
            }
        }
        x
    }
}

/// A PCA whitener: projects onto all principal directions and scales
/// each to unit variance — the preprocessing FastICA requires.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Whitener {
    pca: Pca,
    inv_std: Vec<f64>,
}

impl Whitener {
    /// Fits a whitening transform on all components with variance above
    /// `var_floor` (components below the floor are dropped).
    ///
    /// # Errors
    ///
    /// As for [`Pca::fit`].
    pub fn fit(x: &[Vec<f64>], var_floor: f64) -> Result<Self, TransformError> {
        let d = x.first().map(Vec::len).unwrap_or(0);
        let pca = Pca::fit(x, d.max(1))?;
        let keep: Vec<usize> = pca
            .explained_variance()
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > var_floor)
            .map(|(i, _)| i)
            .collect();
        if keep.is_empty() {
            return Err(TransformError::InvalidInput(
                "all components below the variance floor".into(),
            ));
        }
        let mut components = Matrix::zeros(keep.len(), d);
        let mut explained = Vec::new();
        for (r, &c) in keep.iter().enumerate() {
            components.row_mut(r).copy_from_slice(pca.components().row(c));
            explained.push(pca.explained_variance()[c]);
        }
        let inv_std: Vec<f64> = explained.iter().map(|&v| 1.0 / v.sqrt()).collect();
        let total = pca.total_variance;
        Ok(Whitener {
            pca: Pca {
                mean: pca.mean.clone(),
                components,
                explained_variance: explained,
                total_variance: total,
            },
            inv_std,
        })
    }

    /// Dimension of the whitened space.
    pub fn n_components(&self) -> usize {
        self.pca.n_components()
    }

    /// Whitens one sample: unit-variance, uncorrelated coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        self.pca.transform(x).into_iter().zip(&self.inv_std).map(|(z, &s)| z * s).collect()
    }

    /// Whitens a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_linalg::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlated_cloud(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let cov = Matrix::from_rows(&[vec![4.0, 1.9], vec![1.9, 1.0]]);
        let mvn = MultivariateNormal::new(vec![3.0, -1.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| mvn.sample(&mut rng)).collect()
    }

    #[test]
    fn first_pc_captures_dominant_direction() {
        let x = correlated_cloud(3000, 1);
        let pca = Pca::fit(&x, 2).unwrap();
        let r = pca.explained_variance_ratio();
        assert!(r[0] > 0.9, "first PC ratio {}", r[0]);
        assert!((r[0] + r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transformed_coordinates_are_uncorrelated() {
        let x = correlated_cloud(3000, 2);
        let pca = Pca::fit(&x, 2).unwrap();
        let z = pca.transform_batch(&x);
        let zm = Matrix::from_rows(&z);
        let corr = stats::correlation_matrix(&zm);
        assert!(corr[(0, 1)].abs() < 0.05, "residual correlation {}", corr[(0, 1)]);
    }

    #[test]
    fn round_trip_through_full_rank_pca() {
        let x = correlated_cloud(100, 3);
        let pca = Pca::fit(&x, 2).unwrap();
        let z = pca.transform(&x[7]);
        let back = pca.inverse_transform(&z);
        for (a, b) in back.iter().zip(&x[7]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn truncated_reconstruction_loses_minor_direction_only() {
        let x = correlated_cloud(2000, 4);
        let pca = Pca::fit(&x, 1).unwrap();
        // Reconstruction error should be tiny relative to total spread.
        let mut err = 0.0;
        let mut spread = 0.0;
        let xm = Matrix::from_rows(&x);
        let means = stats::column_means(&xm);
        for p in &x {
            let back = pca.inverse_transform(&pca.transform(p));
            err += edm_linalg::sq_dist(&back, p);
            spread += edm_linalg::sq_dist(p, &means);
        }
        assert!(err / spread < 0.1, "lost {} of variance", err / spread);
    }

    #[test]
    fn whitener_produces_unit_variance() {
        let x = correlated_cloud(3000, 5);
        let w = Whitener::fit(&x, 1e-12).unwrap();
        let z = w.transform_batch(&x);
        let zm = Matrix::from_rows(&z);
        for s in stats::column_stds(&zm) {
            assert!((s - 1.0).abs() < 0.05, "std {s}");
        }
    }

    #[test]
    fn invalid_component_count_rejected() {
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(Pca::fit(&x, 0).is_err());
        assert!(Pca::fit(&x, 3).is_err());
    }
}
