//! Kernel PCA: principal component analysis in the kernel's implicit
//! feature space — the natural bridge between the paper's §2.2 (kernel
//! trick) and §2.4 (PCA for test-data analysis). Nonlinear structure
//! (rings, manifolds) becomes linear in the embedding.

use edm_kernels::{center_gram, gram_matrix, gram_row, Kernel};
use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::TransformError;

/// Kernel PCA fitted by eigen-decomposition of the centered Gram matrix.
///
/// # Example
///
/// ```
/// use edm_kernels::RbfKernel;
/// use edm_transform::KernelPca;
///
/// let x: Vec<Vec<f64>> = (0..30)
///     .map(|i| {
///         let a = i as f64 * std::f64::consts::TAU / 30.0;
///         vec![a.cos(), a.sin()]
///     })
///     .collect();
/// let kpca = KernelPca::fit(&x, RbfKernel::new(1.0), 2)?;
/// assert_eq!(kpca.transform(&[1.0, 0.0]).len(), 2);
/// # Ok::<(), edm_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelPca<K> {
    kernel: K,
    train: Vec<Vec<f64>>,
    /// `n_train × k` normalized eigenvector block (columns = components).
    alphas: Matrix,
    /// Eigenvalues of the centered Gram, descending.
    lambdas: Vec<f64>,
    /// Per-training-sample kernel row means (for centering new samples).
    row_means: Vec<f64>,
    grand_mean: f64,
}

impl<K: Kernel<[f64]> + Clone> KernelPca<K> {
    /// Fits `n_components` kernel principal components.
    ///
    /// # Errors
    ///
    /// [`TransformError::InvalidInput`] for fewer than two samples or
    /// ragged rows; [`TransformError::InvalidParameter`] for a bad
    /// component count; [`TransformError::Numeric`] if the eigensolve
    /// fails.
    pub fn fit(x: &[Vec<f64>], kernel: K, n_components: usize) -> Result<Self, TransformError> {
        if x.len() < 2 {
            return Err(TransformError::InvalidInput("need at least two samples".into()));
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(TransformError::InvalidInput("ragged sample rows".into()));
        }
        if n_components == 0 || n_components >= x.len() {
            return Err(TransformError::InvalidParameter {
                name: "n_components",
                value: n_components as f64,
                constraint: "must be in 1..n_samples",
            });
        }
        let gram = gram_matrix(&kernel, x);
        let n = gram.rows();
        let row_means: Vec<f64> =
            (0..n).map(|i| gram.row(i).iter().sum::<f64>() / n as f64).collect();
        let grand_mean = row_means.iter().sum::<f64>() / n as f64;
        let centered = center_gram(&gram);
        let eig = centered.symmetric_eigen().map_err(|e| TransformError::Numeric(e.to_string()))?;
        let mut alphas = Matrix::zeros(n, n_components);
        let mut lambdas = Vec::with_capacity(n_components);
        for c in 0..n_components {
            let lam = eig.eigenvalues()[c].max(0.0);
            lambdas.push(lam);
            // Normalize so projections have unit-scaled variance:
            // alpha_c scaled by 1/sqrt(lambda).
            let scale = if lam > 1e-12 { 1.0 / lam.sqrt() } else { 0.0 };
            for r in 0..n {
                alphas[(r, c)] = eig.eigenvectors()[(r, c)] * scale;
            }
        }
        Ok(KernelPca { kernel, train: x.to_vec(), alphas, lambdas, row_means, grand_mean })
    }

    /// Number of components retained.
    pub fn n_components(&self) -> usize {
        self.alphas.cols()
    }

    /// Eigenvalues of the retained components (descending).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Projects a new sample into the kernel principal subspace.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let k_row = gram_row(&self.kernel, x, &self.train);
        let row_mean: f64 = k_row.iter().sum::<f64>() / k_row.len() as f64;
        // Center against the training distribution.
        let centered: Vec<f64> = k_row
            .iter()
            .zip(&self.row_means)
            .map(|(&kxi, &mi)| kxi - row_mean - mi + self.grand_mean)
            .collect();
        self.alphas.vec_mat(&centered)
    }

    /// Projects a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_kernels::{LinearKernel, RbfKernel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_kernel_kpca_matches_pca_subspace() {
        // With a linear kernel, KPCA spans the same subspace as PCA:
        // pairwise distances in the embedding agree up to sign/rotation.
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                let t = rng.gen::<f64>() * 4.0;
                vec![t, 2.0 * t + 0.1 * rng.gen::<f64>()]
            })
            .collect();
        let kpca = KernelPca::fit(&x, LinearKernel::new(), 1).unwrap();
        let pca = crate::Pca::fit(&x, 1).unwrap();
        let a: Vec<f64> = x.iter().map(|p| kpca.transform(p)[0]).collect();
        let b: Vec<f64> = x.iter().map(|p| pca.transform(p)[0]).collect();
        let corr = edm_linalg::stats::pearson(&a, &b).abs();
        assert!(corr > 0.999, "corr {corr}");
    }

    #[test]
    fn rbf_kpca_separates_rings_linearly() {
        // Two concentric rings: inseparable for linear PCA, separable in
        // the first KPCA components with an RBF kernel.
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = i as f64 * std::f64::consts::TAU / 40.0;
            x.push(vec![0.5 * a.cos(), 0.5 * a.sin()]);
            labels.push(0);
            x.push(vec![2.5 * a.cos(), 2.5 * a.sin()]);
            labels.push(1);
        }
        let kpca = KernelPca::fit(&x, RbfKernel::new(1.0), 2).unwrap();
        let z: Vec<Vec<f64>> = kpca.transform_batch(&x);
        // The first component must separate the rings by a threshold.
        let inner: Vec<f64> =
            z.iter().zip(&labels).filter(|&(_, &l)| l == 0).map(|(v, _)| v[0]).collect();
        let outer: Vec<f64> =
            z.iter().zip(&labels).filter(|&(_, &l)| l == 1).map(|(v, _)| v[0]).collect();
        let inner_max = inner.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let inner_min = inner.iter().cloned().fold(f64::INFINITY, f64::min);
        let outer_max = outer.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let outer_min = outer.iter().cloned().fold(f64::INFINITY, f64::min);
        let separated = inner_min > outer_max || outer_min > inner_max;
        assert!(
            separated,
            "inner [{inner_min:.3},{inner_max:.3}] outer [{outer_min:.3},{outer_max:.3}]"
        );
    }

    #[test]
    fn training_projection_is_consistent_with_transform() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<Vec<f64>> = (0..20).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let kpca = KernelPca::fit(&x, RbfKernel::new(0.8), 3).unwrap();
        // transform of training points should have near-zero mean per
        // component (centering worked).
        let z = kpca.transform_batch(&x);
        for c in 0..3 {
            let col: Vec<f64> = z.iter().map(|r| r[c]).collect();
            assert!(edm_linalg::mean(&col).abs() < 1e-9, "component {c}");
        }
    }

    #[test]
    fn invalid_component_counts_rejected() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert!(KernelPca::fit(&x, RbfKernel::new(1.0), 0).is_err());
        assert!(KernelPca::fit(&x, RbfKernel::new(1.0), 3).is_err());
    }
}
