//! Two-block methods: partial least squares and canonical correlation
//! analysis.
//!
//! The paper's §2 notes that the target can itself be a matrix `Y`:
//! "the partial least square regression is designed for regression
//! between two matrices. Canonical correlation analysis is a
//! multivariate correlation analysis applied to a dataset of X and Y."
//! These are the tools for exactly that shape of EDA data — e.g. wafer
//! parametric tests (`X`) against final functional measurements (`Y`).

use edm_linalg::{stats, Matrix};
use serde::{Deserialize, Serialize};

use crate::TransformError;

fn center(x: &[Vec<f64>]) -> Result<(Matrix, Vec<f64>), TransformError> {
    if x.len() < 2 {
        return Err(TransformError::InvalidInput("need at least two samples".into()));
    }
    let d = x[0].len();
    if d == 0 || x.iter().any(|r| r.len() != d) {
        return Err(TransformError::InvalidInput("ragged or empty sample rows".into()));
    }
    let m = Matrix::from_rows(x);
    let means = stats::column_means(&m);
    let rows: Vec<Vec<f64>> =
        x.iter().map(|r| r.iter().zip(&means).map(|(&v, &mu)| v - mu).collect()).collect();
    Ok((Matrix::from_rows(&rows), means))
}

/// Partial-least-squares regression (NIPALS, PLS1/PLS2) between two
/// matrices `X` (`n × p`) and `Y` (`n × q`).
///
/// Extracts `n_components` score directions that maximize the covariance
/// between the blocks, then predicts `Y` from `X` through them. Handles
/// collinear `X` gracefully — the situation ordinary least squares
/// cannot, and the reason PLS is standard for parametric-test data where
/// tests are 0.9+ correlated.
///
/// # Example
///
/// ```
/// use edm_transform::Pls;
///
/// // y = x0 + x1, with x1 = x0 duplicated (perfectly collinear).
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
/// let y: Vec<Vec<f64>> = (0..20).map(|i| vec![2.0 * i as f64]).collect();
/// let pls = Pls::fit(&x, &y, 1)?;
/// let p = pls.predict(&[10.0, 10.0]);
/// assert!((p[0] - 20.0).abs() < 1e-6);
/// # Ok::<(), edm_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pls {
    x_mean: Vec<f64>,
    y_mean: Vec<f64>,
    /// `p × q` regression coefficients in centered space.
    coef: Matrix,
    n_components: usize,
}

impl Pls {
    /// Fits `n_components` latent directions by NIPALS deflation.
    ///
    /// # Errors
    ///
    /// [`TransformError::InvalidInput`] for fewer than two samples,
    /// ragged rows, mismatched block lengths, or
    /// [`TransformError::InvalidParameter`] for a zero/oversized
    /// component count.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        n_components: usize,
    ) -> Result<Self, TransformError> {
        if x.len() != y.len() {
            return Err(TransformError::InvalidInput(format!(
                "X has {} rows, Y has {}",
                x.len(),
                y.len()
            )));
        }
        let (mut xc, x_mean) = center(x)?;
        let (mut yc, y_mean) = center(y)?;
        let p = xc.cols();
        let q = yc.cols();
        if n_components == 0 || n_components > p {
            return Err(TransformError::InvalidParameter {
                name: "n_components",
                value: n_components as f64,
                constraint: "must be in 1..=n_x_features",
            });
        }
        // Accumulated weights for the closed-form coefficient matrix:
        // B = W (PᵀW)⁻¹ Cᵀ with loadings P and Y-weights C.
        let mut w_mat = Matrix::zeros(p, n_components);
        let mut p_mat = Matrix::zeros(p, n_components);
        let mut c_mat = Matrix::zeros(q, n_components);
        for comp in 0..n_components {
            // w ∝ Xᵀ u, initialized with u = first Y column (NIPALS).
            let mut u: Vec<f64> = yc.col(0);
            let mut w = vec![0.0; p];
            let mut t = vec![0.0; xc.rows()];
            for _ in 0..200 {
                w = edm_linalg::normalize(&xc.vec_mat(&u));
                t = xc.mat_vec(&w);
                let tt = edm_linalg::dot(&t, &t).max(1e-300);
                let c: Vec<f64> = yc.vec_mat(&t).iter().map(|v| v / tt).collect();
                let cc = edm_linalg::dot(&c, &c).max(1e-300);
                let u_new: Vec<f64> = yc.mat_vec(&c).iter().map(|v| v / cc).collect();
                let delta = edm_linalg::sq_dist(&u, &u_new);
                u = u_new;
                if delta < 1e-24 {
                    break;
                }
            }
            let tt = edm_linalg::dot(&t, &t).max(1e-300);
            let p_load: Vec<f64> = xc.vec_mat(&t).iter().map(|v| v / tt).collect();
            let c_load: Vec<f64> = yc.vec_mat(&t).iter().map(|v| v / tt).collect();
            // Deflate both blocks.
            for r in 0..xc.rows() {
                for j in 0..p {
                    xc[(r, j)] -= t[r] * p_load[j];
                }
                for j in 0..q {
                    yc[(r, j)] -= t[r] * c_load[j];
                }
            }
            for j in 0..p {
                w_mat[(j, comp)] = w[j];
                p_mat[(j, comp)] = p_load[j];
            }
            for j in 0..q {
                c_mat[(j, comp)] = c_load[j];
            }
        }
        // B = W (PᵀW)⁻¹ Cᵀ.
        let ptw = p_mat.transpose().mat_mul(&w_mat);
        let ptw_inv = ptw.inverse().map_err(|e| TransformError::Numeric(e.to_string()))?;
        let coef = w_mat.mat_mul(&ptw_inv).mat_mul(&c_mat.transpose());
        Ok(Pls { x_mean, y_mean, coef, n_components })
    }

    /// Number of latent components used.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Predicts the `Y` row for one `X` sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.x_mean.len(), "feature count mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.x_mean).map(|(&v, &m)| v - m).collect();
        let mut out = self.y_mean.clone();
        let pred = self.coef.vec_mat(&centered);
        for (o, p) in out.iter_mut().zip(pred) {
            *o += p;
        }
        out
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Canonical correlation analysis between two blocks.
///
/// Finds direction pairs `(a, b)` maximizing `corr(X a, Y b)`, via the
/// regularized eigenproblem
/// `Σxx⁻¹ Σxy Σyy⁻¹ Σyx a = ρ² a`.
///
/// # Example
///
/// ```
/// use edm_transform::Cca;
/// use rand::{Rng, SeedableRng};
///
/// // Shared latent factor drives column 0 of X and column 1 of Y.
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut x = Vec::new();
/// let mut y = Vec::new();
/// for _ in 0..300 {
///     let f: f64 = rng.gen::<f64>() * 2.0 - 1.0;
///     x.push(vec![f + 0.05 * rng.gen::<f64>(), rng.gen::<f64>()]);
///     y.push(vec![rng.gen::<f64>(), -f + 0.05 * rng.gen::<f64>()]);
/// }
/// let cca = Cca::fit(&x, &y, 1, 1e-6)?;
/// assert!(cca.correlations()[0] > 0.95);
/// # Ok::<(), edm_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cca {
    x_mean: Vec<f64>,
    y_mean: Vec<f64>,
    /// `p × k` X-side directions (columns).
    x_dirs: Matrix,
    /// `q × k` Y-side directions (columns).
    y_dirs: Matrix,
    correlations: Vec<f64>,
}

impl Cca {
    /// Fits `n_pairs` canonical direction pairs with ridge `reg` added
    /// to both covariance blocks.
    ///
    /// # Errors
    ///
    /// Input errors as in [`Pls::fit`]; [`TransformError::Numeric`] if a
    /// covariance block cannot be factorized (raise `reg`).
    pub fn fit(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        n_pairs: usize,
        reg: f64,
    ) -> Result<Self, TransformError> {
        if x.len() != y.len() {
            return Err(TransformError::InvalidInput(format!(
                "X has {} rows, Y has {}",
                x.len(),
                y.len()
            )));
        }
        if !(reg >= 0.0) {
            return Err(TransformError::InvalidParameter {
                name: "reg",
                value: reg,
                constraint: "must be non-negative",
            });
        }
        let (xc, x_mean) = center(x)?;
        let (yc, y_mean) = center(y)?;
        let p = xc.cols();
        let q = yc.cols();
        if n_pairs == 0 || n_pairs > p.min(q) {
            return Err(TransformError::InvalidParameter {
                name: "n_pairs",
                value: n_pairs as f64,
                constraint: "must be in 1..=min(p, q)",
            });
        }
        let n = xc.rows() as f64 - 1.0;
        let sxx = {
            let mut m = xc.gram().scaled(1.0 / n);
            for i in 0..p {
                m[(i, i)] += reg + 1e-12;
            }
            m
        };
        let syy = {
            let mut m = yc.gram().scaled(1.0 / n);
            for i in 0..q {
                m[(i, i)] += reg + 1e-12;
            }
            m
        };
        let sxy = xc.transpose().mat_mul(&yc).scaled(1.0 / n);

        // Whitened formulation keeps the eigenproblem symmetric:
        // M = Sxx^(-1/2) Sxy Syy^(-1) Syx Sxx^(-1/2); eigvals = ρ².
        let sxx_inv_sqrt = inv_sqrt(&sxx)?;
        let syy_inv = syy.inverse().map_err(|e| TransformError::Numeric(e.to_string()))?;
        let m = sxx_inv_sqrt
            .mat_mul(&sxy)
            .mat_mul(&syy_inv)
            .mat_mul(&sxy.transpose())
            .mat_mul(&sxx_inv_sqrt);
        let eig = m.symmetric_eigen().map_err(|e| TransformError::Numeric(e.to_string()))?;

        let mut x_dirs = Matrix::zeros(p, n_pairs);
        let mut y_dirs = Matrix::zeros(q, n_pairs);
        let mut correlations = Vec::with_capacity(n_pairs);
        for k in 0..n_pairs {
            let rho2 = eig.eigenvalues()[k].clamp(0.0, 1.0);
            correlations.push(rho2.sqrt());
            // a = Sxx^(-1/2) v; b ∝ Syy⁻¹ Syx a.
            let v = eig.eigenvector(k);
            let a = sxx_inv_sqrt.mat_vec(&v);
            let b_raw = syy_inv.mat_mul(&sxy.transpose()).mat_vec(&a);
            let b = edm_linalg::normalize(&b_raw);
            let a = edm_linalg::normalize(&a);
            for j in 0..p {
                x_dirs[(j, k)] = a[j];
            }
            for j in 0..q {
                y_dirs[(j, k)] = b[j];
            }
        }
        Ok(Cca { x_mean, y_mean, x_dirs, y_dirs, correlations })
    }

    /// Canonical correlations, strongest first.
    pub fn correlations(&self) -> &[f64] {
        &self.correlations
    }

    /// Projects an `X` sample onto the canonical directions.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted X feature count.
    pub fn transform_x(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.x_mean.len(), "feature count mismatch");
        let c: Vec<f64> = x.iter().zip(&self.x_mean).map(|(&v, &m)| v - m).collect();
        self.x_dirs.vec_mat(&c)
    }

    /// Projects a `Y` sample onto the canonical directions.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the fitted Y feature count.
    pub fn transform_y(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.y_mean.len(), "feature count mismatch");
        let c: Vec<f64> = y.iter().zip(&self.y_mean).map(|(&v, &m)| v - m).collect();
        self.y_dirs.vec_mat(&c)
    }
}

/// `A^(-1/2)` of a symmetric positive-definite matrix via eigen.
fn inv_sqrt(a: &Matrix) -> Result<Matrix, TransformError> {
    let eig = a.symmetric_eigen().map_err(|e| TransformError::Numeric(e.to_string()))?;
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for k in 0..n {
        let lam = eig.eigenvalues()[k];
        if lam <= 0.0 {
            return Err(TransformError::Numeric("matrix not positive definite in inv_sqrt".into()));
        }
        let s = 1.0 / lam.sqrt();
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] += s * eig.eigenvectors()[(i, k)] * eig.eigenvectors()[(j, k)];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pls_recovers_multi_output_linear_map() {
        // Y = [x0 + x1, x0 - 2*x1]
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> =
            (0..60).map(|_| vec![rng.gen::<f64>() * 4.0, rng.gen::<f64>() * 4.0]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] + r[1], r[0] - 2.0 * r[1]]).collect();
        let pls = Pls::fit(&x, &y, 2).unwrap();
        let probe = [1.5, 2.5];
        let pred = pls.predict(&probe);
        assert!((pred[0] - 4.0).abs() < 1e-6, "got {pred:?}");
        assert!((pred[1] + 3.5).abs() < 1e-6, "got {pred:?}");
    }

    #[test]
    fn pls_survives_perfect_collinearity() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<Vec<f64>> = (0..30).map(|i| vec![4.0 * i as f64]).collect();
        let pls = Pls::fit(&x, &y, 1).unwrap();
        assert!((pls.predict(&[5.0, 5.0])[0] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn pls_one_component_underfits_two_target_directions() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<Vec<f64>> = (0..80).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0], r[1]]).collect();
        let full = Pls::fit(&x, &y, 2).unwrap();
        let truncated = Pls::fit(&x, &y, 1).unwrap();
        let err = |m: &Pls| -> f64 {
            x.iter().zip(&y).map(|(xi, yi)| edm_linalg::sq_dist(&m.predict(xi), yi)).sum()
        };
        assert!(err(&full) < 1e-9);
        assert!(err(&truncated) > 0.1);
    }

    #[test]
    fn cca_finds_shared_factor() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..500 {
            let f = rng.gen::<f64>() * 2.0 - 1.0;
            x.push(vec![f + 0.05 * rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()]);
            y.push(vec![rng.gen::<f64>(), 2.0 * f + 0.05 * rng.gen::<f64>()]);
        }
        let cca = Cca::fit(&x, &y, 2, 1e-6).unwrap();
        assert!(cca.correlations()[0] > 0.95, "{:?}", cca.correlations());
        assert!(cca.correlations()[1] < 0.4, "{:?}", cca.correlations());
        // Canonical scores correlate across blocks.
        let sx: Vec<f64> = x.iter().map(|r| cca.transform_x(r)[0]).collect();
        let sy: Vec<f64> = y.iter().map(|r| cca.transform_y(r)[0]).collect();
        assert!(stats::pearson(&sx, &sy).abs() > 0.95);
    }

    #[test]
    fn cca_independent_blocks_have_low_correlation() {
        let mut rng = StdRng::seed_from_u64(4);
        let x: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let cca = Cca::fit(&x, &y, 1, 1e-6).unwrap();
        assert!(cca.correlations()[0] < 0.3, "{:?}", cca.correlations());
    }

    #[test]
    fn input_validation() {
        let x = vec![vec![0.0], vec![1.0]];
        let y_short = vec![vec![0.0]];
        assert!(Pls::fit(&x, &y_short, 1).is_err());
        assert!(Cca::fit(&x, &y_short, 1, 1e-6).is_err());
        let y = vec![vec![0.0], vec![1.0]];
        assert!(Pls::fit(&x, &y, 0).is_err());
        assert!(Cca::fit(&x, &y, 5, 1e-6).is_err());
    }
}
