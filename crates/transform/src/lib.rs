//! # edm-transform — PCA, whitening, and FastICA
//!
//! The data-transformation methods of the paper's §2.4: principal
//! component analysis (ref \[22\]) extracts *uncorrelated* components for
//! dimensionality reduction; independent component analysis (ref \[23\])
//! goes further and extracts *statistically independent* components.
//! Both "have found applications in test data analysis" (refs
//! \[24\]\[25\]: multivariate outlier detection on principal components,
//! IDDQ defect screening on independent components) — exactly the roles
//! they play in `edm-novelty` and the customer-return flow.
//!
//! The two-block methods the paper names for matrix targets are here
//! too: [`Pls`] (partial least squares, "regression between two
//! matrices") and [`Cca`] (canonical correlation analysis), plus
//! [`KernelPca`] bridging the kernel trick of §2.2 with PCA.

#![forbid(unsafe_code)]

mod crosscov;
mod ica;
mod kpca;
mod pca;

pub use crosscov::{Cca, Pls};
pub use ica::{FastIca, IcaParams};
pub use kpca::KernelPca;
pub use pca::{Pca, Whitener};

use std::fmt;

/// Errors from fitting transforms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransformError {
    /// The input was empty, ragged, or had too few samples.
    InvalidInput(String),
    /// A parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The underlying eigen/Cholesky step failed.
    Numeric(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::InvalidInput(m) => write!(f, "invalid transform input: {m}"),
            TransformError::InvalidParameter { name, value, constraint } => {
                write!(f, "parameter {name} = {value} {constraint}")
            }
            TransformError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<edm_linalg::LinalgError> for TransformError {
    fn from(e: edm_linalg::LinalgError) -> Self {
        TransformError::Numeric(e.to_string())
    }
}
