use edm_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{TransformError, Whitener};

/// Parameters for FastICA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcaParams {
    /// Independent components to extract.
    pub n_components: usize,
    /// Fixed-point iteration cap.
    pub max_iter: usize,
    /// Convergence tolerance on the rotation update.
    pub tol: f64,
}

impl Default for IcaParams {
    fn default() -> Self {
        IcaParams { n_components: 2, max_iter: 300, tol: 1e-6 }
    }
}

/// FastICA with the `tanh` (log-cosh) contrast and symmetric
/// decorrelation.
///
/// Recovers statistically independent sources from linear mixtures — the
/// paper's ref \[23\], applied to IDDQ defect screening in ref \[25\]:
/// a defect current is independent of the (shared) functional currents,
/// so it surfaces as its own component.
///
/// # Example
///
/// ```
/// use edm_transform::{FastIca, IcaParams};
/// use rand::SeedableRng;
///
/// // Mix two independent non-Gaussian sources.
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let sources: Vec<(f64, f64)> = (0..500)
///     .map(|i| (((i * 7) % 13) as f64 - 6.0, (((i * 11) % 17) as f64 - 8.0) * 0.5))
///     .collect();
/// let x: Vec<Vec<f64>> = sources
///     .iter()
///     .map(|&(s1, s2)| vec![0.7 * s1 + 0.3 * s2, 0.4 * s1 - 0.6 * s2])
///     .collect();
/// let ica = FastIca::fit(&x, IcaParams::default(), &mut rng)?;
/// assert_eq!(ica.transform(&x[0]).len(), 2);
/// # Ok::<(), edm_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastIca {
    whitener: Whitener,
    /// Unmixing rotation in whitened space (`n_components` rows).
    w: Matrix,
    iterations: usize,
}

impl FastIca {
    /// Fits the unmixing matrix.
    ///
    /// # Errors
    ///
    /// [`TransformError::InvalidParameter`] if `n_components` exceeds the
    /// whitened dimension; propagates whitening errors.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        params: IcaParams,
        rng: &mut R,
    ) -> Result<Self, TransformError> {
        let whitener = Whitener::fit(x, 1e-12)?;
        let dim = whitener.n_components();
        let c = params.n_components;
        if c == 0 || c > dim {
            return Err(TransformError::InvalidParameter {
                name: "n_components",
                value: c as f64,
                constraint: "must be in 1..=whitened dimension",
            });
        }
        let z = whitener.transform_batch(x);
        let n = z.len() as f64;

        // Random init, then symmetric-decorrelation fixed point.
        let mut w = Matrix::zeros(c, dim);
        for r in 0..c {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            w.row_mut(r).copy_from_slice(&edm_linalg::normalize(&v));
        }
        w = symmetric_decorrelate(&w)?;
        let mut iterations = 0;
        for _ in 0..params.max_iter {
            iterations += 1;
            let mut w_new = Matrix::zeros(c, dim);
            for r in 0..c {
                let wr = w.row(r).to_vec();
                // w+ = E[z·g(wᵀz)] − E[g'(wᵀz)]·w, g = tanh.
                let mut ez_g = vec![0.0; dim];
                let mut eg_prime = 0.0;
                for zi in &z {
                    let u = edm_linalg::dot(&wr, zi);
                    let g = u.tanh();
                    let gp = 1.0 - g * g;
                    eg_prime += gp;
                    for (acc, &zv) in ez_g.iter_mut().zip(zi) {
                        *acc += zv * g;
                    }
                }
                for ((out, &acc), &wv) in w_new.row_mut(r).iter_mut().zip(&ez_g).zip(&wr) {
                    *out = acc / n - (eg_prime / n) * wv;
                }
            }
            let w_next = symmetric_decorrelate(&w_new)?;
            // Convergence: |diag(W_next Wᵀ)| all ≈ 1.
            let overlap = w_next.mat_mul(&w.transpose());
            let delta = (0..c).map(|i| (overlap[(i, i)].abs() - 1.0).abs()).fold(0.0_f64, f64::max);
            w = w_next;
            if delta < params.tol {
                break;
            }
        }
        Ok(FastIca { whitener, w, iterations })
    }

    /// Number of independent components.
    pub fn n_components(&self) -> usize {
        self.w.rows()
    }

    /// Fixed-point iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Maps a sample to its independent-component coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        self.w.mat_vec(&self.whitener.transform(x))
    }

    /// Maps a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

/// `W ← (W Wᵀ)^(−1/2) W` via the eigen-decomposition of `W Wᵀ`.
fn symmetric_decorrelate(w: &Matrix) -> Result<Matrix, TransformError> {
    let wwt = w.mat_mul(&w.transpose());
    let eig = wwt.symmetric_eigen().map_err(TransformError::from)?;
    let c = w.rows();
    let mut inv_sqrt = Matrix::zeros(c, c);
    for i in 0..c {
        let lam = eig.eigenvalues()[i].max(1e-12);
        let s = 1.0 / lam.sqrt();
        for a in 0..c {
            for b in 0..c {
                inv_sqrt[(a, b)] += s * eig.eigenvectors()[(a, i)] * eig.eigenvectors()[(b, i)];
            }
        }
    }
    Ok(inv_sqrt.mat_mul(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two independent uniform sources, linearly mixed.
    fn mixed(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut s = Vec::with_capacity(n);
        for _ in 0..n {
            let s1: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s2: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            s.push((s1, s2));
            x.push(vec![0.6 * s1 + 0.4 * s2, 0.45 * s1 - 0.55 * s2]);
        }
        (x, s)
    }

    #[test]
    fn recovers_independent_sources_up_to_permutation_and_sign() {
        let (x, s) = mixed(4000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let ica = FastIca::fit(&x, IcaParams::default(), &mut rng).unwrap();
        let y = ica.transform_batch(&x);
        let s1: Vec<f64> = s.iter().map(|&(a, _)| a).collect();
        let s2: Vec<f64> = s.iter().map(|&(_, b)| b).collect();
        let y1: Vec<f64> = y.iter().map(|r| r[0]).collect();
        let y2: Vec<f64> = y.iter().map(|r| r[1]).collect();
        // Each recovered component correlates strongly with exactly one
        // source (up to sign/permutation).
        let c = |a: &[f64], b: &[f64]| edm_linalg::stats::pearson(a, b).abs();
        let m11 = c(&y1, &s1);
        let m12 = c(&y1, &s2);
        let m21 = c(&y2, &s1);
        let m22 = c(&y2, &s2);
        let direct = m11.min(m22);
        let swapped = m12.min(m21);
        assert!(
            direct > 0.95 || swapped > 0.95,
            "poor separation: [{m11:.2} {m12:.2}; {m21:.2} {m22:.2}]"
        );
    }

    #[test]
    fn unmixing_rows_are_orthonormal_in_whitened_space() {
        let (x, _) = mixed(1000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let ica = FastIca::fit(&x, IcaParams::default(), &mut rng).unwrap();
        let wwt = ica.w.mat_mul(&ica.w.transpose());
        assert!((&wwt - &Matrix::identity(2)).max_abs() < 1e-6);
    }

    #[test]
    fn too_many_components_rejected() {
        let (x, _) = mixed(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(FastIca::fit(&x, IcaParams { n_components: 5, ..Default::default() }, &mut rng)
            .is_err());
    }
}
