//! The threaded HTTP server: accept loop, routing, backpressure, and
//! graceful shutdown.
//!
//! # Threading model
//!
//! All threads live in [`edm_par::pool::WorkerPool`]s — the workspace
//! bans `thread::spawn` outside `edm-par`. A single-worker pool runs
//! the accept loop; a second pool of [`ServerConfig::workers`] threads
//! handles connections, behind a bounded queue of
//! [`ServerConfig::queue_capacity`] slots.
//!
//! # Backpressure
//!
//! Admission is two-phase: the accept loop reserves a queue slot
//! *before* handing the socket to a worker. When no slot is free it
//! still owns the connection, so it answers
//! `503 Service Unavailable` with a `retry-after` header instead of
//! hanging the client or buffering unboundedly.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips the shutdown flag, wakes the accept loop
//! with a loopback connection, joins it, then drains the worker pool:
//! every connection already admitted is answered before the threads
//! exit.

use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use std::{fmt, io};

use edm_par::pool::WorkerPool;

use crate::http::{self, HttpError, Request, Response};
use crate::json::{self, Value};
use crate::registry::ModelRegistry;

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue depth; connection number `queue_capacity + 1`
    /// while all workers are busy is refused with a 503.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Largest accepted request body, in bytes (413 beyond this).
    pub max_body_bytes: usize,
    /// Seconds advertised in the `retry-after` header of 503 responses.
    pub retry_after_secs: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            retry_after_secs: 1,
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or inspecting the listening socket failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "could not start the server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running scoring server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains admitted connections,
/// and joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<WorkerPool>,
    workers: Option<Arc<WorkerPool>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("local_addr", &self.local_addr).finish()
    }
}

impl Server {
    /// Binds `addr` and starts serving `registry` in the background.
    ///
    /// Bind to port 0 for an ephemeral port and read the actual one
    /// back from [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = Arc::new(WorkerPool::new(config.workers, config.queue_capacity));
        let registry = Arc::new(registry);

        let acceptor = WorkerPool::new(1, 1);
        {
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            let permit = acceptor.try_reserve().expect("fresh 1-slot pool has room");
            permit.execute(move || accept_loop(&listener, &workers, &registry, &stop, &config));
        }
        Ok(Server { local_addr, stop, acceptor: Some(acceptor), workers: Some(workers) })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently admitted but not yet picked up by a
    /// worker (includes in-flight admissions).
    pub fn queue_len(&self) -> usize {
        self.workers.as_ref().map_or(0, |w| w.queue_len())
    }

    /// Stops accepting, drains every admitted connection, and joins
    /// all threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop may be parked in `accept()`; a throwaway
        // loopback connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(mut acceptor) = self.acceptor.take() {
            acceptor.shutdown();
        }
        // The accept loop has exited and dropped its pool handle, so
        // this is the last one; draining it answers every admitted
        // connection before the workers exit.
        if let Some(workers) = self.workers.take() {
            if let Some(mut pool) = Arc::into_inner(workers) {
                pool.shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    workers: &Arc<WorkerPool>,
    registry: &Arc<ModelRegistry>,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            // Transient accept failures (e.g. the peer vanished
            // between SYN and accept) are not fatal to the server.
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        match workers.try_reserve() {
            None => {
                // Queue full: the permit was never granted, so this
                // thread still owns the socket and can refuse politely.
                edm_trace::counter_add("serve.http.rejected", 1);
                let mut resp = error_response(503, "scoring queue is full");
                resp.retry_after = Some(config.retry_after_secs);
                respond_and_drain(&stream, &resp, config.max_body_bytes);
            }
            Some(permit) => {
                edm_trace::record("serve.queue.depth", workers.queue_len() as f64);
                let registry = Arc::clone(registry);
                let max_body = config.max_body_bytes;
                permit.execute(move || handle_connection(&stream, &registry, max_body));
            }
        }
    }
}

fn handle_connection(stream: &TcpStream, registry: &ModelRegistry, max_body: usize) {
    edm_trace::counter_add("serve.http.requests", 1);
    let _span = edm_trace::span("serve.request");
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader, max_body) {
        Ok(r) => r,
        Err(HttpError::Malformed(why)) => {
            respond_and_drain(stream, &error_response(400, &why), max_body);
            return;
        }
        Err(HttpError::TooLarge { limit }) => {
            respond_and_drain(
                stream,
                &error_response(413, &format!("request body exceeds {limit} bytes")),
                max_body,
            );
            return;
        }
        // Dead or stalled socket: nobody is left to answer.
        Err(HttpError::Io(_)) => return,
    };
    let response = route(&request, registry);
    respond(stream, &response);
}

/// Writes `resp`, ignoring socket errors — the client may already be
/// gone, and a failed write must not take the worker down.
fn respond(mut stream: &TcpStream, resp: &Response) {
    let _ = resp.write_to(&mut stream);
}

/// How much unread request the draining close will consume before
/// giving up, beyond the body cap (request line + headers).
const DRAIN_SLACK_BYTES: usize = 16 * 1024;

/// Answers a request that was *not* fully read: writes `resp`,
/// half-closes the write side, then drains (bounded) whatever the
/// client already sent. Closing a socket with unread bytes in its
/// receive buffer makes TCP send RST instead of FIN, which can
/// destroy the just-written response in the client's receive buffer —
/// exactly the 503/413 answers this server most needs to deliver.
fn respond_and_drain(mut stream: &TcpStream, resp: &Response, cap: usize) {
    let _ = resp.write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Write);
    // A well-behaved client closes as soon as it has read the
    // response (the half-close above ends its `read`), so this loop
    // normally sees EOF within a round trip; the short timeout bounds
    // the cost of a client that trickles instead.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                drained += n;
                if drained > cap + DRAIN_SLACK_BYTES {
                    break;
                }
            }
        }
    }
}

fn route(req: &Request, registry: &ModelRegistry) -> Response {
    let t0 = Instant::now();
    match req.target.as_str() {
        "/healthz" => {
            let resp = require_get(req).unwrap_or_else(|| Response::text(200, "ok\n"));
            edm_trace::record("serve.healthz.latency_ns", elapsed_ns(t0));
            resp
        }
        "/metrics" => {
            let resp = require_get(req).unwrap_or_else(|| Response {
                status: 200,
                content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
                retry_after: None,
                body: edm_trace::collect().to_openmetrics().into_bytes(),
            });
            edm_trace::record("serve.metrics.latency_ns", elapsed_ns(t0));
            resp
        }
        "/v1/models" => {
            let resp = require_get(req).unwrap_or_else(|| models_response(registry));
            edm_trace::record("serve.models.latency_ns", elapsed_ns(t0));
            resp
        }
        target if target.starts_with("/v1/models/") && target.ends_with(":predict") => {
            let name = &target["/v1/models/".len()..target.len() - ":predict".len()];
            let resp = if req.method == "POST" {
                predict_response(name, &req.body, registry)
            } else {
                error_response(405, ":predict requires POST")
            };
            edm_trace::record("serve.predict.latency_ns", elapsed_ns(t0));
            resp
        }
        _ => error_response(404, "no such endpoint"),
    }
}

fn elapsed_ns(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e9
}

/// `None` when the method is GET, otherwise the 405 to send.
fn require_get(req: &Request) -> Option<Response> {
    (req.method != "GET").then(|| error_response(405, "this endpoint requires GET"))
}

/// `{"error": msg}` with the given status.
fn error_response(status: u16, msg: &str) -> Response {
    let body = Value::Object(vec![("error".to_string(), Value::Str(msg.to_string()))]);
    Response::json(status, body.encode())
}

fn models_response(registry: &ModelRegistry) -> Response {
    let models: Vec<Value> = registry
        .list()
        .into_iter()
        .map(|m| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(m.name)),
                ("family".to_string(), Value::Str(m.family.to_string())),
                ("n_features".to_string(), Value::Number(m.n_features as f64)),
            ])
        })
        .collect();
    let body = Value::Object(vec![("models".to_string(), Value::Array(models))]);
    Response::json(200, body.encode())
}

fn predict_response(name: &str, body: &[u8], registry: &ModelRegistry) -> Response {
    let Some(model) = registry.get(name) else {
        return error_response(404, &format!("no model named {name:?}"));
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "request body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let Some(raw_rows) = doc.get("inputs").and_then(Value::as_array) else {
        return error_response(400, "body must be {\"inputs\": [[f64, ...], ...]}");
    };
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(raw_rows.len());
    for (i, raw_row) in raw_rows.iter().enumerate() {
        let Some(cells) = raw_row.as_array() else {
            return error_response(400, &format!("inputs[{i}] is not an array"));
        };
        let mut row = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            let Some(v) = cell.as_f64() else {
                return error_response(400, &format!("inputs[{i}][{j}] is not a number"));
            };
            row.push(v);
        }
        rows.push(row);
    }
    match model.predict_batch(&rows) {
        Ok(predictions) => {
            let body = Value::Object(vec![
                ("model".to_string(), Value::Str(name.to_string())),
                ("family".to_string(), Value::Str(model.name().to_string())),
                ("count".to_string(), Value::Number(predictions.len() as f64)),
                (
                    "predictions".to_string(),
                    Value::Array(predictions.into_iter().map(Value::Number).collect()),
                ),
            ]);
            Response::json(200, body.encode())
        }
        // A shape mismatch is the client's fault; anything else
        // (there is currently nothing else `predict_batch` can return)
        // would be the server's.
        Err(e @ edm::Error::Shape { .. }) => error_response(400, &e.to_string()),
        Err(e) => error_response(500, &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn registry_with_ridge() -> ModelRegistry {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut reg = ModelRegistry::new();
        reg.register("plane", Ridge::fit(&x, &y, 1e-6).expect("plane fits")).expect("register");
        reg
    }

    fn req(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn routing_table_without_sockets() {
        let reg = registry_with_ridge();
        assert_eq!(route(&req("GET", "/healthz", ""), &reg).status, 200);
        assert_eq!(route(&req("POST", "/healthz", ""), &reg).status, 405);
        assert_eq!(route(&req("GET", "/metrics", ""), &reg).status, 200);
        assert_eq!(route(&req("GET", "/v1/models", ""), &reg).status, 200);
        assert_eq!(route(&req("GET", "/v1/models/plane:predict", ""), &reg).status, 405);
        assert_eq!(route(&req("GET", "/nope", ""), &reg).status, 404);
        let ok = route(&req("POST", "/v1/models/plane:predict", r#"{"inputs": [[1, 1]]}"#), &reg);
        assert_eq!(ok.status, 200);
        let shown = String::from_utf8(ok.body).expect("utf8");
        assert!(shown.contains("\"predictions\":["), "body was {shown}");
    }

    #[test]
    fn predict_error_statuses() {
        let reg = registry_with_ridge();
        let predict = "/v1/models/plane:predict";
        // Unknown model.
        assert_eq!(route(&req("POST", "/v1/models/ghost:predict", "{}"), &reg).status, 404);
        // Not JSON at all.
        assert_eq!(route(&req("POST", predict, "not json"), &reg).status, 400);
        // JSON, wrong shape.
        assert_eq!(route(&req("POST", predict, "{\"rows\": []}"), &reg).status, 400);
        assert_eq!(route(&req("POST", predict, "{\"inputs\": [4]}"), &reg).status, 400);
        assert_eq!(route(&req("POST", predict, "{\"inputs\": [[true]]}"), &reg).status, 400);
        // Feature-count mismatch surfaces the facade Shape error.
        let mismatch = route(&req("POST", predict, "{\"inputs\": [[1, 2, 3]]}"), &reg);
        assert_eq!(mismatch.status, 400);
        let shown = String::from_utf8(mismatch.body).expect("utf8");
        assert!(shown.contains("expects"), "body was {shown}");
    }

    #[test]
    fn predictions_match_the_inherent_path() {
        let reg = registry_with_ridge();
        let model = reg.get("plane").expect("registered");
        let rows = vec![vec![0.25, 0.5], vec![0.75, -0.25]];
        let direct = model.predict_batch(&rows).expect("clean batch");
        let resp = route(
            &req("POST", "/v1/models/plane:predict", r#"{"inputs": [[0.25, 0.5], [0.75, -0.25]]}"#),
            &reg,
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
        let served: Vec<f64> = doc
            .get("predictions")
            .and_then(Value::as_array)
            .expect("predictions array")
            .iter()
            .map(|v| v.as_f64().expect("number"))
            .collect();
        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.to_bits(), d.to_bits(), "wire round trip changed a prediction");
        }
    }
}
