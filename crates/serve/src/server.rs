//! The threaded HTTP server: accept loop, routing, backpressure, and
//! graceful shutdown.
//!
//! # Threading model
//!
//! All threads live in [`edm_par::pool::WorkerPool`]s — the workspace
//! bans `thread::spawn` outside `edm-par`. A single-worker pool runs
//! the accept loop; a second pool of [`ServerConfig::workers`] threads
//! handles connections, behind a bounded queue of
//! [`ServerConfig::queue_capacity`] slots.
//!
//! # Backpressure
//!
//! Admission is two-phase: the accept loop reserves a queue slot
//! *before* handing the socket to a worker. When no slot is free it
//! still owns the connection, so it answers
//! `503 Service Unavailable` with a `retry-after` header instead of
//! hanging the client or buffering unboundedly.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips the shutdown flag, wakes the accept loop
//! with a loopback connection, joins it, then drains the worker pool:
//! every connection already admitted is answered before the threads
//! exit.
//!
//! # Request-scoped telemetry
//!
//! Every request gets a monotonically increasing id (echoed as an
//! `x-request-id` header) and is classified into an `endpoint × model`
//! pair. Each finished request feeds three sinks: the always-on
//! [`ServeMetrics`] registry (per-status counts plus lifetime and
//! rolling-window latency series, rendered on `/metrics`), the
//! `edm-trace` labeled probes `serve.request.count` /
//! `serve.request.handle_ns` (active at `EDM_TRACE=summary` and
//! above), and an env-gated one-line access log on stderr
//! (`EDM_SERVE_LOG=1`; requests at or above the
//! `EDM_SERVE_SLOW_MS` threshold are always logged and counted under
//! `serve.request.slow`). `GET /v1/trace` returns the live
//! [`edm_trace::TraceReport`] as JSON for interactive debugging.

use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use std::{fmt, io};

use edm_par::pool::WorkerPool;

use crate::http::{self, HttpError, Request, Response};
use crate::json::{self, Value};
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue depth; connection number `queue_capacity + 1`
    /// while all workers are busy is refused with a 503.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Largest accepted request body, in bytes (413 beyond this).
    pub max_body_bytes: usize,
    /// Seconds advertised in the `retry-after` header of 503 responses.
    pub retry_after_secs: u32,
    /// Emit a one-line access log for every request (slow requests are
    /// logged regardless). `None` defers to the `EDM_SERVE_LOG`
    /// environment variable (truthy values: `1`, `true`, `on`).
    pub access_log: Option<bool>,
    /// Slow-request threshold in milliseconds. `None` defers to
    /// `EDM_SERVE_SLOW_MS`, defaulting to 500 ms.
    pub slow_ms: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            retry_after_secs: 1,
            access_log: None,
            slow_ms: None,
        }
    }
}

/// Resolved access-log settings (see [`ServerConfig::access_log`] and
/// [`ServerConfig::slow_ms`]).
#[derive(Debug, Clone, Copy)]
struct LogConfig {
    enabled: bool,
    slow_ns: u64,
}

impl LogConfig {
    fn resolve(config: &ServerConfig) -> LogConfig {
        let enabled = config.access_log.unwrap_or_else(|| {
            std::env::var("EDM_SERVE_LOG").is_ok_and(|v| {
                v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
            })
        });
        let slow_ms = config.slow_ms.unwrap_or_else(|| {
            std::env::var("EDM_SERVE_SLOW_MS")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(500.0)
        });
        LogConfig { enabled, slow_ns: (slow_ms.max(0.0) * 1e6) as u64 }
    }
}

/// Shared per-server state handed to every connection handler.
struct ServeState {
    registry: ModelRegistry,
    metrics: ServeMetrics,
    log: LogConfig,
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or inspecting the listening socket failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "could not start the server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running scoring server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains admitted connections,
/// and joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<WorkerPool>,
    workers: Option<Arc<WorkerPool>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("local_addr", &self.local_addr).finish()
    }
}

impl Server {
    /// Binds `addr` and starts serving `registry` in the background.
    ///
    /// Bind to port 0 for an ephemeral port and read the actual one
    /// back from [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = Arc::new(WorkerPool::new(config.workers, config.queue_capacity));
        let log = LogConfig::resolve(&config);
        let state = Arc::new(ServeState { registry, metrics: ServeMetrics::new(), log });

        let acceptor = WorkerPool::new(1, 1);
        {
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            let permit = acceptor.try_reserve().expect("fresh 1-slot pool has room");
            permit.execute(move || accept_loop(&listener, &workers, &state, &stop, &config));
        }
        Ok(Server { local_addr, stop, acceptor: Some(acceptor), workers: Some(workers) })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently admitted but not yet picked up by a
    /// worker (includes in-flight admissions).
    pub fn queue_len(&self) -> usize {
        self.workers.as_ref().map_or(0, |w| w.queue_len())
    }

    /// Stops accepting, drains every admitted connection, and joins
    /// all threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop may be parked in `accept()`; a throwaway
        // loopback connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(mut acceptor) = self.acceptor.take() {
            acceptor.shutdown();
        }
        // The accept loop has exited and dropped its pool handle, so
        // this is the last one; draining it answers every admitted
        // connection before the workers exit.
        if let Some(workers) = self.workers.take() {
            if let Some(mut pool) = Arc::into_inner(workers) {
                pool.shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    workers: &Arc<WorkerPool>,
    state: &Arc<ServeState>,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            // Transient accept failures (e.g. the peer vanished
            // between SYN and accept) are not fatal to the server.
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        match workers.try_reserve() {
            None => {
                // Queue full: the permit was never granted, so this
                // thread still owns the socket and can refuse politely.
                edm_trace::counter_add("serve.http.rejected", 1);
                let mut resp = error_response(503, "scoring queue is full");
                resp.retry_after = Some(config.retry_after_secs);
                respond_and_drain(&stream, &resp, config.max_body_bytes);
            }
            Some(permit) => {
                edm_trace::record("serve.queue.depth", workers.queue_len() as f64);
                let state = Arc::clone(state);
                let max_body = config.max_body_bytes;
                permit.execute(move || handle_connection(&stream, &state, max_body));
            }
        }
    }
}

fn handle_connection(stream: &TcpStream, state: &ServeState, max_body: usize) {
    edm_trace::counter_add("serve.http.requests", 1);
    let _span = edm_trace::span("serve.request");
    let id = state.metrics.next_request_id();
    let t0 = Instant::now();
    let mut reader = BufReader::new(stream);
    let (mut routed, drain) = match http::read_request(&mut reader, max_body) {
        Ok(request) => (route(&request, &state.registry, &state.metrics), false),
        // Requests that never parsed still count: they get the
        // sentinel endpoint `unparsed` and the draining close (their
        // bytes were not fully read).
        Err(HttpError::Malformed(why)) => {
            (Routed::plain(error_response(400, &why), "unparsed"), true)
        }
        Err(HttpError::TooLarge { limit }) => (
            Routed::plain(
                error_response(413, &format!("request body exceeds {limit} bytes")),
                "unparsed",
            ),
            true,
        ),
        // Dead or stalled socket: nobody is left to answer.
        Err(HttpError::Io(_)) => return,
    };
    routed.response.request_id = Some(id);
    if drain {
        respond_and_drain(stream, &routed.response, max_body);
    } else {
        respond(stream, &routed.response);
    }
    finish_request(state, id, &routed, (t0.elapsed().as_secs_f64() * 1e9) as u64);
}

/// Feeds one finished request to the serve-local metrics registry, the
/// labeled trace probes, and (when enabled, or when slow) the access
/// log.
fn finish_request(state: &ServeState, id: u64, routed: &Routed, latency_ns: u64) {
    let status = routed.response.status;
    state.metrics.observe(routed.endpoint, &routed.model, status, latency_ns);
    let status_label = status.to_string();
    edm_trace::counter_add_labeled(
        "serve.request.count",
        &[("endpoint", routed.endpoint), ("model", &routed.model), ("status", &status_label)],
        1,
    );
    edm_trace::record_labeled(
        "serve.request.handle_ns",
        &[("endpoint", routed.endpoint), ("model", &routed.model)],
        latency_ns as f64,
    );
    let slow = latency_ns >= state.log.slow_ns;
    if slow {
        edm_trace::counter_add("serve.request.slow", 1);
    }
    if state.log.enabled || slow {
        eprintln!(
            "edm-serve: request_id={id} endpoint={} model={} status={status} \
             latency_ms={:.3} slow={slow}",
            routed.endpoint,
            routed.model,
            latency_ns as f64 / 1e6,
        );
    }
}

/// Writes `resp`, ignoring socket errors — the client may already be
/// gone, and a failed write must not take the worker down.
fn respond(mut stream: &TcpStream, resp: &Response) {
    let _ = resp.write_to(&mut stream);
}

/// How much unread request the draining close will consume before
/// giving up, beyond the body cap (request line + headers).
const DRAIN_SLACK_BYTES: usize = 16 * 1024;

/// Answers a request that was *not* fully read: writes `resp`,
/// half-closes the write side, then drains (bounded) whatever the
/// client already sent. Closing a socket with unread bytes in its
/// receive buffer makes TCP send RST instead of FIN, which can
/// destroy the just-written response in the client's receive buffer —
/// exactly the 503/413 answers this server most needs to deliver.
fn respond_and_drain(mut stream: &TcpStream, resp: &Response, cap: usize) {
    let _ = resp.write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Write);
    // A well-behaved client closes as soon as it has read the
    // response (the half-close above ends its `read`), so this loop
    // normally sees EOF within a round trip; the short timeout bounds
    // the cost of a client that trickles instead.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                drained += n;
                if drained > cap + DRAIN_SLACK_BYTES {
                    break;
                }
            }
        }
    }
}

/// A routed response plus its telemetry classification.
struct Routed {
    response: Response,
    /// Static endpoint label: `healthz`, `metrics`, `models`,
    /// `predict`, `trace`, `other`, or `unparsed`.
    endpoint: &'static str,
    /// Model label: the registered name for predict requests, the
    /// bounded sentinel `unknown` for unregistered names, `-` for
    /// model-less endpoints (label cardinality stays finite either
    /// way).
    model: String,
}

impl Routed {
    fn plain(response: Response, endpoint: &'static str) -> Routed {
        Routed { response, endpoint, model: "-".to_string() }
    }
}

fn route(req: &Request, registry: &ModelRegistry, metrics: &ServeMetrics) -> Routed {
    match req.target.as_str() {
        "/healthz" => Routed::plain(
            require_get(req).unwrap_or_else(|| Response::text(200, "ok\n")),
            "healthz",
        ),
        "/metrics" => {
            Routed::plain(require_get(req).unwrap_or_else(|| metrics_response(metrics)), "metrics")
        }
        "/v1/models" => {
            Routed::plain(require_get(req).unwrap_or_else(|| models_response(registry)), "models")
        }
        "/v1/trace" => Routed::plain(require_get(req).unwrap_or_else(trace_response), "trace"),
        target if target.starts_with("/v1/models/") && target.ends_with(":predict") => {
            let name = &target["/v1/models/".len()..target.len() - ":predict".len()];
            let model = if registry.get(name).is_some() { name } else { "unknown" };
            let response = if req.method == "POST" {
                predict_response(name, &req.body, registry)
            } else {
                error_response(405, ":predict requires POST")
            };
            Routed { response, endpoint: "predict", model: model.to_string() }
        }
        _ => Routed::plain(error_response(404, "no such endpoint"), "other"),
    }
}

/// `/metrics`: the `edm-trace` registry families, the serve-local
/// request series, and the closing `# EOF` line, as one OpenMetrics
/// exposition.
fn metrics_response(metrics: &ServeMetrics) -> Response {
    let mut body = edm_trace::collect().openmetrics_body();
    body.push_str(&metrics.render_openmetrics());
    body.push_str("# EOF\n");
    Response {
        status: 200,
        content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
        retry_after: None,
        request_id: None,
        body: body.into_bytes(),
    }
}

/// `/v1/trace`: the live [`edm_trace::TraceReport`] as JSON.
fn trace_response() -> Response {
    match edm_trace::collect().to_json() {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, &format!("trace serialization failed: {e}")),
    }
}

/// `None` when the method is GET, otherwise the 405 to send.
fn require_get(req: &Request) -> Option<Response> {
    (req.method != "GET").then(|| error_response(405, "this endpoint requires GET"))
}

/// `{"error": msg}` with the given status.
fn error_response(status: u16, msg: &str) -> Response {
    let body = Value::Object(vec![("error".to_string(), Value::Str(msg.to_string()))]);
    Response::json(status, body.encode())
}

fn models_response(registry: &ModelRegistry) -> Response {
    let models: Vec<Value> = registry
        .list()
        .into_iter()
        .map(|m| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(m.name)),
                ("family".to_string(), Value::Str(m.family.to_string())),
                ("n_features".to_string(), Value::Number(m.n_features as f64)),
            ])
        })
        .collect();
    let body = Value::Object(vec![("models".to_string(), Value::Array(models))]);
    Response::json(200, body.encode())
}

fn predict_response(name: &str, body: &[u8], registry: &ModelRegistry) -> Response {
    let Some(model) = registry.get(name) else {
        return error_response(404, &format!("no model named {name:?}"));
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "request body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let Some(raw_rows) = doc.get("inputs").and_then(Value::as_array) else {
        return error_response(400, "body must be {\"inputs\": [[f64, ...], ...]}");
    };
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(raw_rows.len());
    for (i, raw_row) in raw_rows.iter().enumerate() {
        let Some(cells) = raw_row.as_array() else {
            return error_response(400, &format!("inputs[{i}] is not an array"));
        };
        let mut row = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            let Some(v) = cell.as_f64() else {
                return error_response(400, &format!("inputs[{i}][{j}] is not a number"));
            };
            row.push(v);
        }
        rows.push(row);
    }
    match model.predict_batch(&rows) {
        Ok(predictions) => {
            let body = Value::Object(vec![
                ("model".to_string(), Value::Str(name.to_string())),
                ("family".to_string(), Value::Str(model.name().to_string())),
                ("count".to_string(), Value::Number(predictions.len() as f64)),
                (
                    "predictions".to_string(),
                    Value::Array(predictions.into_iter().map(Value::Number).collect()),
                ),
            ]);
            Response::json(200, body.encode())
        }
        // A shape mismatch is the client's fault; anything else
        // (there is currently nothing else `predict_batch` can return)
        // would be the server's.
        Err(e @ edm::Error::Shape { .. }) => error_response(400, &e.to_string()),
        Err(e) => error_response(500, &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn registry_with_ridge() -> ModelRegistry {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut reg = ModelRegistry::new();
        reg.register("plane", Ridge::fit(&x, &y, 1e-6).expect("plane fits")).expect("register");
        reg
    }

    fn req(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Routes `r` against a throwaway metrics registry and returns the
    /// response alone (most routing tests don't care about labels).
    fn route_only(r: &Request, reg: &ModelRegistry) -> Response {
        route(r, reg, &ServeMetrics::new()).response
    }

    #[test]
    fn routing_table_without_sockets() {
        let reg = registry_with_ridge();
        assert_eq!(route_only(&req("GET", "/healthz", ""), &reg).status, 200);
        assert_eq!(route_only(&req("POST", "/healthz", ""), &reg).status, 405);
        assert_eq!(route_only(&req("GET", "/metrics", ""), &reg).status, 200);
        assert_eq!(route_only(&req("GET", "/v1/models", ""), &reg).status, 200);
        assert_eq!(route_only(&req("GET", "/v1/trace", ""), &reg).status, 200);
        assert_eq!(route_only(&req("POST", "/v1/trace", ""), &reg).status, 405);
        assert_eq!(route_only(&req("GET", "/v1/models/plane:predict", ""), &reg).status, 405);
        assert_eq!(route_only(&req("GET", "/nope", ""), &reg).status, 404);
        let ok =
            route_only(&req("POST", "/v1/models/plane:predict", r#"{"inputs": [[1, 1]]}"#), &reg);
        assert_eq!(ok.status, 200);
        let shown = String::from_utf8(ok.body).expect("utf8");
        assert!(shown.contains("\"predictions\":["), "body was {shown}");
    }

    #[test]
    fn routes_classify_endpoint_and_model() {
        let reg = registry_with_ridge();
        let m = ServeMetrics::new();
        let health = route(&req("GET", "/healthz", ""), &reg, &m);
        assert_eq!((health.endpoint, health.model.as_str()), ("healthz", "-"));
        let hit = route(&req("POST", "/v1/models/plane:predict", "{\"inputs\": []}"), &reg, &m);
        assert_eq!((hit.endpoint, hit.model.as_str()), ("predict", "plane"));
        // Unregistered names collapse to the bounded `unknown` label so
        // clients cannot mint unbounded metric series.
        let miss = route(&req("POST", "/v1/models/ghost:predict", "{}"), &reg, &m);
        assert_eq!((miss.endpoint, miss.model.as_str()), ("predict", "unknown"));
        let lost = route(&req("GET", "/nope", ""), &reg, &m);
        assert_eq!(lost.endpoint, "other");
    }

    #[test]
    fn trace_endpoint_returns_live_report_json() {
        let reg = registry_with_ridge();
        let resp = route_only(&req("GET", "/v1/trace", ""), &reg);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8"))
            .expect("live trace report parses with our own JSON parser");
        assert!(doc.get("level").is_some(), "report carries the trace level");
        assert!(doc.get("dropped_events").is_some(), "report carries the ring drop counter");
    }

    #[test]
    fn metrics_endpoint_composes_serve_families_and_eof() {
        let reg = registry_with_ridge();
        let m = ServeMetrics::new();
        m.observe("predict", "plane", 200, 1_500_000);
        let resp = route(&req("GET", "/metrics", ""), &reg, &m).response;
        let text = String::from_utf8(resp.body).expect("utf8");
        assert!(
            text.contains(
                "edm_serve_requests_total{endpoint=\"predict\",model=\"plane\",status=\"200\"} 1"
            ),
            "serve families missing from {text}"
        );
        assert!(text.ends_with("# EOF\n"), "exposition must end with EOF");
        assert_eq!(text.matches("# EOF").count(), 1, "exactly one EOF terminator");
    }

    #[test]
    fn predict_error_statuses() {
        let reg = registry_with_ridge();
        let predict = "/v1/models/plane:predict";
        // Unknown model.
        assert_eq!(route_only(&req("POST", "/v1/models/ghost:predict", "{}"), &reg).status, 404);
        // Not JSON at all.
        assert_eq!(route_only(&req("POST", predict, "not json"), &reg).status, 400);
        // JSON, wrong shape.
        assert_eq!(route_only(&req("POST", predict, "{\"rows\": []}"), &reg).status, 400);
        assert_eq!(route_only(&req("POST", predict, "{\"inputs\": [4]}"), &reg).status, 400);
        assert_eq!(route_only(&req("POST", predict, "{\"inputs\": [[true]]}"), &reg).status, 400);
        // Feature-count mismatch surfaces the facade Shape error.
        let mismatch = route_only(&req("POST", predict, "{\"inputs\": [[1, 2, 3]]}"), &reg);
        assert_eq!(mismatch.status, 400);
        let shown = String::from_utf8(mismatch.body).expect("utf8");
        assert!(shown.contains("expects"), "body was {shown}");
    }

    #[test]
    fn predictions_match_the_inherent_path() {
        let reg = registry_with_ridge();
        let model = reg.get("plane").expect("registered");
        let rows = vec![vec![0.25, 0.5], vec![0.75, -0.25]];
        let direct = model.predict_batch(&rows).expect("clean batch");
        let resp = route_only(
            &req("POST", "/v1/models/plane:predict", r#"{"inputs": [[0.25, 0.5], [0.75, -0.25]]}"#),
            &reg,
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
        let served: Vec<f64> = doc
            .get("predictions")
            .and_then(Value::as_array)
            .expect("predictions array")
            .iter()
            .map(|v| v.as_f64().expect("number"))
            .collect();
        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.to_bits(), d.to_bits(), "wire round trip changed a prediction");
        }
    }
}
