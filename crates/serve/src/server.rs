//! The threaded HTTP server: accept loop, keep-alive connection
//! handling, routing, backpressure, and graceful shutdown.
//!
//! # Threading model
//!
//! All threads live in [`edm_par::pool::WorkerPool`]s — the workspace
//! bans `thread::spawn` outside `edm-par`. A single-worker pool runs
//! the accept loop; a second pool of [`ServerConfig::workers`] threads
//! handles connections, behind a bounded queue of
//! [`ServerConfig::queue_capacity`] slots.
//!
//! # Keep-alive
//!
//! Connections are persistent (HTTP/1.1 default): one worker runs a
//! per-connection request loop until the client sends
//! `Connection: close`, the idle window ([`ServerConfig::idle_timeout`])
//! expires between requests, the per-connection request cap
//! ([`ServerConfig::max_requests_per_conn`]) is reached, or the server
//! shuts down. Each request re-arms the socket's read deadline
//! ([`ServerConfig::read_timeout`]), so a slow second request cannot
//! ride the first request's budget. Because a parked keep-alive
//! connection pins its worker, size [`ServerConfig::workers`] to the
//! number of concurrent connections, not concurrent requests.
//!
//! # Backpressure
//!
//! Admission is two-phase: the accept loop reserves a queue slot
//! *before* handing the socket to a worker. When no slot is free it
//! still owns the connection, so it answers
//! `503 Service Unavailable` with a `retry-after` header instead of
//! hanging the client or buffering unboundedly. Per-model
//! [`AdmissionTier`](crate::registry::AdmissionTier) quotas layer under
//! that global gate: a hot model that saturates its own in-flight quota
//! gets tier-specific 503s while other models keep scoring.
//!
//! # Micro-batching
//!
//! Predict requests score through the per-server
//! [`BatchScheduler`](crate::batch::BatchScheduler): concurrent
//! requests for the same model coalesce into one `predict_batch` call
//! (see the [`batch`](crate::batch) module docs for the flush policy).
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips the shutdown flag, wakes the accept loop
//! with a loopback connection, joins it, then drains the worker pool.
//! Idle keep-alive workers poll the flag between reads (≤ ~100 ms
//! ticks), so shutdown latency stays bounded even with parked
//! connections; every request already admitted is answered before the
//! threads exit.
//!
//! # Request-scoped telemetry
//!
//! Every request gets a monotonically increasing id (echoed as an
//! `x-request-id` header) and is classified into an `endpoint × model`
//! pair. Each finished request feeds three sinks: the always-on
//! [`ServeMetrics`] registry (per-status counts plus lifetime and
//! rolling-window latency series, rendered on `/metrics`), the
//! `edm-trace` labeled probes `serve.request.count` /
//! `serve.request.handle_ns` (active at `EDM_TRACE=summary` and
//! above), and an env-gated one-line access log on stderr
//! (`EDM_SERVE_LOG=1`; requests at or above the
//! `EDM_SERVE_SLOW_MS` threshold are always logged and counted under
//! `serve.request.slow`). `GET /v1/trace` returns the live
//! [`edm_trace::TraceReport`] as JSON for interactive debugging.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use std::{fmt, io};

use edm_par::pool::WorkerPool;

use crate::batch::{BatchConfig, BatchScheduler};
use crate::http::{self, HttpError, Request, Response};
use crate::json::{self, Value};
use crate::metrics::ServeMetrics;
use crate::registry::{ModelEntry, ModelRegistry, RegistrySnapshot, SharedRegistry};
use crate::store::ModelStore;

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue depth; connection number `queue_capacity + 1`
    /// while all workers are busy is refused with a 503.
    pub queue_capacity: usize,
    /// Per-request socket read timeout, re-armed for every request on
    /// a keep-alive connection.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`connection: close` on the final response).
    pub max_requests_per_conn: usize,
    /// Micro-batch scheduler tunables (see
    /// [`BatchConfig::from_env`] for the env-driven variant).
    pub batch: BatchConfig,
    /// Largest accepted request body, in bytes (413 beyond this).
    pub max_body_bytes: usize,
    /// Seconds advertised in the `retry-after` header of 503 responses.
    pub retry_after_secs: u32,
    /// Emit a one-line access log for every request (slow requests are
    /// logged regardless). `None` defers to the `EDM_SERVE_LOG`
    /// environment variable (truthy values: `1`, `true`, `on`).
    pub access_log: Option<bool>,
    /// Slow-request threshold in milliseconds. `None` defers to
    /// `EDM_SERVE_SLOW_MS`, defaulting to 500 ms.
    pub slow_ms: Option<f64>,
    /// Model directory for persisted `*.edm` containers. When set, the
    /// directory is scanned at startup (disk models overlay same-named
    /// registry entries), rescanned by `POST /v1/admin/reload`, and
    /// written by `POST /v1/models/{name}:train`. `None` disables the
    /// reload endpoint and makes `:train` register in-memory only.
    pub model_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(10),
            max_requests_per_conn: 10_000,
            batch: BatchConfig::default(),
            max_body_bytes: 1 << 20,
            retry_after_secs: 1,
            access_log: None,
            slow_ms: None,
            model_dir: None,
        }
    }
}

/// Resolved access-log settings (see [`ServerConfig::access_log`] and
/// [`ServerConfig::slow_ms`]).
#[derive(Debug, Clone, Copy)]
struct LogConfig {
    enabled: bool,
    slow_ns: u64,
}

impl LogConfig {
    fn resolve(config: &ServerConfig) -> LogConfig {
        let enabled = config.access_log.unwrap_or_else(|| {
            std::env::var("EDM_SERVE_LOG").is_ok_and(|v| {
                v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
            })
        });
        let slow_ms = config.slow_ms.unwrap_or_else(|| {
            std::env::var("EDM_SERVE_SLOW_MS")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(500.0)
        });
        LogConfig { enabled, slow_ns: (slow_ms.max(0.0) * 1e6) as u64 }
    }
}

/// Per-connection limits resolved from [`ServerConfig`].
#[derive(Debug, Clone, Copy)]
struct ConnConfig {
    read_timeout: Duration,
    idle_timeout: Duration,
    max_requests: usize,
    max_body: usize,
}

/// Hot-path trace probes, pre-resolved once at server start so the
/// per-request cost is an atomic add (counters) or one short
/// per-series lock (span), not a global-registry lock plus label
/// allocations.
struct HotProbes {
    connections: edm_trace::CounterHandle,
    requests: edm_trace::CounterHandle,
    request_span: edm_trace::SpanHandle,
}

impl HotProbes {
    fn resolve() -> HotProbes {
        HotProbes {
            connections: edm_trace::counter_handle("serve.http.connections", &[]),
            requests: edm_trace::counter_handle("serve.http.requests", &[]),
            request_span: edm_trace::span_handle("serve.request"),
        }
    }
}

/// Shared per-server state handed to every connection handler.
struct ServeState {
    /// The generation-swapped registry. Requests take one snapshot at
    /// routing time and score entirely against it, so reloads never
    /// disturb in-flight work.
    registry: SharedRegistry,
    /// The registry the server was started with, before any disk
    /// overlay — the rebuild base for `POST /v1/admin/reload` (models
    /// deleted from the directory fall back to, or disappear from,
    /// this baseline).
    base: ModelRegistry,
    /// Model directory, when configured.
    store: Option<ModelStore>,
    metrics: ServeMetrics,
    batcher: BatchScheduler,
    log: LogConfig,
    conn: ConnConfig,
    stop: Arc<AtomicBool>,
    probes: HotProbes,
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or inspecting the listening socket failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "could not start the server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running scoring server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains admitted connections,
/// and joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<WorkerPool>,
    workers: Option<Arc<WorkerPool>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("local_addr", &self.local_addr).finish()
    }
}

impl Server {
    /// Binds `addr` and starts serving `registry` in the background.
    ///
    /// Bind to port 0 for an ephemeral port and read the actual one
    /// back from [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        registry: ModelRegistry,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = Arc::new(WorkerPool::new(config.workers, config.queue_capacity));
        let log = LogConfig::resolve(&config);
        let conn = ConnConfig {
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
            max_requests: config.max_requests_per_conn.max(1),
            max_body: config.max_body_bytes,
        };
        let store = config.model_dir.clone().map(ModelStore::new);
        // Startup scan: disk models overlay the programmatic registry
        // as generation 1. Per-file load failures are reported and
        // skipped — a corrupt container must not stop the server from
        // serving everything else.
        let mut generation_one = registry.clone();
        if let Some(store) = &store {
            match store.scan() {
                Ok(report) => {
                    for (file, why) in &report.errors {
                        eprintln!("edm-serve: skipping model file {file}: {why}");
                    }
                    report.apply(&mut generation_one);
                }
                Err(e) => {
                    eprintln!(
                        "edm-serve: model dir {} is unreadable: {e}",
                        store.dir().display()
                    );
                }
            }
        }
        let state = Arc::new(ServeState {
            registry: SharedRegistry::new(generation_one),
            base: registry,
            store,
            metrics: ServeMetrics::new(),
            batcher: BatchScheduler::new(config.batch.clone()),
            log,
            conn,
            stop: Arc::clone(&stop),
            probes: HotProbes::resolve(),
        });

        let acceptor = WorkerPool::new(1, 1);
        {
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            let permit = acceptor.try_reserve().expect("fresh 1-slot pool has room");
            permit.execute(move || accept_loop(&listener, &workers, &state, &stop, &config));
        }
        Ok(Server { local_addr, stop, acceptor: Some(acceptor), workers: Some(workers) })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently admitted but not yet picked up by a
    /// worker (includes in-flight admissions).
    pub fn queue_len(&self) -> usize {
        self.workers.as_ref().map_or(0, |w| w.queue_len())
    }

    /// Stops accepting, drains every admitted connection, and joins
    /// all threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop may be parked in `accept()`; a throwaway
        // loopback connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(mut acceptor) = self.acceptor.take() {
            acceptor.shutdown();
        }
        // The accept loop has exited and dropped its pool handle, so
        // this is the last one; draining it answers every admitted
        // connection before the workers exit.
        if let Some(workers) = self.workers.take() {
            if let Some(mut pool) = Arc::into_inner(workers) {
                pool.shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    workers: &Arc<WorkerPool>,
    state: &Arc<ServeState>,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            // Transient accept failures (e.g. the peer vanished
            // between SYN and accept) are not fatal to the server.
            Err(_) => continue,
        };
        // The read timeout stays pinned to IDLE_POLL for the whole
        // connection; per-request read budgets are enforced by
        // `DeadlineReader` without further setsockopt round trips.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        // Request/response ping-pong over keep-alive: never hold small
        // writes back for coalescing.
        let _ = stream.set_nodelay(true);
        match workers.try_reserve() {
            None => {
                // Queue full: the permit was never granted, so this
                // thread still owns the socket and can refuse politely.
                edm_trace::counter_add("serve.http.rejected", 1);
                let mut resp = error_response(503, "scoring queue is full");
                resp.retry_after = Some(config.retry_after_secs);
                respond_and_drain(&stream, &resp, config.max_body_bytes);
            }
            Some(permit) => {
                edm_trace::record("serve.queue.depth", workers.queue_len() as f64);
                let state = Arc::clone(state);
                permit.execute(move || handle_connection(&stream, &state));
            }
        }
    }
}

/// Poll tick for the keep-alive idle wait: parked workers observe the
/// shutdown flag (and the idle deadline) at this granularity. The
/// socket's OS read timeout is pinned to this value for the whole
/// connection; [`DeadlineReader`] turns the ticks into per-request
/// read budgets without per-request `setsockopt` calls.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// `Read` adapter enforcing a replaceable deadline over a socket whose
/// OS timeout is pinned to [`IDLE_POLL`]: timeout ticks are retried
/// until `deadline`, then surfaced as `TimedOut`. One read is always
/// attempted, so an already-expired deadline still drains buffered
/// bytes and acts as a single poll tick.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let mut stream = self.stream;
            match stream.read(buf) {
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if Instant::now() >= self.deadline {
                        return Err(e);
                    }
                }
                other => return other,
            }
        }
    }
}

/// Blocks until the next request's first bytes are available. Returns
/// `false` when the connection should close instead: client EOF, idle
/// timeout, socket error, or server shutdown.
///
/// The wait polls: the reader's deadline is parked in the past so each
/// `fill_buf` is one [`IDLE_POLL`] tick, checking the stop flag and
/// the idle deadline between ticks. That keeps parked keep-alive
/// workers responsive to shutdown without any cross-thread connection
/// tracking.
///
/// `honor_stop` is `false` while waiting for a connection's *first*
/// request: a connection admitted before shutdown is still owed one
/// answer (graceful drain), so only subsequent requests are refused by
/// closing.
fn wait_for_request(
    reader: &mut BufReader<DeadlineReader<'_>>,
    state: &ServeState,
    honor_stop: bool,
) -> bool {
    // Pipelined bytes already buffered: no need to touch the socket.
    if !reader.buffer().is_empty() {
        return true;
    }
    let deadline = Instant::now() + state.conn.idle_timeout;
    reader.get_mut().deadline = Instant::now() - Duration::from_secs(1);
    loop {
        if honor_stop && state.stop.load(Ordering::SeqCst) {
            return false;
        }
        match reader.fill_buf() {
            Ok([]) => return false, // client closed
            Ok(_) => return true,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if Instant::now() >= deadline {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}

/// Scans digits out of a header value estimate (blanks skipped, stops
/// at the first non-digit) — only used by [`holds_complete_request`],
/// whose answer merely decides write corking; the authoritative parse
/// stays in `http::read_request`.
fn sniff_uint(bytes: &[u8]) -> usize {
    let mut v = 0usize;
    let mut seen = false;
    for &b in bytes {
        match b {
            b'0'..=b'9' => {
                v = v.saturating_mul(10).saturating_add((b - b'0') as usize);
                seen = true;
            }
            b' ' | b'\t' if !seen => {}
            _ => break,
        }
    }
    v
}

/// True when `buf` starts with one complete HTTP request: a terminated
/// header section plus any declared `content-length` body. When this
/// holds, the next loop iteration is guaranteed not to touch the
/// socket, so the current response may stay corked (buffered) and ride
/// the next write.
fn holds_complete_request(buf: &[u8]) -> bool {
    let mut line_start = 0usize;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let mut line_end = i;
        if line_end > line_start && buf[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        let line = &buf[line_start..line_end];
        if line.is_empty() {
            // Header section ends after this blank line; the body (if
            // any) must already be buffered in full. Later
            // `content-length` duplicates are ignored here, but the
            // authoritative parser rejects none of them either (last
            // one wins there too, via overwrite).
            let body_len = scan_content_length(&buf[..line_start]);
            return buf.len() - (i + 1) >= body_len;
        }
        line_start = i + 1;
    }
    false
}

/// `content-length` value within a buffered header section (0 when
/// absent), matching the authoritative parser's last-one-wins behavior.
fn scan_content_length(head: &[u8]) -> usize {
    let mut value = 0usize;
    let mut line_start = 0usize;
    for (i, &b) in head.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = &head[line_start..i];
        if line.len() > 15 && line[..15].eq_ignore_ascii_case(b"content-length:") {
            value = sniff_uint(&line[15..]);
        }
        line_start = i + 1;
    }
    let tail = &head[line_start..];
    if tail.len() > 15 && tail[..15].eq_ignore_ascii_case(b"content-length:") {
        value = sniff_uint(&tail[15..]);
    }
    value
}

/// Most response bytes held corked before forcing a flush.
const MAX_CORKED_BYTES: usize = 64 * 1024;

/// Serves one (keep-alive) connection: a request loop that re-arms the
/// read deadline per request and closes on `connection: close`, idle
/// timeout, the per-connection request cap, parse errors, or shutdown.
///
/// Responses are *corked* under pipelining: while the reader's buffer
/// already holds the next complete request, response bytes accumulate
/// and go out in one `write` once the pipeline drains (or the cork
/// cap is hit) — one syscall for a whole burst instead of one per
/// response. A response is never corked across a socket wait.
fn handle_connection(stream: &TcpStream, state: &ServeState) {
    state.probes.connections.add(1);
    let mut reader = BufReader::with_capacity(
        32 * 1024,
        DeadlineReader { stream, deadline: Instant::now() + state.conn.read_timeout },
    );
    let mut served = 0usize;
    let mut corked: Vec<u8> = Vec::new();
    while wait_for_request(&mut reader, state, served > 0) {
        // Fresh per-request read budget: a slow request N+1 cannot
        // ride whatever deadline request N left on the socket.
        reader.get_mut().deadline = Instant::now() + state.conn.read_timeout;
        state.probes.requests.add(1);
        let _span = state.probes.request_span.start();
        let id = state.metrics.next_request_id();
        let t0 = Instant::now();
        let (mut routed, drain, client_close) =
            match http::read_request(&mut reader, state.conn.max_body) {
                Ok(request) => {
                    let close = request.close;
                    (route(&request, state), false, close)
                }
                // Requests that never parsed still count: they get the
                // sentinel endpoint `unparsed` and the draining close
                // (their bytes were not fully read, so the connection
                // cannot be reused).
                Err(HttpError::Malformed(why)) => {
                    (Routed::plain(error_response(400, &why), "unparsed"), true, true)
                }
                Err(HttpError::TooLarge { limit }) => (
                    Routed::plain(
                        error_response(413, &format!("request body exceeds {limit} bytes")),
                        "unparsed",
                    ),
                    true,
                    true,
                ),
                // Dead or stalled socket: nobody is left to answer.
                Err(HttpError::Io(_)) => return,
            };
        served += 1;
        let close =
            client_close || served >= state.conn.max_requests || state.stop.load(Ordering::SeqCst);
        routed.response.request_id = Some(id);
        routed.response.close = close;
        if drain {
            flush_corked(stream, &mut corked);
            respond_and_drain(stream, &routed.response, state.conn.max_body);
        } else if !close
            && corked.len() < MAX_CORKED_BYTES
            && holds_complete_request(reader.buffer())
        {
            corked.extend_from_slice(&routed.response.to_bytes());
        } else if corked.is_empty() {
            respond(stream, &routed.response);
        } else {
            corked.extend_from_slice(&routed.response.to_bytes());
            flush_corked(stream, &mut corked);
        }
        finish_request(state, id, &routed, (t0.elapsed().as_secs_f64() * 1e9) as u64);
        if close {
            return;
        }
    }
    flush_corked(stream, &mut corked);
}

/// Writes any corked response bytes, ignoring socket errors like
/// [`respond`].
fn flush_corked(stream: &TcpStream, corked: &mut Vec<u8>) {
    if corked.is_empty() {
        return;
    }
    let mut stream = stream;
    let _ = stream.write_all(corked);
    corked.clear();
}

/// Resolved labeled handles for one (endpoint, status, model) cell.
type RequestHandles = (edm_trace::CounterHandle, edm_trace::HistHandle);
/// Probe cache layout: `(endpoint, status) -> model -> handles`.
type RequestProbeCache = std::collections::BTreeMap<
    (&'static str, u16),
    std::collections::BTreeMap<String, RequestHandles>,
>;

thread_local! {
    /// Per-worker cache of resolved labeled request probes. Workers are
    /// long-lived pool threads and the label space is small (endpoints
    /// × models × statuses), so after warmup the per-request telemetry
    /// cost is two alloc-free map hits — no global trace-registry lock.
    static REQUEST_PROBES: std::cell::RefCell<RequestProbeCache> =
        const { std::cell::RefCell::new(std::collections::BTreeMap::new()) };
}

/// Feeds one finished request to the serve-local metrics registry, the
/// labeled trace probes, and (when enabled, or when slow) the access
/// log.
fn finish_request(state: &ServeState, id: u64, routed: &Routed, latency_ns: u64) {
    let status = routed.response.status;
    state.metrics.observe(routed.endpoint, &routed.model, status, latency_ns);
    REQUEST_PROBES.with(|cache| {
        let mut cache = cache.borrow_mut();
        let by_model = cache.entry((routed.endpoint, status)).or_default();
        let (count, handle_ns) = match by_model.get(routed.model.as_str()) {
            Some(handles) => handles,
            None => {
                let status_label = status.to_string();
                let labels = [
                    ("endpoint", routed.endpoint),
                    ("model", routed.model.as_str()),
                    ("status", status_label.as_str()),
                ];
                let count = edm_trace::counter_handle("serve.request.count", &labels);
                let handle_ns = edm_trace::hist_handle(
                    "serve.request.handle_ns",
                    &[("endpoint", routed.endpoint), ("model", routed.model.as_str())],
                );
                by_model.entry(routed.model.clone()).or_insert((count, handle_ns))
            }
        };
        count.add(1);
        handle_ns.record(latency_ns as f64);
    });
    let slow = latency_ns >= state.log.slow_ns;
    if slow {
        edm_trace::counter_add("serve.request.slow", 1);
    }
    if state.log.enabled || slow {
        eprintln!(
            "edm-serve: request_id={id} endpoint={} model={} status={status} \
             latency_ms={:.3} slow={slow}",
            routed.endpoint,
            routed.model,
            latency_ns as f64 / 1e6,
        );
    }
}

/// Writes `resp`, ignoring socket errors — the client may already be
/// gone, and a failed write must not take the worker down.
fn respond(mut stream: &TcpStream, resp: &Response) {
    let _ = resp.write_to(&mut stream);
}

/// How much unread request the draining close will consume before
/// giving up, beyond the body cap (request line + headers).
const DRAIN_SLACK_BYTES: usize = 16 * 1024;

/// Answers a request that was *not* fully read: writes `resp`,
/// half-closes the write side, then drains (bounded) whatever the
/// client already sent. Closing a socket with unread bytes in its
/// receive buffer makes TCP send RST instead of FIN, which can
/// destroy the just-written response in the client's receive buffer —
/// exactly the 503/413 answers this server most needs to deliver.
fn respond_and_drain(mut stream: &TcpStream, resp: &Response, cap: usize) {
    let _ = resp.write_to(&mut stream);
    let _ = stream.shutdown(Shutdown::Write);
    // A well-behaved client closes as soon as it has read the
    // response (the half-close above ends its `read`), so this loop
    // normally sees EOF within a round trip; the short timeout bounds
    // the cost of a client that trickles instead.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                drained += n;
                if drained > cap + DRAIN_SLACK_BYTES {
                    break;
                }
            }
        }
    }
}

/// A routed response plus its telemetry classification.
struct Routed {
    response: Response,
    /// Static endpoint label: `healthz`, `metrics`, `models`,
    /// `predict`, `train`, `reload`, `trace`, `other`, or `unparsed`.
    endpoint: &'static str,
    /// Model label: the registered name for predict requests, the
    /// bounded sentinel `unknown` for unregistered names, `-` for
    /// model-less endpoints (label cardinality stays finite either
    /// way).
    model: String,
}

impl Routed {
    fn plain(response: Response, endpoint: &'static str) -> Routed {
        Routed { response, endpoint, model: "-".to_string() }
    }
}

fn route(req: &Request, state: &ServeState) -> Routed {
    match req.target.as_str() {
        "/healthz" => Routed::plain(
            require_get(req).unwrap_or_else(|| Response::text(200, "ok\n")),
            "healthz",
        ),
        "/metrics" => Routed::plain(
            require_get(req).unwrap_or_else(|| metrics_response(&state.metrics)),
            "metrics",
        ),
        "/v1/models" => Routed::plain(
            require_get(req).unwrap_or_else(|| models_response(&state.registry.snapshot())),
            "models",
        ),
        "/v1/trace" => Routed::plain(require_get(req).unwrap_or_else(trace_response), "trace"),
        "/v1/admin/reload" => {
            let response = if req.method == "POST" {
                reload_response(state)
            } else {
                error_response(405, "reload requires POST")
            };
            Routed::plain(response, "reload")
        }
        target if target.starts_with("/v1/models/") && target.ends_with(":predict") => {
            let name = &target["/v1/models/".len()..target.len() - ":predict".len()];
            // One snapshot for the whole request: lookup, telemetry
            // labels, scoring, and the generation header all agree even
            // if a reload swaps the registry mid-request.
            let snapshot = state.registry.snapshot();
            let model = if snapshot.registry.get(name).is_some() { name } else { "unknown" };
            let mut response = if req.method == "POST" {
                predict_response(name, &req.body, &snapshot, state)
            } else {
                error_response(405, ":predict requires POST")
            };
            response.model_generation = Some(snapshot.generation);
            Routed { response, endpoint: "predict", model: model.to_string() }
        }
        target if target.starts_with("/v1/models/") && target.ends_with(":train") => {
            let name = &target["/v1/models/".len()..target.len() - ":train".len()];
            let known = state.registry.snapshot().registry.get(name).is_some();
            let response = if req.method == "POST" {
                train_response(name, &req.body, state)
            } else {
                error_response(405, ":train requires POST")
            };
            // Bounded label cardinality: a name only becomes a metric
            // label once it actually names a model (pre-existing or
            // just trained) — failed requests at arbitrary names
            // collapse to `unknown`.
            let model = if known || response.status == 200 { name } else { "unknown" };
            Routed { response, endpoint: "train", model: model.to_string() }
        }
        _ => Routed::plain(error_response(404, "no such endpoint"), "other"),
    }
}

/// `/metrics`: the `edm-trace` registry families, the serve-local
/// request series, and the closing `# EOF` line, as one OpenMetrics
/// exposition.
fn metrics_response(metrics: &ServeMetrics) -> Response {
    let mut body = edm_trace::collect().openmetrics_body();
    body.push_str(&metrics.render_openmetrics());
    body.push_str("# EOF\n");
    Response {
        status: 200,
        content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
        retry_after: None,
        request_id: None,
        model_generation: None,
        close: false,
        body: body.into_bytes(),
    }
}

/// `/v1/trace`: the live [`edm_trace::TraceReport`] as JSON.
fn trace_response() -> Response {
    match edm_trace::collect().to_json() {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, &format!("trace serialization failed: {e}")),
    }
}

/// `None` when the method is GET, otherwise the 405 to send.
fn require_get(req: &Request) -> Option<Response> {
    (req.method != "GET").then(|| error_response(405, "this endpoint requires GET"))
}

/// `{"error": msg}` with the given status.
fn error_response(status: u16, msg: &str) -> Response {
    let body = Value::Object(vec![("error".to_string(), Value::Str(msg.to_string()))]);
    Response::json(status, body.encode())
}

fn models_response(snapshot: &RegistrySnapshot) -> Response {
    let models: Vec<Value> = snapshot
        .registry
        .list()
        .into_iter()
        .map(|m| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(m.name)),
                ("family".to_string(), Value::Str(m.family.to_string())),
                ("n_features".to_string(), Value::Number(m.n_features as f64)),
                ("generation".to_string(), Value::Number(snapshot.generation as f64)),
                (
                    "loaded_from".to_string(),
                    m.loaded_from.map_or(Value::Null, Value::Str),
                ),
                (
                    "checksum".to_string(),
                    m.checksum.map_or(Value::Null, |c| Value::Number(c as f64)),
                ),
            ])
        })
        .collect();
    let body = Value::Object(vec![
        ("generation".to_string(), Value::Number(snapshot.generation as f64)),
        ("models".to_string(), Value::Array(models)),
    ]);
    Response::json(200, body.encode())
}

/// `POST /v1/admin/reload`: rescans the model directory, overlays the
/// result onto the startup baseline, and publishes the new registry as
/// the next generation. In-flight requests finish on the generation
/// they started with.
fn reload_response(state: &ServeState) -> Response {
    let Some(store) = &state.store else {
        return error_response(409, "no model directory configured (set model_dir or EDM_SERVE_MODEL_DIR)");
    };
    let _span = edm_trace::span("serve.reload");
    let report = match store.scan() {
        Ok(report) => report,
        Err(e) => {
            return error_response(
                500,
                &format!("model dir {} is unreadable: {e}", store.dir().display()),
            );
        }
    };
    if !report.errors.is_empty() {
        edm_trace::counter_add("serve.reload.errors", report.errors.len() as u64);
    }
    // Build the whole next generation offline, then swap: the write
    // lock is held only for the pointer exchange.
    let mut next = state.base.clone();
    report.apply(&mut next);
    let loaded: Vec<Value> =
        report.models.iter().map(|m| Value::Str(m.name.clone())).collect();
    let errors: Vec<(String, Value)> =
        report.errors.iter().map(|(f, why)| (f.clone(), Value::Str(why.clone()))).collect();
    let generation = state.registry.swap(next);
    let body = Value::Object(vec![
        ("generation".to_string(), Value::Number(generation as f64)),
        ("loaded".to_string(), Value::Array(loaded)),
        ("errors".to_string(), Value::Object(errors)),
    ]);
    Response::json(200, body.encode())
}

/// Parses the `:train` body:
/// `{"family": "...", "inputs": [[...], ...], "targets": [...]}`
/// (`targets` optional — the one-class family ignores labels).
fn parse_train_strict(text: &str) -> Result<(String, Vec<Vec<f64>>, Vec<f64>), Response> {
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Err(error_response(400, &e.to_string())),
    };
    let Some(family) = doc.get("family").and_then(Value::as_str) else {
        return Err(error_response(
            400,
            "body must be {\"family\": str, \"inputs\": [[f64, ...], ...], \"targets\": [f64, ...]}",
        ));
    };
    let Some(raw_rows) = doc.get("inputs").and_then(Value::as_array) else {
        return Err(error_response(400, "missing \"inputs\" array"));
    };
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(raw_rows.len());
    for (i, raw_row) in raw_rows.iter().enumerate() {
        let Some(cells) = raw_row.as_array() else {
            return Err(error_response(400, &format!("inputs[{i}] is not an array")));
        };
        let mut row = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            let Some(v) = cell.as_f64() else {
                return Err(error_response(400, &format!("inputs[{i}][{j}] is not a number")));
            };
            row.push(v);
        }
        rows.push(row);
    }
    let targets: Vec<f64> = match doc.get("targets") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Array(raw)) => {
            let mut ys = Vec::with_capacity(raw.len());
            for (i, cell) in raw.iter().enumerate() {
                let Some(v) = cell.as_f64() else {
                    return Err(error_response(400, &format!("targets[{i}] is not a number")));
                };
                ys.push(v);
            }
            ys
        }
        Some(_) => return Err(error_response(400, "\"targets\" is not an array")),
    };
    Ok((family.to_string(), rows, targets))
}

/// `POST /v1/models/{name}:train`: trains a fresh model of the
/// requested family on the supplied data (default hyperparameters via
/// [`edm::fit_family`]), persists it to the model directory when one
/// is configured, and publishes it as the next registry generation.
fn train_response(name: &str, body: &[u8], state: &ServeState) -> Response {
    if !ModelRegistry::valid_name(name) {
        return error_response(
            400,
            &format!("invalid model name {name:?}: use 1+ characters from [A-Za-z0-9_.-]"),
        );
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "request body is not UTF-8"),
    };
    let (family, rows, targets) = match parse_train_strict(text) {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    if rows.is_empty() {
        return error_response(400, "training needs at least one input row");
    }
    if family != "one_class_svm" && targets.len() != rows.len() {
        return error_response(
            400,
            &format!("targets has {} entries for {} input rows", targets.len(), rows.len()),
        );
    }
    let _span = edm_trace::span("serve.train");
    let model = match edm::fit_family(&family, &rows, &targets) {
        Ok(model) => model,
        Err(e) => return error_response(400, &format!("training failed: {e}")),
    };
    // Persist before publishing: a model the client was told is live
    // must survive the next reload.
    let mut saved: Option<(String, u32)> = None;
    if let Some(store) = &state.store {
        match store.save(name, model.as_ref()) {
            Ok((path, checksum)) => saved = Some((path.display().to_string(), checksum)),
            Err(e) => return error_response(500, &format!("could not persist the model: {e}")),
        }
    }
    let n_features = model.n_features();
    let family_tag = model.name();
    let served: crate::registry::ServedModel = Arc::new(TrainedPredictor(model));
    // Next generation = the current one plus (or replacing) this
    // model; a replaced entry keeps its admission gate.
    let snapshot = state.registry.snapshot();
    let mut next = snapshot.registry.clone();
    let gate = next.get_entry(name).and_then(|e| e.gate);
    let entry = ModelEntry {
        model: served,
        gate,
        loaded_from: saved.as_ref().map(|(path, _)| path.clone()),
        checksum: saved.as_ref().map(|&(_, checksum)| checksum),
    };
    if let Err(e) = next.upsert_entry(name, entry) {
        return error_response(400, &e.to_string());
    }
    let generation = state.registry.swap(next);
    let body = Value::Object(vec![
        ("model".to_string(), Value::Str(name.to_string())),
        ("family".to_string(), Value::Str(family_tag.to_string())),
        ("n_features".to_string(), Value::Number(n_features as f64)),
        ("generation".to_string(), Value::Number(generation as f64)),
        (
            "saved_to".to_string(),
            saved.as_ref().map_or(Value::Null, |(path, _)| Value::Str(path.clone())),
        ),
        (
            "checksum".to_string(),
            saved.as_ref().map_or(Value::Null, |&(_, checksum)| Value::Number(checksum as f64)),
        ),
    ]);
    Response::json(200, body.encode())
}

/// Adapter serving a freshly trained
/// `Box<dyn edm::PersistentPredictor>` as a registry model.
struct TrainedPredictor(Box<dyn edm::PersistentPredictor + Send + Sync>);

impl edm::Predictor for TrainedPredictor {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, edm::Error> {
        self.0.predict_batch(xs)
    }

    fn n_features(&self) -> usize {
        self.0.n_features()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// The general-parser inputs path: builds the [`Value`] tree so
/// malformed bodies get exact, offset-carrying 400s. The hot path
/// ([`json::parse_inputs_fast`]) only handles well-formed canonical
/// bodies and defers everything else here.
fn parse_inputs_strict(text: &str) -> Result<Vec<Vec<f64>>, Response> {
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Err(error_response(400, &e.to_string())),
    };
    let Some(raw_rows) = doc.get("inputs").and_then(Value::as_array) else {
        return Err(error_response(400, "body must be {\"inputs\": [[f64, ...], ...]}"));
    };
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(raw_rows.len());
    for (i, raw_row) in raw_rows.iter().enumerate() {
        let Some(cells) = raw_row.as_array() else {
            return Err(error_response(400, &format!("inputs[{i}] is not an array")));
        };
        let mut row = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            let Some(v) = cell.as_f64() else {
                return Err(error_response(400, &format!("inputs[{i}][{j}] is not a number")));
            };
            row.push(v);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn predict_response(
    name: &str,
    body: &[u8],
    snapshot: &RegistrySnapshot,
    state: &ServeState,
) -> Response {
    let Some(entry) = snapshot.registry.get_entry(name) else {
        return error_response(404, &format!("no model named {name:?}"));
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "request body is not UTF-8"),
    };
    let rows = match json::parse_inputs_fast(text) {
        Some(rows) => rows,
        None => match parse_inputs_strict(text) {
            Ok(rows) => rows,
            Err(resp) => return resp,
        },
    };
    // Shape pre-validation: a mismatched request must be rejected
    // *before* it can join a coalesced batch, where its Shape error
    // would fail every innocent co-batched request.
    let expected = entry.model.n_features();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != expected {
            let e = edm::Error::Shape { row: i, expected, found: row.len() };
            return error_response(400, &e.to_string());
        }
    }
    // Per-model admission: claim a tier unit for the whole scoring
    // call; saturated tiers refuse with their own Retry-After while
    // other models' requests keep flowing.
    let _permit = match &entry.gate {
        None => None,
        Some(gate) => match gate.try_acquire() {
            Some(permit) => Some(permit),
            None => {
                let tier = gate.tier();
                state.metrics.tier_reject(name, &tier.name);
                edm_trace::counter_add_labeled(
                    "serve.tier.rejected",
                    &[("model", name), ("tier", &tier.name)],
                    1,
                );
                let mut resp = error_response(
                    503,
                    &format!("model {name:?} is saturated (tier {:?})", tier.name),
                );
                resp.retry_after = Some(tier.retry_after_secs.min(u32::MAX as u64) as u32);
                return resp;
            }
        },
    };
    // Shapes were validated above, so any scheduler error left is the
    // server's fault (predictor failure/panic), not the client's.
    match state.batcher.submit(name, snapshot.generation, &entry.model, rows, &state.metrics) {
        Ok(predictions) => {
            // Hand-rolled encoding of the success body: same bytes the
            // `Value` tree would produce (numbers render via `{:?}`,
            // strings via the shared escaper), without building one
            // node per prediction.
            use std::fmt::Write as _;
            let mut body = String::with_capacity(96 + 24 * predictions.len());
            body.push_str("{\"model\":");
            json::write_escaped(name, &mut body);
            body.push_str(",\"family\":");
            json::write_escaped(entry.model.name(), &mut body);
            let _ = write!(body, ",\"count\":{:?},\"predictions\":[", predictions.len() as f64);
            for (i, p) in predictions.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                if p.is_finite() {
                    let _ = write!(body, "{p:?}");
                } else {
                    body.push_str("null");
                }
            }
            body.push_str("]}");
            Response::json(200, body)
        }
        Err(e) => error_response(500, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn registry_with_ridge() -> ModelRegistry {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut reg = ModelRegistry::new();
        reg.register("plane", Ridge::fit(&x, &y, 1e-6).expect("plane fits")).expect("register");
        reg
    }

    fn req(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// Wraps `reg` in a throwaway server state (default batching, no
    /// logging) for socket-less routing tests.
    fn test_state(reg: ModelRegistry) -> ServeState {
        test_state_with_store(reg, None)
    }

    fn test_state_with_store(reg: ModelRegistry, store: Option<ModelStore>) -> ServeState {
        ServeState {
            registry: SharedRegistry::new(reg.clone()),
            base: reg,
            store,
            metrics: ServeMetrics::new(),
            batcher: BatchScheduler::new(BatchConfig::default()),
            log: LogConfig { enabled: false, slow_ns: u64::MAX },
            conn: ConnConfig {
                read_timeout: Duration::from_secs(5),
                idle_timeout: Duration::from_secs(5),
                max_requests: 100,
                max_body: 1 << 20,
            },
            stop: Arc::new(AtomicBool::new(false)),
            probes: HotProbes::resolve(),
        }
    }

    /// Routes `r` against a throwaway state and returns the response
    /// alone (most routing tests don't care about labels).
    fn route_only(r: &Request, reg: &ModelRegistry) -> Response {
        let state = test_state(reg.clone());
        route(r, &state).response
    }

    #[test]
    fn routing_table_without_sockets() {
        let reg = registry_with_ridge();
        assert_eq!(route_only(&req("GET", "/healthz", ""), &reg).status, 200);
        assert_eq!(route_only(&req("POST", "/healthz", ""), &reg).status, 405);
        assert_eq!(route_only(&req("GET", "/metrics", ""), &reg).status, 200);
        assert_eq!(route_only(&req("GET", "/v1/models", ""), &reg).status, 200);
        assert_eq!(route_only(&req("GET", "/v1/trace", ""), &reg).status, 200);
        assert_eq!(route_only(&req("POST", "/v1/trace", ""), &reg).status, 405);
        assert_eq!(route_only(&req("GET", "/v1/models/plane:predict", ""), &reg).status, 405);
        assert_eq!(route_only(&req("GET", "/nope", ""), &reg).status, 404);
        let ok =
            route_only(&req("POST", "/v1/models/plane:predict", r#"{"inputs": [[1, 1]]}"#), &reg);
        assert_eq!(ok.status, 200);
        let shown = String::from_utf8(ok.body).expect("utf8");
        assert!(shown.contains("\"predictions\":["), "body was {shown}");
    }

    #[test]
    fn routes_classify_endpoint_and_model() {
        let state = test_state(registry_with_ridge());
        let health = route(&req("GET", "/healthz", ""), &state);
        assert_eq!((health.endpoint, health.model.as_str()), ("healthz", "-"));
        let hit = route(&req("POST", "/v1/models/plane:predict", "{\"inputs\": []}"), &state);
        assert_eq!((hit.endpoint, hit.model.as_str()), ("predict", "plane"));
        // Unregistered names collapse to the bounded `unknown` label so
        // clients cannot mint unbounded metric series.
        let miss = route(&req("POST", "/v1/models/ghost:predict", "{}"), &state);
        assert_eq!((miss.endpoint, miss.model.as_str()), ("predict", "unknown"));
        let lost = route(&req("GET", "/nope", ""), &state);
        assert_eq!(lost.endpoint, "other");
    }

    #[test]
    fn saturated_tier_refuses_with_retry_after() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut reg = ModelRegistry::new();
        reg.register_tiered(
            "plane",
            Ridge::fit(&x, &y, 1e-6).expect("plane fits"),
            crate::registry::AdmissionTier {
                name: "bulk".to_string(),
                max_in_flight: 1,
                retry_after_secs: 7,
            },
        )
        .expect("tiered register");
        let state = test_state(reg);
        // Hold the model's only quota unit, as an in-flight request
        // would, then route a second predict at it.
        let gate = state
            .registry
            .snapshot()
            .registry
            .get_entry("plane")
            .expect("entry")
            .gate
            .expect("tiered");
        let held = gate.try_acquire().expect("first unit");
        let refused =
            route(&req("POST", "/v1/models/plane:predict", "{\"inputs\": [[1, 1]]}"), &state);
        assert_eq!(refused.response.status, 503);
        assert_eq!(refused.response.retry_after, Some(7), "tier-specific Retry-After");
        assert_eq!(
            state.metrics.tier_reject_snapshot().get(&("plane".into(), "bulk".into())),
            Some(&1)
        );
        drop(held);
        let admitted =
            route(&req("POST", "/v1/models/plane:predict", "{\"inputs\": [[1, 1]]}"), &state);
        assert_eq!(admitted.response.status, 200, "freed quota admits again");
        assert_eq!(gate.in_flight(), 0, "permit returned after scoring");
    }

    #[test]
    fn trace_endpoint_returns_live_report_json() {
        let reg = registry_with_ridge();
        let resp = route_only(&req("GET", "/v1/trace", ""), &reg);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8"))
            .expect("live trace report parses with our own JSON parser");
        assert!(doc.get("level").is_some(), "report carries the trace level");
        assert!(doc.get("dropped_events").is_some(), "report carries the ring drop counter");
    }

    #[test]
    fn metrics_endpoint_composes_serve_families_and_eof() {
        let state = test_state(registry_with_ridge());
        state.metrics.observe("predict", "plane", 200, 1_500_000);
        let resp = route(&req("GET", "/metrics", ""), &state).response;
        let text = String::from_utf8(resp.body).expect("utf8");
        assert!(
            text.contains(
                "edm_serve_requests_total{endpoint=\"predict\",model=\"plane\",status=\"200\"} 1"
            ),
            "serve families missing from {text}"
        );
        assert!(text.ends_with("# EOF\n"), "exposition must end with EOF");
        assert_eq!(text.matches("# EOF").count(), 1, "exactly one EOF terminator");
    }

    #[test]
    fn predict_error_statuses() {
        let reg = registry_with_ridge();
        let predict = "/v1/models/plane:predict";
        // Unknown model.
        assert_eq!(route_only(&req("POST", "/v1/models/ghost:predict", "{}"), &reg).status, 404);
        // Not JSON at all.
        assert_eq!(route_only(&req("POST", predict, "not json"), &reg).status, 400);
        // JSON, wrong shape.
        assert_eq!(route_only(&req("POST", predict, "{\"rows\": []}"), &reg).status, 400);
        assert_eq!(route_only(&req("POST", predict, "{\"inputs\": [4]}"), &reg).status, 400);
        assert_eq!(route_only(&req("POST", predict, "{\"inputs\": [[true]]}"), &reg).status, 400);
        // Feature-count mismatch surfaces the facade Shape error.
        let mismatch = route_only(&req("POST", predict, "{\"inputs\": [[1, 2, 3]]}"), &reg);
        assert_eq!(mismatch.status, 400);
        let shown = String::from_utf8(mismatch.body).expect("utf8");
        assert!(shown.contains("expects"), "body was {shown}");
    }

    #[test]
    fn predictions_match_the_inherent_path() {
        let reg = registry_with_ridge();
        let model = reg.get("plane").expect("registered");
        let rows = vec![vec![0.25, 0.5], vec![0.75, -0.25]];
        let direct = model.predict_batch(&rows).expect("clean batch");
        let resp = route_only(
            &req("POST", "/v1/models/plane:predict", r#"{"inputs": [[0.25, 0.5], [0.75, -0.25]]}"#),
            &reg,
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
        let served: Vec<f64> = doc
            .get("predictions")
            .and_then(Value::as_array)
            .expect("predictions array")
            .iter()
            .map(|v| v.as_f64().expect("number"))
            .collect();
        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.to_bits(), d.to_bits(), "wire round trip changed a prediction");
        }
    }

    #[test]
    fn predict_responses_carry_the_generation_header() {
        let state = test_state(registry_with_ridge());
        let hit =
            route(&req("POST", "/v1/models/plane:predict", r#"{"inputs": [[1, 1]]}"#), &state);
        assert_eq!(hit.response.model_generation, Some(1));
        // Misses stamp the generation too: the header describes the
        // registry consulted, not the model found.
        let miss = route(&req("POST", "/v1/models/ghost:predict", "{}"), &state);
        assert_eq!(miss.response.model_generation, Some(1));
        let health = route(&req("GET", "/healthz", ""), &state);
        assert_eq!(health.response.model_generation, None);
    }

    #[test]
    fn models_endpoint_reports_generation_and_provenance() {
        let state = test_state(registry_with_ridge());
        let resp = route(&req("GET", "/v1/models", ""), &state).response;
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
        assert_eq!(doc.get("generation").and_then(Value::as_f64), Some(1.0));
        let models = doc.get("models").and_then(Value::as_array).expect("models array");
        assert_eq!(models.len(), 1);
        let plane = &models[0];
        assert_eq!(plane.get("name").and_then(Value::as_str), Some("plane"));
        assert_eq!(plane.get("family").and_then(Value::as_str), Some("ridge"));
        assert_eq!(plane.get("generation").and_then(Value::as_f64), Some(1.0));
        assert!(
            matches!(plane.get("loaded_from"), Some(Value::Null)),
            "programmatic models have no provenance"
        );
        assert!(matches!(plane.get("checksum"), Some(Value::Null)));
    }

    #[test]
    fn reload_without_a_store_conflicts() {
        let state = test_state(registry_with_ridge());
        let resp = route(&req("POST", "/v1/admin/reload", ""), &state);
        assert_eq!((resp.response.status, resp.endpoint), (409, "reload"));
        assert_eq!(route(&req("GET", "/v1/admin/reload", ""), &state).response.status, 405);
    }

    #[test]
    fn reload_swaps_in_disk_models_and_bumps_the_generation() {
        let dir =
            std::env::temp_dir().join(format!("edm-server-reload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ModelStore::new(&dir);
        let state = test_state_with_store(registry_with_ridge(), Some(store.clone()));

        // Nothing on disk yet: reload succeeds, keeps the baseline.
        let empty = route(&req("POST", "/v1/admin/reload", ""), &state).response;
        assert_eq!(empty.status, 200);
        assert_eq!(state.registry.generation(), 2);

        // Drop a new model into the directory and reload again.
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0.0, 2.0, 4.0];
        let line = Ridge::fit(&x, &y, 1e-9).expect("line fits");
        store.save("line", &line).expect("save");
        let resp = route(&req("POST", "/v1/admin/reload", ""), &state).response;
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("json");
        assert_eq!(doc.get("generation").and_then(Value::as_f64), Some(3.0));
        let snapshot = state.registry.snapshot();
        assert_eq!(snapshot.generation, 3);
        assert!(snapshot.registry.get("plane").is_some(), "baseline survives reloads");
        let entry = snapshot.registry.get_entry("line").expect("disk model registered");
        assert!(entry.loaded_from.is_some() && entry.checksum.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_fits_persists_and_publishes() {
        let dir = std::env::temp_dir().join(format!("edm-server-train-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state =
            test_state_with_store(registry_with_ridge(), Some(ModelStore::new(&dir)));
        let body = r#"{"family": "ridge", "inputs": [[0], [1], [2], [3]], "targets": [0, 3, 6, 9]}"#;
        let routed = route(&req("POST", "/v1/models/steep:train", body), &state);
        assert_eq!((routed.response.status, routed.model.as_str()), (200, "steep"));
        let doc =
            json::parse(std::str::from_utf8(&routed.response.body).expect("utf8")).expect("json");
        assert_eq!(doc.get("family").and_then(Value::as_str), Some("ridge"));
        assert_eq!(doc.get("generation").and_then(Value::as_f64), Some(2.0));
        assert!(doc.get("saved_to").and_then(Value::as_str).is_some(), "persisted to the store");
        assert!(doc.get("checksum").and_then(Value::as_f64).is_some());

        // The new model scores immediately, against the new generation.
        let hit =
            route(&req("POST", "/v1/models/steep:predict", r#"{"inputs": [[2]]}"#, ), &state);
        assert_eq!(hit.response.status, 200);
        assert_eq!(hit.response.model_generation, Some(2));
        // And it survives a reload, now loaded from disk.
        let reload = route(&req("POST", "/v1/admin/reload", ""), &state).response;
        assert_eq!(reload.status, 200);
        let entry =
            state.registry.snapshot().registry.get_entry("steep").expect("reloaded from disk");
        assert!(entry.loaded_from.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_error_statuses_and_label_bounding() {
        let state = test_state(registry_with_ridge());
        // Invalid name → 400, label collapses to `unknown`.
        let routed = route(&req("POST", "/v1/models/bad%20name:train", "{}"), &state);
        assert_eq!((routed.response.status, routed.model.as_str()), (400, "unknown"));
        // Unknown family → 400.
        let body = r#"{"family": "nope", "inputs": [[1]], "targets": [1]}"#;
        assert_eq!(route_only(&req("POST", "/v1/models/m:train", body), &registry_with_ridge()).status, 400);
        // Row/target mismatch → 400.
        let body = r#"{"family": "ridge", "inputs": [[1], [2]], "targets": [1]}"#;
        assert_eq!(route_only(&req("POST", "/v1/models/m:train", body), &registry_with_ridge()).status, 400);
        // No rows → 400.
        let body = r#"{"family": "ridge", "inputs": [], "targets": []}"#;
        assert_eq!(route_only(&req("POST", "/v1/models/m:train", body), &registry_with_ridge()).status, 400);
        // GET → 405.
        assert_eq!(route_only(&req("GET", "/v1/models/m:train", ""), &registry_with_ridge()).status, 405);
        // Training without a store still publishes (in-memory only).
        let body = r#"{"family": "ridge", "inputs": [[0], [1]], "targets": [0, 1]}"#;
        let trained = route(&req("POST", "/v1/models/mem:train", body), &state);
        assert_eq!(trained.response.status, 200);
        let doc = json::parse(std::str::from_utf8(&trained.response.body).expect("utf8"))
            .expect("json");
        assert!(matches!(doc.get("saved_to"), Some(Value::Null)), "no store, no file");
        assert!(state.registry.snapshot().registry.get("mem").is_some());
    }
}
