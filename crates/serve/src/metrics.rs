//! Request-scoped serving metrics, independent of the `edm-trace`
//! level so `/metrics` can always answer "which model is slow right
//! now".
//!
//! [`ServeMetrics`] keeps one series per `endpoint × model` pair:
//! per-status request counts, a **lifetime** latency histogram, and a
//! **rolling window** of the last [`WINDOW_SECS`] seconds (per-second
//! slots, so the window advances without rescanning history).
//! Latencies go into decilog histograms — bucket `i` covers
//! `[10^(i/10), 10^((i+1)/10))` nanoseconds, i.e. ~26% wide buckets —
//! which bounds quantile estimation error to one bucket edge while
//! keeping each series a fixed 128-slot array.
//!
//! Rendering ([`ServeMetrics::render_openmetrics`]) emits OpenMetrics
//! families **without** the `# EOF` terminator; the server composes
//! them after the `edm-trace` registry body and closes the exposition
//! itself. Timekeeping uses the monotonic [`Instant`] clock anchored at
//! construction (no wall-clock entropy).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use edm_par::sync::DbgMutex;

/// Width of the rolling latency window, in seconds.
pub const WINDOW_SECS: u64 = 60;

/// Decilog bucket count: bucket 127 starts at `10^12.7` ns ≈ 83 min,
/// far beyond any request this server answers.
const BUCKETS: usize = 128;

/// Bucket index for a latency: `floor(10·log10(ns))`, clamped.
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        return 0;
    }
    ((ns as f64).log10() * 10.0).floor().clamp(0.0, (BUCKETS - 1) as f64) as usize
}

/// Upper edge of bucket `i`, in nanoseconds.
fn bucket_edge_ns(i: usize) -> f64 {
    10f64.powf((i + 1) as f64 / 10.0)
}

/// Fixed-size decilog latency histogram.
#[derive(Clone)]
struct LogHist {
    count: u64,
    sum_ns: u64,
    buckets: [u64; BUCKETS],
}

impl LogHist {
    fn new() -> Self {
        LogHist { count: 0, sum_ns: 0, buckets: [0; BUCKETS] }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.buckets[bucket_index(ns)] += 1;
    }

    fn clear(&mut self) {
        self.count = 0;
        self.sum_ns = 0;
        self.buckets = [0; BUCKETS];
    }

    fn merge(&mut self, other: &LogHist) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Quantile estimate (bucket upper edge), `None` when empty. The
    /// estimate is at most one decilog bucket (~26%) above the true
    /// order statistic.
    fn quantile_ns(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_edge_ns(i));
            }
        }
        Some(bucket_edge_ns(BUCKETS - 1))
    }
}

/// One second of window data: the elapsed-second it was written for,
/// and that second's latencies.
#[derive(Clone)]
struct Slot {
    sec: u64,
    hist: LogHist,
}

/// All data for one `endpoint × model` pair.
struct Series {
    statuses: BTreeMap<u16, u64>,
    lifetime: LogHist,
    slots: Vec<Slot>,
}

impl Series {
    fn new() -> Self {
        Series {
            statuses: BTreeMap::new(),
            lifetime: LogHist::new(),
            slots: (0..WINDOW_SECS).map(|_| Slot { sec: 0, hist: LogHist::new() }).collect(),
        }
    }

    fn record(&mut self, status: u16, ns: u64, now_sec: u64) {
        *self.statuses.entry(status).or_insert(0) += 1;
        self.lifetime.record(ns);
        let slot = &mut self.slots[(now_sec % WINDOW_SECS) as usize];
        if slot.sec != now_sec {
            slot.hist.clear();
            slot.sec = now_sec;
        }
        slot.hist.record(ns);
    }

    /// Aggregate of the slots written within the last [`WINDOW_SECS`]
    /// seconds ending at `now_sec`.
    fn window(&self, now_sec: u64) -> LogHist {
        let mut agg = LogHist::new();
        for slot in &self.slots {
            if slot.hist.count > 0 && now_sec.saturating_sub(slot.sec) < WINDOW_SECS {
                agg.merge(&slot.hist);
            }
        }
        agg
    }
}

/// Lifetime micro-batch scheduler counters, as exposed to tests and
/// the `/metrics` exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSnapshot {
    /// Total flushed `predict_batch` calls through the scheduler
    /// (inline, drain, hold, size, and bypass flushes alike).
    pub flushes: u64,
    /// Total rows scored across all flushes.
    pub batched_rows: u64,
    /// Flushes that coalesced ≥ 2 requests into one call.
    pub coalesced_batches: u64,
    /// Requests that rode a coalesced flush.
    pub coalesced_requests: u64,
    /// Largest single flush, in rows.
    pub max_batch_rows: u64,
    /// Flush counts keyed by reason (`inline`, `drain`, `hold`,
    /// `size`, `bypass`).
    pub flush_reasons: BTreeMap<String, u64>,
}

/// A point-in-time latency summary for one `endpoint × model` series,
/// as exposed to tests and harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Requests in the summarized range.
    pub count: u64,
    /// Estimated median latency, nanoseconds (0 when empty).
    pub p50_ns: f64,
    /// Estimated 99th-percentile latency, nanoseconds (0 when empty).
    pub p99_ns: f64,
}

/// Request-scoped metrics registry for one server instance: request-id
/// allocation plus per-`endpoint × model` status counts and latency
/// series (lifetime + rolling window). See the [module docs](self).
pub struct ServeMetrics {
    start: Instant,
    next_id: AtomicU64,
    /// `endpoint -> model -> series`, nested so the per-request
    /// `observe` hit path can look both levels up by `&str` without
    /// building an owned key.
    series: DbgMutex<BTreeMap<String, BTreeMap<String, Series>>>,
    batch: DbgMutex<BatchSnapshot>,
    tier_rejects: DbgMutex<BTreeMap<(String, String), u64>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// An empty registry; the window clock starts now.
    pub fn new() -> Self {
        ServeMetrics {
            start: Instant::now(),
            next_id: AtomicU64::new(1),
            series: DbgMutex::new("serve.metrics.series", BTreeMap::new()),
            batch: DbgMutex::new("serve.metrics.batch", BatchSnapshot::default()),
            tier_rejects: DbgMutex::new("serve.metrics.tiers", BTreeMap::new()),
        }
    }

    /// Allocates the next request id (1, 2, 3, ...).
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Seconds elapsed since construction (the window clock).
    fn now_sec(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Records one finished request. Allocation-free once the
    /// `endpoint × model` series exists.
    pub fn observe(&self, endpoint: &str, model: &str, status: u16, latency_ns: u64) {
        let now_sec = self.now_sec();
        let mut series = self.series.lock().expect("metrics registry poisoned");
        let hit = series
            .get_mut(endpoint)
            .and_then(|models| models.get_mut(model))
            .map(|s| s.record(status, latency_ns, now_sec));
        if hit.is_none() {
            series
                .entry(endpoint.to_string())
                .or_default()
                .entry(model.to_string())
                .or_insert_with(Series::new)
                .record(status, latency_ns, now_sec);
        }
    }

    /// Lifetime latency summary for one series, `None` when the pair
    /// never recorded.
    pub fn lifetime_snapshot(&self, endpoint: &str, model: &str) -> Option<LatencySnapshot> {
        let series = self.series.lock().expect("metrics registry poisoned");
        let s = series.get(endpoint).and_then(|models| models.get(model))?;
        Some(snapshot_of(&s.lifetime))
    }

    /// Records one flushed `predict_batch` call from the micro-batch
    /// scheduler: its flush `reason`, how many coalesced `requests` it
    /// carried, and the total `rows` scored.
    pub fn batch_flush(&self, reason: &str, requests: usize, rows: usize) {
        let mut b = self.batch.lock().expect("batch stats poisoned");
        b.flushes += 1;
        b.batched_rows += rows as u64;
        if requests >= 2 {
            b.coalesced_batches += 1;
            b.coalesced_requests += requests as u64;
        }
        b.max_batch_rows = b.max_batch_rows.max(rows as u64);
        // The reason vocabulary is tiny and closed; only the first
        // flush per reason pays the owned-key allocation.
        match b.flush_reasons.get_mut(reason) {
            Some(n) => *n += 1,
            None => {
                b.flush_reasons.insert(reason.to_string(), 1);
            }
        }
    }

    /// Lifetime micro-batch counters.
    pub fn batch_snapshot(&self) -> BatchSnapshot {
        self.batch.lock().expect("batch stats poisoned").clone()
    }

    /// Records one request rejected by a per-model admission tier.
    pub fn tier_reject(&self, model: &str, tier: &str) {
        let mut rejects = self.tier_rejects.lock().expect("tier stats poisoned");
        *rejects.entry((model.to_string(), tier.to_string())).or_insert(0) += 1;
    }

    /// Lifetime tier-rejection counts keyed by `(model, tier)`.
    pub fn tier_reject_snapshot(&self) -> BTreeMap<(String, String), u64> {
        self.tier_rejects.lock().expect("tier stats poisoned").clone()
    }

    /// Rolling-window latency summary for one series, `None` when the
    /// pair never recorded (an empty window returns `count: 0`).
    pub fn window_snapshot(&self, endpoint: &str, model: &str) -> Option<LatencySnapshot> {
        let now_sec = self.now_sec();
        let series = self.series.lock().expect("metrics registry poisoned");
        let s = series.get(endpoint).and_then(|models| models.get(model))?;
        Some(snapshot_of(&s.window(now_sec)))
    }

    /// Renders every series as OpenMetrics families, without the
    /// `# EOF` terminator (the caller composes and closes the
    /// exposition):
    ///
    /// * `edm_serve_requests_total{endpoint,model,status}` — counter;
    /// * `edm_serve_request_latency_ns{endpoint,model}` — lifetime
    ///   histogram with cumulative decilog `le` buckets;
    /// * `edm_serve_latency_quantile_ms{endpoint,model,window,quantile}`
    ///   — gauge, `window` ∈ {`lifetime`, `60s`}, `quantile` ∈ {`0.5`,
    ///   `0.99`};
    /// * `edm_serve_window_requests{endpoint,model}` — gauge, requests
    ///   inside the rolling window;
    /// * `edm_serve_batches_total{reason}` — counter, micro-batch
    ///   flushes by flush reason;
    /// * `edm_serve_batch_rows_total` / `edm_serve_coalesced_batches_total`
    ///   / `edm_serve_coalesced_requests_total` — counters, scheduler
    ///   volume; `edm_serve_batch_rows_max` — gauge, largest flush;
    /// * `edm_serve_tier_rejected_total{model,tier}` — counter,
    ///   requests refused by per-model admission tiers.
    ///
    /// Empty when nothing was ever recorded. Deterministic for a given
    /// state (series in key order).
    pub fn render_openmetrics(&self) -> String {
        fn esc(v: &str) -> String {
            v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        /// Flattens the nested `endpoint -> model` map back to
        /// `(endpoint, model, series)` rows in key order.
        fn flat(
            series: &BTreeMap<String, BTreeMap<String, Series>>,
        ) -> impl Iterator<Item = (&str, &str, &Series)> {
            series.iter().flat_map(|(endpoint, models)| {
                models.iter().map(move |(model, s)| (endpoint.as_str(), model.as_str(), s))
            })
        }
        let now_sec = self.now_sec();
        let series = self.series.lock().expect("metrics registry poisoned");
        let batch = self.batch.lock().expect("batch stats poisoned").clone();
        let tier_rejects = self.tier_rejects.lock().expect("tier stats poisoned").clone();
        if series.is_empty() && batch.flushes == 0 && tier_rejects.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("# TYPE edm_serve_requests counter\n");
        for (endpoint, model, s) in flat(&series) {
            for (&status, &n) in &s.statuses {
                out.push_str(&format!(
                    "edm_serve_requests_total{{endpoint=\"{}\",model=\"{}\",status=\"{status}\"}} {n}\n",
                    esc(endpoint),
                    esc(model)
                ));
            }
        }
        out.push_str("# TYPE edm_serve_request_latency_ns histogram\n");
        for (endpoint, model, s) in flat(&series) {
            let labels = format!("endpoint=\"{}\",model=\"{}\"", esc(endpoint), esc(model));
            let mut cumulative = 0u64;
            for (i, &c) in s.lifetime.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "edm_serve_request_latency_ns_bucket{{{labels},le=\"{:.1}\"}} {cumulative}\n",
                    bucket_edge_ns(i)
                ));
            }
            out.push_str(&format!(
                "edm_serve_request_latency_ns_bucket{{{labels},le=\"+Inf\"}} {}\n\
                 edm_serve_request_latency_ns_sum{{{labels}}} {}\n\
                 edm_serve_request_latency_ns_count{{{labels}}} {}\n",
                s.lifetime.count, s.lifetime.sum_ns, s.lifetime.count
            ));
        }
        out.push_str("# TYPE edm_serve_latency_quantile_ms gauge\n");
        for (endpoint, model, s) in flat(&series) {
            let labels = format!("endpoint=\"{}\",model=\"{}\"", esc(endpoint), esc(model));
            let window = s.window(now_sec);
            for (window_label, hist) in [("lifetime", &s.lifetime), ("60s", &window)] {
                for (q_label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
                    let Some(ns) = hist.quantile_ns(q) else { continue };
                    out.push_str(&format!(
                        "edm_serve_latency_quantile_ms{{{labels},window=\"{window_label}\",\
                         quantile=\"{q_label}\"}} {:.6}\n",
                        ns / 1e6
                    ));
                }
            }
        }
        out.push_str("# TYPE edm_serve_window_requests gauge\n");
        for (endpoint, model, s) in flat(&series) {
            out.push_str(&format!(
                "edm_serve_window_requests{{endpoint=\"{}\",model=\"{}\"}} {}\n",
                esc(endpoint),
                esc(model),
                s.window(now_sec).count
            ));
        }
        if batch.flushes > 0 {
            out.push_str("# TYPE edm_serve_batches counter\n");
            for (reason, n) in &batch.flush_reasons {
                out.push_str(&format!(
                    "edm_serve_batches_total{{reason=\"{}\"}} {n}\n",
                    esc(reason)
                ));
            }
            out.push_str(&format!(
                "# TYPE edm_serve_batch_rows counter\n\
                 edm_serve_batch_rows_total {}\n\
                 # TYPE edm_serve_coalesced_batches counter\n\
                 edm_serve_coalesced_batches_total {}\n\
                 # TYPE edm_serve_coalesced_requests counter\n\
                 edm_serve_coalesced_requests_total {}\n\
                 # TYPE edm_serve_batch_rows_max gauge\n\
                 edm_serve_batch_rows_max {}\n",
                batch.batched_rows,
                batch.coalesced_batches,
                batch.coalesced_requests,
                batch.max_batch_rows
            ));
        }
        if !tier_rejects.is_empty() {
            out.push_str("# TYPE edm_serve_tier_rejected counter\n");
            for ((model, tier), n) in &tier_rejects {
                out.push_str(&format!(
                    "edm_serve_tier_rejected_total{{model=\"{}\",tier=\"{}\"}} {n}\n",
                    esc(model),
                    esc(tier)
                ));
            }
        }
        out
    }
}

fn snapshot_of(hist: &LogHist) -> LatencySnapshot {
    LatencySnapshot {
        count: hist.count,
        p50_ns: hist.quantile_ns(0.5).unwrap_or(0.0),
        p99_ns: hist.quantile_ns(0.99).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decilog_buckets_bracket_their_samples() {
        // 1000 ns: log10 = 3.0 exactly -> bucket 30, edge 10^3.1.
        assert_eq!(bucket_index(1000), 30);
        assert!(bucket_edge_ns(30) > 1000.0 && bucket_edge_ns(30) < 1300.0);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_truth() {
        let mut h = LogHist::new();
        for ns in [100u64, 200, 300, 400, 1_000_000] {
            h.record(ns);
        }
        let p50 = h.quantile_ns(0.5).expect("non-empty");
        // True median 300; the estimate is its bucket's upper edge.
        assert!((300.0..=300.0 * 1.26).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99).expect("non-empty");
        assert!((1e6..=1e6 * 1.26).contains(&p99), "p99 = {p99}");
        assert_eq!(LogHist::new().quantile_ns(0.5), None);
    }

    #[test]
    fn observe_feeds_lifetime_and_window() {
        let m = ServeMetrics::new();
        assert_eq!(m.next_request_id(), 1);
        assert_eq!(m.next_request_id(), 2);
        m.observe("predict", "svc", 200, 1_000_000);
        m.observe("predict", "svc", 200, 2_000_000);
        m.observe("predict", "svc", 400, 500_000);
        let life = m.lifetime_snapshot("predict", "svc").expect("series exists");
        assert_eq!(life.count, 3);
        assert!(life.p50_ns >= 1e6 && life.p50_ns <= 1.26e6, "p50 = {}", life.p50_ns);
        // The window was written this second, so it holds everything.
        let win = m.window_snapshot("predict", "svc").expect("series exists");
        assert_eq!(win.count, 3);
        assert!(m.lifetime_snapshot("predict", "other").is_none());
    }

    #[test]
    fn window_slots_expire_older_seconds() {
        let mut s = Series::new();
        s.record(200, 1000, 10);
        s.record(200, 1000, 30);
        // At second 30 both are inside the 60 s window...
        assert_eq!(s.window(30).count, 2);
        // ...at second 80 only the second-30 slot remains...
        assert_eq!(s.window(80).count, 1);
        // ...and at second 100 the window is empty, lifetime is not.
        assert_eq!(s.window(100).count, 0);
        assert_eq!(s.lifetime.count, 2);
        // A slot is reused (cleared) when its second comes around again.
        s.record(200, 1000, 10 + WINDOW_SECS);
        assert_eq!(s.window(10 + WINDOW_SECS).count, 2, "slot 10 cleared and rewritten");
    }

    #[test]
    fn openmetrics_rendering_has_all_families() {
        let m = ServeMetrics::new();
        assert_eq!(m.render_openmetrics(), "", "no families before any request");
        m.observe("predict", "svc", 200, 1_500_000);
        m.observe("predict", "svc", 503, 2_000);
        m.observe("healthz", "-", 200, 900);
        let text = m.render_openmetrics();
        assert!(!text.contains("# EOF"), "body must not terminate the exposition");
        assert!(text.contains(
            "edm_serve_requests_total{endpoint=\"predict\",model=\"svc\",status=\"200\"} 1"
        ));
        assert!(text.contains(
            "edm_serve_requests_total{endpoint=\"predict\",model=\"svc\",status=\"503\"} 1"
        ));
        assert!(text
            .contains("edm_serve_request_latency_ns_count{endpoint=\"predict\",model=\"svc\"} 2"));
        assert!(text.contains("window=\"lifetime\",quantile=\"0.5\""));
        assert!(text.contains("window=\"60s\",quantile=\"0.99\""));
        assert!(text.contains("edm_serve_window_requests{endpoint=\"healthz\",model=\"-\"} 1"));
        // Cumulative le buckets end at +Inf with the full count.
        assert!(text.contains(
            "edm_serve_request_latency_ns_bucket{endpoint=\"healthz\",model=\"-\",le=\"+Inf\"} 1"
        ));
        // No batch flushed and no tier rejected -> those families stay out.
        assert!(!text.contains("edm_serve_batches_total"));
        assert!(!text.contains("edm_serve_tier_rejected_total"));
    }

    #[test]
    fn batch_and_tier_families_render_once_recorded() {
        let m = ServeMetrics::new();
        m.batch_flush("inline", 1, 16);
        m.batch_flush("drain", 3, 48);
        m.batch_flush("drain", 2, 8);
        m.tier_reject("svc", "bulk");
        m.tier_reject("svc", "bulk");
        let snap = m.batch_snapshot();
        assert_eq!(snap.flushes, 3);
        assert_eq!(snap.batched_rows, 72);
        assert_eq!(snap.coalesced_batches, 2);
        assert_eq!(snap.coalesced_requests, 5);
        assert_eq!(snap.max_batch_rows, 48);
        assert_eq!(snap.flush_reasons.get("drain"), Some(&2));
        assert_eq!(m.tier_reject_snapshot().get(&("svc".into(), "bulk".into())), Some(&2));
        let text = m.render_openmetrics();
        assert!(text.contains("edm_serve_batches_total{reason=\"inline\"} 1"));
        assert!(text.contains("edm_serve_batches_total{reason=\"drain\"} 2"));
        assert!(text.contains("edm_serve_batch_rows_total 72"));
        assert!(text.contains("edm_serve_coalesced_batches_total 2"));
        assert!(text.contains("edm_serve_coalesced_requests_total 5"));
        assert!(text.contains("edm_serve_batch_rows_max 48"));
        assert!(text.contains("edm_serve_tier_rejected_total{model=\"svc\",tier=\"bulk\"} 2"));
    }
}
