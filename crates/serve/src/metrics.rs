//! Request-scoped serving metrics, independent of the `edm-trace`
//! level so `/metrics` can always answer "which model is slow right
//! now".
//!
//! [`ServeMetrics`] keeps one series per `endpoint × model` pair:
//! per-status request counts, a **lifetime** latency histogram, and a
//! **rolling window** of the last [`WINDOW_SECS`] seconds (per-second
//! slots, so the window advances without rescanning history).
//! Latencies go into decilog histograms — bucket `i` covers
//! `[10^(i/10), 10^((i+1)/10))` nanoseconds, i.e. ~26% wide buckets —
//! which bounds quantile estimation error to one bucket edge while
//! keeping each series a fixed 128-slot array.
//!
//! Rendering ([`ServeMetrics::render_openmetrics`]) emits OpenMetrics
//! families **without** the `# EOF` terminator; the server composes
//! them after the `edm-trace` registry body and closes the exposition
//! itself. Timekeeping uses the monotonic [`Instant`] clock anchored at
//! construction (no wall-clock entropy).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Width of the rolling latency window, in seconds.
pub const WINDOW_SECS: u64 = 60;

/// Decilog bucket count: bucket 127 starts at `10^12.7` ns ≈ 83 min,
/// far beyond any request this server answers.
const BUCKETS: usize = 128;

/// Bucket index for a latency: `floor(10·log10(ns))`, clamped.
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        return 0;
    }
    ((ns as f64).log10() * 10.0).floor().clamp(0.0, (BUCKETS - 1) as f64) as usize
}

/// Upper edge of bucket `i`, in nanoseconds.
fn bucket_edge_ns(i: usize) -> f64 {
    10f64.powf((i + 1) as f64 / 10.0)
}

/// Fixed-size decilog latency histogram.
#[derive(Clone)]
struct LogHist {
    count: u64,
    sum_ns: u64,
    buckets: [u64; BUCKETS],
}

impl LogHist {
    fn new() -> Self {
        LogHist { count: 0, sum_ns: 0, buckets: [0; BUCKETS] }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.buckets[bucket_index(ns)] += 1;
    }

    fn clear(&mut self) {
        self.count = 0;
        self.sum_ns = 0;
        self.buckets = [0; BUCKETS];
    }

    fn merge(&mut self, other: &LogHist) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Quantile estimate (bucket upper edge), `None` when empty. The
    /// estimate is at most one decilog bucket (~26%) above the true
    /// order statistic.
    fn quantile_ns(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_edge_ns(i));
            }
        }
        Some(bucket_edge_ns(BUCKETS - 1))
    }
}

/// One second of window data: the elapsed-second it was written for,
/// and that second's latencies.
#[derive(Clone)]
struct Slot {
    sec: u64,
    hist: LogHist,
}

/// All data for one `endpoint × model` pair.
struct Series {
    statuses: BTreeMap<u16, u64>,
    lifetime: LogHist,
    slots: Vec<Slot>,
}

impl Series {
    fn new() -> Self {
        Series {
            statuses: BTreeMap::new(),
            lifetime: LogHist::new(),
            slots: (0..WINDOW_SECS).map(|_| Slot { sec: 0, hist: LogHist::new() }).collect(),
        }
    }

    fn record(&mut self, status: u16, ns: u64, now_sec: u64) {
        *self.statuses.entry(status).or_insert(0) += 1;
        self.lifetime.record(ns);
        let slot = &mut self.slots[(now_sec % WINDOW_SECS) as usize];
        if slot.sec != now_sec {
            slot.hist.clear();
            slot.sec = now_sec;
        }
        slot.hist.record(ns);
    }

    /// Aggregate of the slots written within the last [`WINDOW_SECS`]
    /// seconds ending at `now_sec`.
    fn window(&self, now_sec: u64) -> LogHist {
        let mut agg = LogHist::new();
        for slot in &self.slots {
            if slot.hist.count > 0 && now_sec.saturating_sub(slot.sec) < WINDOW_SECS {
                agg.merge(&slot.hist);
            }
        }
        agg
    }
}

/// A point-in-time latency summary for one `endpoint × model` series,
/// as exposed to tests and harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Requests in the summarized range.
    pub count: u64,
    /// Estimated median latency, nanoseconds (0 when empty).
    pub p50_ns: f64,
    /// Estimated 99th-percentile latency, nanoseconds (0 when empty).
    pub p99_ns: f64,
}

/// Request-scoped metrics registry for one server instance: request-id
/// allocation plus per-`endpoint × model` status counts and latency
/// series (lifetime + rolling window). See the [module docs](self).
pub struct ServeMetrics {
    start: Instant,
    next_id: AtomicU64,
    series: Mutex<BTreeMap<(String, String), Series>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// An empty registry; the window clock starts now.
    pub fn new() -> Self {
        ServeMetrics {
            start: Instant::now(),
            next_id: AtomicU64::new(1),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Allocates the next request id (1, 2, 3, ...).
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Seconds elapsed since construction (the window clock).
    fn now_sec(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Records one finished request.
    pub fn observe(&self, endpoint: &str, model: &str, status: u16, latency_ns: u64) {
        let now_sec = self.now_sec();
        let mut series = self.series.lock().expect("metrics registry poisoned");
        series
            .entry((endpoint.to_string(), model.to_string()))
            .or_insert_with(Series::new)
            .record(status, latency_ns, now_sec);
    }

    /// Lifetime latency summary for one series, `None` when the pair
    /// never recorded.
    pub fn lifetime_snapshot(&self, endpoint: &str, model: &str) -> Option<LatencySnapshot> {
        let series = self.series.lock().expect("metrics registry poisoned");
        let s = series.get(&(endpoint.to_string(), model.to_string()))?;
        Some(snapshot_of(&s.lifetime))
    }

    /// Rolling-window latency summary for one series, `None` when the
    /// pair never recorded (an empty window returns `count: 0`).
    pub fn window_snapshot(&self, endpoint: &str, model: &str) -> Option<LatencySnapshot> {
        let now_sec = self.now_sec();
        let series = self.series.lock().expect("metrics registry poisoned");
        let s = series.get(&(endpoint.to_string(), model.to_string()))?;
        Some(snapshot_of(&s.window(now_sec)))
    }

    /// Renders every series as OpenMetrics families, without the
    /// `# EOF` terminator (the caller composes and closes the
    /// exposition):
    ///
    /// * `edm_serve_requests_total{endpoint,model,status}` — counter;
    /// * `edm_serve_request_latency_ns{endpoint,model}` — lifetime
    ///   histogram with cumulative decilog `le` buckets;
    /// * `edm_serve_latency_quantile_ms{endpoint,model,window,quantile}`
    ///   — gauge, `window` ∈ {`lifetime`, `60s`}, `quantile` ∈ {`0.5`,
    ///   `0.99`};
    /// * `edm_serve_window_requests{endpoint,model}` — gauge, requests
    ///   inside the rolling window.
    ///
    /// Empty when no request was ever recorded. Deterministic for a
    /// given state (series in key order).
    pub fn render_openmetrics(&self) -> String {
        fn esc(v: &str) -> String {
            v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        let now_sec = self.now_sec();
        let series = self.series.lock().expect("metrics registry poisoned");
        if series.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("# TYPE edm_serve_requests counter\n");
        for ((endpoint, model), s) in series.iter() {
            for (&status, &n) in &s.statuses {
                out.push_str(&format!(
                    "edm_serve_requests_total{{endpoint=\"{}\",model=\"{}\",status=\"{status}\"}} {n}\n",
                    esc(endpoint),
                    esc(model)
                ));
            }
        }
        out.push_str("# TYPE edm_serve_request_latency_ns histogram\n");
        for ((endpoint, model), s) in series.iter() {
            let labels = format!("endpoint=\"{}\",model=\"{}\"", esc(endpoint), esc(model));
            let mut cumulative = 0u64;
            for (i, &c) in s.lifetime.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "edm_serve_request_latency_ns_bucket{{{labels},le=\"{:.1}\"}} {cumulative}\n",
                    bucket_edge_ns(i)
                ));
            }
            out.push_str(&format!(
                "edm_serve_request_latency_ns_bucket{{{labels},le=\"+Inf\"}} {}\n\
                 edm_serve_request_latency_ns_sum{{{labels}}} {}\n\
                 edm_serve_request_latency_ns_count{{{labels}}} {}\n",
                s.lifetime.count, s.lifetime.sum_ns, s.lifetime.count
            ));
        }
        out.push_str("# TYPE edm_serve_latency_quantile_ms gauge\n");
        for ((endpoint, model), s) in series.iter() {
            let labels = format!("endpoint=\"{}\",model=\"{}\"", esc(endpoint), esc(model));
            let window = s.window(now_sec);
            for (window_label, hist) in [("lifetime", &s.lifetime), ("60s", &window)] {
                for (q_label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
                    let Some(ns) = hist.quantile_ns(q) else { continue };
                    out.push_str(&format!(
                        "edm_serve_latency_quantile_ms{{{labels},window=\"{window_label}\",\
                         quantile=\"{q_label}\"}} {:.6}\n",
                        ns / 1e6
                    ));
                }
            }
        }
        out.push_str("# TYPE edm_serve_window_requests gauge\n");
        for ((endpoint, model), s) in series.iter() {
            out.push_str(&format!(
                "edm_serve_window_requests{{endpoint=\"{}\",model=\"{}\"}} {}\n",
                esc(endpoint),
                esc(model),
                s.window(now_sec).count
            ));
        }
        out
    }
}

fn snapshot_of(hist: &LogHist) -> LatencySnapshot {
    LatencySnapshot {
        count: hist.count,
        p50_ns: hist.quantile_ns(0.5).unwrap_or(0.0),
        p99_ns: hist.quantile_ns(0.99).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decilog_buckets_bracket_their_samples() {
        // 1000 ns: log10 = 3.0 exactly -> bucket 30, edge 10^3.1.
        assert_eq!(bucket_index(1000), 30);
        assert!(bucket_edge_ns(30) > 1000.0 && bucket_edge_ns(30) < 1300.0);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_truth() {
        let mut h = LogHist::new();
        for ns in [100u64, 200, 300, 400, 1_000_000] {
            h.record(ns);
        }
        let p50 = h.quantile_ns(0.5).expect("non-empty");
        // True median 300; the estimate is its bucket's upper edge.
        assert!((300.0..=300.0 * 1.26).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99).expect("non-empty");
        assert!((1e6..=1e6 * 1.26).contains(&p99), "p99 = {p99}");
        assert_eq!(LogHist::new().quantile_ns(0.5), None);
    }

    #[test]
    fn observe_feeds_lifetime_and_window() {
        let m = ServeMetrics::new();
        assert_eq!(m.next_request_id(), 1);
        assert_eq!(m.next_request_id(), 2);
        m.observe("predict", "svc", 200, 1_000_000);
        m.observe("predict", "svc", 200, 2_000_000);
        m.observe("predict", "svc", 400, 500_000);
        let life = m.lifetime_snapshot("predict", "svc").expect("series exists");
        assert_eq!(life.count, 3);
        assert!(life.p50_ns >= 1e6 && life.p50_ns <= 1.26e6, "p50 = {}", life.p50_ns);
        // The window was written this second, so it holds everything.
        let win = m.window_snapshot("predict", "svc").expect("series exists");
        assert_eq!(win.count, 3);
        assert!(m.lifetime_snapshot("predict", "other").is_none());
    }

    #[test]
    fn window_slots_expire_older_seconds() {
        let mut s = Series::new();
        s.record(200, 1000, 10);
        s.record(200, 1000, 30);
        // At second 30 both are inside the 60 s window...
        assert_eq!(s.window(30).count, 2);
        // ...at second 80 only the second-30 slot remains...
        assert_eq!(s.window(80).count, 1);
        // ...and at second 100 the window is empty, lifetime is not.
        assert_eq!(s.window(100).count, 0);
        assert_eq!(s.lifetime.count, 2);
        // A slot is reused (cleared) when its second comes around again.
        s.record(200, 1000, 10 + WINDOW_SECS);
        assert_eq!(s.window(10 + WINDOW_SECS).count, 2, "slot 10 cleared and rewritten");
    }

    #[test]
    fn openmetrics_rendering_has_all_families() {
        let m = ServeMetrics::new();
        assert_eq!(m.render_openmetrics(), "", "no families before any request");
        m.observe("predict", "svc", 200, 1_500_000);
        m.observe("predict", "svc", 503, 2_000);
        m.observe("healthz", "-", 200, 900);
        let text = m.render_openmetrics();
        assert!(!text.contains("# EOF"), "body must not terminate the exposition");
        assert!(text.contains(
            "edm_serve_requests_total{endpoint=\"predict\",model=\"svc\",status=\"200\"} 1"
        ));
        assert!(text.contains(
            "edm_serve_requests_total{endpoint=\"predict\",model=\"svc\",status=\"503\"} 1"
        ));
        assert!(text
            .contains("edm_serve_request_latency_ns_count{endpoint=\"predict\",model=\"svc\"} 2"));
        assert!(text.contains("window=\"lifetime\",quantile=\"0.5\""));
        assert!(text.contains("window=\"60s\",quantile=\"0.99\""));
        assert!(text.contains("edm_serve_window_requests{endpoint=\"healthz\",model=\"-\"} 1"));
        // Cumulative le buckets end at +Inf with the full count.
        assert!(text.contains(
            "edm_serve_request_latency_ns_bucket{endpoint=\"healthz\",model=\"-\",le=\"+Inf\"} 1"
        ));
    }
}
