//! Minimal HTTP/1.1 request reader and response writer.
//!
//! Implements just enough of RFC 9112 for a scoring service:
//! persistent (keep-alive) connections with `content-length` body
//! framing on both sides, `connection: close` negotiation per RFC 9112
//! §9.6 (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close), and hard
//! caps on line length, header count, and body size so a misbehaving
//! client cannot exhaust memory. Each response declares an exact
//! `content-length`, so a client can issue the next request on the
//! same connection immediately — the request loop lives in
//! `crate::server`.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most header lines accepted per request.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, target, raw body bytes, and the
/// connection persistence the client negotiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (`/v1/models/svc:predict`).
    pub target: String,
    /// Raw body (empty when no `content-length` was sent).
    pub body: Vec<u8>,
    /// True when the connection must close after this exchange:
    /// the client sent `connection: close`, or spoke HTTP/1.0 without
    /// an explicit `connection: keep-alive`.
    pub close: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request — answer 400.
    Malformed(String),
    /// Declared body exceeds the server's cap — answer 413.
    TooLarge {
        /// The configured body cap in bytes.
        limit: usize,
    },
    /// Socket-level failure (including read timeouts) — drop the
    /// connection; there is no one left to answer.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one line (up to CRLF or LF), returning it without the line
/// terminator. Errors if the line exceeds [`MAX_LINE_BYTES`] or the
/// stream ends mid-line.
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        // Scan the BufReader's buffer in bulk rather than pulling one
        // byte per `read` call — header lines almost always sit in a
        // single buffered chunk.
        let (found_newline, used) = {
            let available = match reader.fill_buf() {
                Ok(a) => a,
                Err(e) => return Err(HttpError::Io(e)),
            };
            if available.is_empty() {
                return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&available[..i]);
                    (true, i + 1)
                }
                None => {
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if found_newline {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
        }
        if buf.len() > MAX_LINE_BYTES {
            return Err(HttpError::Malformed("header line too long".into()));
        }
    }
}

/// Reads and parses one HTTP/1.x request from `reader`.
///
/// # Errors
///
/// [`HttpError::Malformed`] for syntax violations (caller answers 400),
/// [`HttpError::TooLarge`] when `content-length` exceeds `max_body`
/// (caller answers 413), and [`HttpError::Io`] for socket failures.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(HttpError::Malformed("bad request line".into())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported protocol version".into()));
    }
    // HTTP/1.0 closes by default; 1.1 and later keep the connection.
    let mut close = version == "HTTP/1.0";

    let mut content_length: usize = 0;
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without a colon".into()));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable content-length".into()))?;
        } else if name.eq_ignore_ascii_case("connection") {
            // `connection` is a comma-separated option list; only the
            // persistence tokens matter to this server.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
        // Every other header (host, accept, user-agent, ...) is noise
        // for a scoring endpoint.
    }

    if content_length > max_body {
        return Err(HttpError::TooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method: method.to_string(), target: target.to_string(), body, close })
}

/// A response ready to be written to the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Value for the `content-type` header.
    pub content_type: &'static str,
    /// When set, emitted as a `retry-after` header (seconds) — used by
    /// the 503 backpressure path.
    pub retry_after: Option<u32>,
    /// When set, emitted as an `x-request-id` header so a client can
    /// correlate its response with the server's access log and
    /// telemetry.
    pub request_id: Option<u64>,
    /// When set, emitted as an `x-model-generation` header: the
    /// registry generation the request was scored against, so clients
    /// can observe hot-reload swaps.
    pub model_generation: Option<u64>,
    /// When true, the response advertises `connection: close` and the
    /// server closes the connection after writing it; otherwise the
    /// response advertises `connection: keep-alive` and the connection
    /// stays open for the next request.
    pub close: bool,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status (keep-alive by default;
    /// the server's connection loop decides when to close).
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            retry_after: None,
            request_id: None,
            model_generation: None,
            close: false,
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            retry_after: None,
            request_id: None,
            model_generation: None,
            close: false,
            body: body.as_bytes().to_vec(),
        }
    }

    /// Serializes the status line, headers, and body into one buffer.
    /// Exact `content-length` framing is what lets a keep-alive client
    /// find the response boundary without waiting for EOF.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 160);
        use std::fmt::Write as _;
        let mut head = String::with_capacity(160);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\nconnection: {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            if self.close { "close" } else { "keep-alive" },
            self.content_type,
            self.body.len(),
        );
        if let Some(secs) = self.retry_after {
            let _ = write!(head, "retry-after: {secs}\r\n");
        }
        if let Some(id) = self.request_id {
            let _ = write!(head, "x-request-id: {id}\r\n");
        }
        if let Some(generation) = self.model_generation {
            let _ = write!(head, "x-model-generation: {generation}\r\n");
        }
        head.push_str("\r\n");
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the serialized response to `w` as a single write (one
    /// syscall on an unbuffered socket — the keep-alive hot path).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (including write timeouts).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("valid");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_negotiation_follows_rfc9112() {
        // HTTP/1.1: keep-alive unless told otherwise.
        assert!(parse("GET /x HTTP/1.1\r\nconnection: close\r\n\r\n").expect("valid").close);
        assert!(!parse("GET /x HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").expect("valid").close);
        // Comma-separated option lists.
        assert!(parse("GET /x HTTP/1.1\r\nconnection: foo, Close\r\n\r\n").expect("valid").close);
        // HTTP/1.0: close unless the client opts in to keep-alive.
        assert!(parse("GET /x HTTP/1.0\r\nhost: y\r\n\r\n").expect("valid").close);
        assert!(!parse("GET /x HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").expect("valid").close);
    }

    #[test]
    fn keep_alive_requests_parse_back_to_back_from_one_stream() {
        let raw = "POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi\
                   GET /b HTTP/1.1\r\n\r\n\
                   GET /c HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let a = read_request(&mut reader, 1024).expect("first");
        assert_eq!((a.target.as_str(), a.body.as_slice(), a.close), ("/a", b"hi".as_ref(), false));
        let b = read_request(&mut reader, 1024).expect("second");
        assert_eq!((b.target.as_str(), b.close), ("/b", false));
        let c = read_request(&mut reader, 1024).expect("third");
        assert_eq!((c.target.as_str(), c.close), ("/c", true));
        assert!(matches!(read_request(&mut reader, 1024), Err(HttpError::Io(_))), "stream ended");
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let req = parse("POST /v1/models/svc:predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .expect("valid");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET /metrics HTTP/1.0\nhost: y\n\n").expect("valid");
        assert_eq!(req.target, "/metrics");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET  /x HTTP/1.1\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            " /x HTTP/1.1\r\n\r\n",
        ] {
            assert!(matches!(parse(bad), Err(HttpError::Malformed(_))), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_bad_content_length_and_headers() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn enforces_the_body_cap_without_reading_the_body() {
        let raw = "POST /x HTTP/1.1\r\ncontent-length: 4096\r\n\r\n";
        match parse(raw) {
            Err(HttpError::TooLarge { limit }) => assert_eq!(limit, 1024),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into()).write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nconnection: keep-alive\r\ncontent-type: application/json\r\ncontent-length: 11\r\n\r\n{\"ok\":true}"
        );
        let mut resp = Response::json(200, "{}".into());
        resp.close = true;
        let text = String::from_utf8(resp.to_bytes()).expect("utf8");
        assert!(text.contains("\r\nconnection: close\r\n"), "got {text:?}");
    }

    #[test]
    fn request_id_header_rides_along_when_set() {
        let mut resp = Response::text(200, "ok\n");
        resp.request_id = Some(42);
        let mut out = Vec::new();
        resp.write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\r\nx-request-id: 42\r\n"), "got {text:?}");
    }

    #[test]
    fn model_generation_header_rides_along_when_set() {
        let mut resp = Response::json(200, "{}".into());
        resp.model_generation = Some(3);
        let text = String::from_utf8(resp.to_bytes()).expect("utf8");
        assert!(text.contains("\r\nx-model-generation: 3\r\n"), "got {text:?}");
        let plain = String::from_utf8(Response::json(200, "{}".into()).to_bytes()).expect("utf8");
        assert!(!plain.contains("x-model-generation"), "absent unless set");
    }

    #[test]
    fn retry_after_header_rides_on_503() {
        let mut resp = Response::json(503, "{}".into());
        resp.retry_after = Some(1);
        let mut out = Vec::new();
        resp.write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("\r\nretry-after: 1\r\n"), "got {text:?}");
    }
}
