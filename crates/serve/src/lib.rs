//! # edm-serve — dependency-free model serving for trained edm models
//!
//! A small HTTP/1.1 scoring service built entirely on `std::net`: no
//! async runtime, no web framework, no serde on the wire. Models that
//! implement the facade's object-safe [`edm::Predictor`] trait are
//! registered by name in a [`ModelRegistry`] and served by a fixed
//! worker pool ([`edm_par::pool::WorkerPool`]) behind a bounded queue —
//! when the queue is full the server answers `503` with `retry-after`
//! instead of stalling the client or buffering without limit.
//!
//! Connections are **persistent** (HTTP/1.1 keep-alive): one worker
//! serves a request loop per connection until `Connection: close`, the
//! idle timeout, or the per-connection request cap. Concurrent predict
//! requests for the same model **coalesce** through the
//! [`batch::BatchScheduler`] into single `predict_batch` calls (bitwise
//! identical to unbatched scoring), and per-model
//! [`AdmissionTier`](registry::AdmissionTier) quotas keep one hot model
//! from starving the rest of the registry.
//!
//! Endpoints:
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/models/{name}:predict` | POST | Score a JSON batch (`{"inputs": [[...], ...]}`) |
//! | `/v1/models/{name}:train` | POST | Fit a fresh model (`{"family", "inputs", "targets"}`), persist it to the model directory, publish it as the next generation |
//! | `/v1/models` | GET | List registered models with `{family, n_features, generation, loaded_from, checksum}` |
//! | `/v1/admin/reload` | POST | Rescan the model directory and swap in the next registry generation |
//! | `/v1/trace` | GET | Live [`edm_trace::TraceReport`] JSON (debug) |
//! | `/healthz` | GET | Liveness probe |
//! | `/metrics` | GET | OpenMetrics exposition: trace registry + per-`endpoint × model` request series (lifetime + rolling-window latency) + micro-batch and admission-tier families |
//!
//! Every request is answered with an `x-request-id` header that
//! matches the server's access log line (`EDM_SERVE_LOG=1`; slow
//! requests past `EDM_SERVE_SLOW_MS` are always logged).
//!
//! ## Train once, serve many
//!
//! Models persisted with the facade's [`edm::PersistentPredictor`]
//! API (`*.edm` containers, see `edm-model-io`) are served straight
//! from a **model directory** ([`ModelStore`], configured with
//! [`ServerConfig::model_dir`] or `EDM_SERVE_MODEL_DIR`): the
//! directory is scanned at startup and again on every
//! `POST /v1/admin/reload`, and each scan is published atomically as a
//! new registry **generation** ([`SharedRegistry`]). In-flight
//! requests keep scoring against the snapshot they started with —
//! a reload never fails or reroutes admitted work — and every predict
//! response reports the generation it was scored against in an
//! `x-model-generation` header.
//!
//! Scoring fans through the same `predict_batch` paths the library
//! exposes directly, so a prediction served over HTTP is bitwise
//! identical to one computed in-process (pinned by this crate's
//! property tests).
//!
//! The threaded server lives behind the `parallel` feature (mirroring
//! the workspace's "no threads without `parallel`" invariant); the
//! JSON codec, HTTP parser, and registry compile featureless.
//!
//! ```
//! use edm::prelude::*;
//! use edm_serve::ModelRegistry;
//!
//! let x = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.5, 1.0], vec![1.0, 1.0]];
//! let y = vec![0.0, 1.0, 1.0, 2.0];
//! let mut registry = ModelRegistry::new();
//! registry.register("fmax-ridge", Ridge::fit(&x, &y, 0.1)?)?;
//! assert_eq!(registry.names(), vec!["fmax-ridge"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
#[cfg(feature = "parallel")]
pub mod server;
pub mod store;

pub use batch::{BatchConfig, BatchScheduler};
pub use metrics::{BatchSnapshot, LatencySnapshot, ServeMetrics};
pub use registry::{
    AdmissionTier, ModelEntry, ModelInfo, ModelRegistry, RegistryError, RegistrySnapshot,
    ServedModel, SharedRegistry, TierGate, TierPermit,
};
#[cfg(feature = "parallel")]
pub use server::{ServeError, Server, ServerConfig};
pub use store::{ModelStore, ScanReport, StoredModel};
