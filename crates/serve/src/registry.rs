//! The model registry: a name → [`Predictor`] map shared by every
//! worker thread.
//!
//! Backed by a `BTreeMap` so listings are deterministically ordered
//! (the workspace bans `HashMap` iteration in lib code). The registry
//! is built once at startup and then shared immutably behind an `Arc`,
//! so no locking is needed on the request path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use edm::Predictor;

/// A model the registry can serve: any [`Predictor`] that is safe to
/// share across the worker pool.
pub type ServedModel = Arc<dyn Predictor + Send + Sync>;

/// Why a model could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name contains characters outside `[A-Za-z0-9_.-]` or is
    /// empty. Names appear verbatim in URL paths, so the alphabet is
    /// restricted to characters that need no percent-encoding.
    InvalidName(String),
    /// A model with this name is already registered.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => {
                write!(f, "invalid model name {name:?}: use 1+ characters from [A-Za-z0-9_.-]")
            }
            RegistryError::Duplicate(name) => {
                write!(f, "a model named {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Summary of one registered model, as reported by `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The registered (URL-visible) name.
    pub name: String,
    /// The model family, from [`Predictor::name`].
    pub family: &'static str,
    /// Expected feature count per input row.
    pub n_features: usize,
}

/// An ordered collection of named models.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, ServedModel>,
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry").field("models", &self.names()).finish()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `model` under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] for names outside the URL-safe
    /// alphabet, [`RegistryError::Duplicate`] when the name is taken.
    pub fn register<P>(&mut self, name: &str, model: P) -> Result<(), RegistryError>
    where
        P: Predictor + Send + Sync + 'static,
    {
        self.register_arc(name, Arc::new(model))
    }

    /// Registers an already-shared model under `name`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelRegistry::register`].
    pub fn register_arc(&mut self, name: &str, model: ServedModel) -> Result<(), RegistryError> {
        if name.is_empty()
            || !name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
        {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        if self.models.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        self.models.insert(name.to_string(), model);
        Ok(())
    }

    /// The model registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<ServedModel> {
        self.models.get(name).cloned()
    }

    /// Registered names, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// One [`ModelInfo`] per registered model, in name order.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.models
            .iter()
            .map(|(name, model)| ModelInfo {
                name: name.clone(),
                family: model.name(),
                n_features: model.n_features(),
            })
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn tiny_ridge() -> Ridge {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.5, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 1.0, 2.0];
        Ridge::fit(&x, &y, 0.1).expect("tiny ridge fits")
    }

    #[test]
    fn register_and_look_up() {
        let mut reg = ModelRegistry::new();
        reg.register("fmax-ridge", tiny_ridge()).expect("register");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let model = reg.get("fmax-ridge").expect("present");
        assert_eq!(model.name(), "ridge");
        assert_eq!(model.n_features(), 2);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn listing_is_name_ordered() {
        let mut reg = ModelRegistry::new();
        for name in ["zeta", "alpha", "mid.point-1_2"] {
            reg.register(name, tiny_ridge()).expect("register");
        }
        let names: Vec<String> = reg.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["alpha", "mid.point-1_2", "zeta"]);
    }

    #[test]
    fn invalid_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        for bad in ["", "has space", "slash/y", "colon:predict", "q?x", "ünicode"] {
            assert_eq!(
                reg.register(bad, tiny_ridge()),
                Err(RegistryError::InvalidName(bad.to_string())),
                "{bad:?} should be invalid"
            );
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        reg.register("svc", tiny_ridge()).expect("first");
        assert_eq!(
            reg.register("svc", tiny_ridge()),
            Err(RegistryError::Duplicate("svc".to_string()))
        );
    }
}
