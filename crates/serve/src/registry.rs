//! The model registry: a name → [`Predictor`] map shared by every
//! worker thread, plus per-model **admission tiers** and the
//! **generation-swapped** [`SharedRegistry`] behind hot reload.
//!
//! Backed by a `BTreeMap` so listings are deterministically ordered
//! (the workspace bans `HashMap` iteration in lib code). A registry is
//! built immutably and then published as one **generation**: the
//! server holds a [`SharedRegistry`], requests take an
//! [`RegistrySnapshot`] `Arc` at routing time (one brief read lock,
//! no allocation), and `POST /v1/admin/reload` / `:train` build a
//! *fresh* registry offline and [`SharedRegistry::swap`] it in
//! atomically. In-flight requests keep scoring against the snapshot
//! they started with, so a reload can never fail a request that was
//! already admitted.
//!
//! An [`AdmissionTier`] caps how many predict requests for one model
//! may be in flight at once, layered *under* the worker pool's global
//! `try_reserve()` admission: the pool bounds total concurrency, the
//! tier bounds one model's share of it, so a hot model saturating its
//! quota keeps returning 503 (with the tier's `Retry-After`) while
//! other models' requests still find free workers. Quota accounting is
//! a single atomic counter ([`TierGate`]) released by RAII
//! ([`TierPermit`]), so a panicking request can never leak quota.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use edm_par::sync::DbgRwLock;

use edm::Predictor;

/// A model the registry can serve: any [`Predictor`] that is safe to
/// share across the worker pool.
pub type ServedModel = Arc<dyn Predictor + Send + Sync>;

/// Why a model could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name contains characters outside `[A-Za-z0-9_.-]` or is
    /// empty. Names appear verbatim in URL paths, so the alphabet is
    /// restricted to characters that need no percent-encoding.
    InvalidName(String),
    /// A model with this name is already registered.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => {
                write!(f, "invalid model name {name:?}: use 1+ characters from [A-Za-z0-9_.-]")
            }
            RegistryError::Duplicate(name) => {
                write!(f, "a model named {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A per-model in-flight quota: at most `max_in_flight` predict
/// requests for the model run concurrently; excess arrivals are
/// rejected with 503 and this tier's `Retry-After`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionTier {
    /// Tier label, shown in `serve.tier.rejected` probes and the
    /// `edm_serve_tier_rejected_total{tier}` metric.
    pub name: String,
    /// Concurrent in-flight predict quota (≥ 1 enforced at
    /// registration).
    pub max_in_flight: usize,
    /// `Retry-After` seconds advertised on quota rejections.
    pub retry_after_secs: u64,
}

impl AdmissionTier {
    /// A tier with a 1-second `Retry-After`.
    pub fn new(name: &str, max_in_flight: usize) -> Self {
        AdmissionTier { name: name.to_string(), max_in_flight, retry_after_secs: 1 }
    }
}

/// Lock-free in-flight counter enforcing one model's [`AdmissionTier`].
#[derive(Debug)]
pub struct TierGate {
    tier: AdmissionTier,
    in_flight: AtomicUsize,
}

impl TierGate {
    fn new(tier: AdmissionTier) -> Arc<TierGate> {
        Arc::new(TierGate { tier, in_flight: AtomicUsize::new(0) })
    }

    /// The tier this gate enforces.
    pub fn tier(&self) -> &AdmissionTier {
        &self.tier
    }

    /// Requests currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Claims one unit of quota, or `None` when the tier is saturated.
    /// The permit returns the quota on drop (including on panic).
    pub fn try_acquire(self: &Arc<Self>) -> Option<TierPermit> {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.tier.max_in_flight {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(TierPermit { gate: Arc::clone(self) }),
                Err(seen) => current = seen,
            }
        }
    }
}

/// One unit of tier quota; returned to the gate on drop.
#[derive(Debug)]
pub struct TierPermit {
    gate: Arc<TierGate>,
}

impl Drop for TierPermit {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A registered model plus its (optional) admission gate and
/// persistence provenance.
#[derive(Clone)]
pub struct ModelEntry {
    /// The shared predictor.
    pub model: ServedModel,
    /// In-flight quota gate; `None` means untiered (only the global
    /// worker-pool admission applies).
    pub gate: Option<Arc<TierGate>>,
    /// Path of the container file this model was loaded from (or last
    /// persisted to); `None` for models registered in-process.
    pub loaded_from: Option<String>,
    /// The container's whole-file CRC-32 fingerprint; `None` for
    /// models registered in-process.
    pub checksum: Option<u32>,
}

impl fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelEntry")
            .field("family", &self.model.name())
            .field("gate", &self.gate)
            .field("loaded_from", &self.loaded_from)
            .field("checksum", &self.checksum)
            .finish()
    }
}

/// Summary of one registered model, as reported by `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The registered (URL-visible) name.
    pub name: String,
    /// The model family, from [`Predictor::name`].
    pub family: &'static str,
    /// Expected feature count per input row.
    pub n_features: usize,
    /// Container path the model was loaded from, when persisted.
    pub loaded_from: Option<String>,
    /// Container CRC-32 fingerprint, when persisted.
    pub checksum: Option<u32>,
}

/// An ordered collection of named models.
#[derive(Default, Clone)]
pub struct ModelRegistry {
    models: BTreeMap<String, ModelEntry>,
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry").field("models", &self.names()).finish()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `model` under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] for names outside the URL-safe
    /// alphabet, [`RegistryError::Duplicate`] when the name is taken.
    pub fn register<P>(&mut self, name: &str, model: P) -> Result<(), RegistryError>
    where
        P: Predictor + Send + Sync + 'static,
    {
        self.register_arc(name, Arc::new(model))
    }

    /// Registers an already-shared model under `name`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelRegistry::register`].
    pub fn register_arc(&mut self, name: &str, model: ServedModel) -> Result<(), RegistryError> {
        self.insert_entry(name, ModelEntry { model, gate: None, loaded_from: None, checksum: None })
    }

    /// Registers a model reloaded from a persisted container, recording
    /// where it came from and its file CRC (reported by `/v1/models`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelRegistry::register`].
    pub fn register_loaded(
        &mut self,
        name: &str,
        model: ServedModel,
        loaded_from: String,
        checksum: u32,
    ) -> Result<(), RegistryError> {
        self.insert_entry(
            name,
            ModelEntry { model, gate: None, loaded_from: Some(loaded_from), checksum: Some(checksum) },
        )
    }

    /// Registers `model` under `name` behind an [`AdmissionTier`]
    /// in-flight quota (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModelRegistry::register`].
    pub fn register_tiered<P>(
        &mut self,
        name: &str,
        model: P,
        mut tier: AdmissionTier,
    ) -> Result<(), RegistryError>
    where
        P: Predictor + Send + Sync + 'static,
    {
        tier.max_in_flight = tier.max_in_flight.max(1);
        self.insert_entry(
            name,
            ModelEntry {
                model: Arc::new(model),
                gate: Some(TierGate::new(tier)),
                loaded_from: None,
                checksum: None,
            },
        )
    }

    /// Whether `name` fits the URL-safe registry alphabet.
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
    }

    fn insert_entry(&mut self, name: &str, entry: ModelEntry) -> Result<(), RegistryError> {
        if !Self::valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        if self.models.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        self.models.insert(name.to_string(), entry);
        Ok(())
    }

    /// Inserts `entry` under `name`, replacing any existing entry —
    /// the rebuild primitive behind hot reload and `:train` (both
    /// construct the next generation from a clone of a previous one).
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] for names outside the URL-safe
    /// alphabet.
    pub fn upsert_entry(&mut self, name: &str, entry: ModelEntry) -> Result<(), RegistryError> {
        if !Self::valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        self.models.insert(name.to_string(), entry);
        Ok(())
    }

    /// The model registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<ServedModel> {
        self.models.get(name).map(|e| Arc::clone(&e.model))
    }

    /// The model *and* its admission gate registered under `name`.
    pub fn get_entry(&self, name: &str) -> Option<ModelEntry> {
        self.models.get(name).cloned()
    }

    /// Registered names, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// One [`ModelInfo`] per registered model, in name order.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.models
            .iter()
            .map(|(name, entry)| ModelInfo {
                name: name.clone(),
                family: entry.model.name(),
                n_features: entry.model.n_features(),
                loaded_from: entry.loaded_from.clone(),
                checksum: entry.checksum,
            })
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// One published registry generation. Immutable once published:
/// requests that hold a snapshot keep scoring against it even while a
/// newer generation is being swapped in.
#[derive(Debug)]
pub struct RegistrySnapshot {
    /// The models of this generation.
    pub registry: ModelRegistry,
    /// Monotonic generation counter, starting at 1 and bumped by every
    /// [`SharedRegistry::swap`]. Echoed as the `x-model-generation`
    /// header on predict responses and in `/v1/models`.
    pub generation: u64,
}

/// The server's handle to the current registry generation: readers
/// clone an `Arc` under a brief read lock (arc-swap semantics on
/// [`DbgRwLock`]), writers publish a whole replacement registry. The
/// write lock is only held for the pointer swap itself — building the
/// next generation (directory scan, model loads, training) happens
/// before [`SharedRegistry::swap`] is called, with no lock held.
#[derive(Debug)]
pub struct SharedRegistry {
    current: DbgRwLock<Arc<RegistrySnapshot>>,
}

impl SharedRegistry {
    /// Publishes `registry` as generation 1.
    pub fn new(registry: ModelRegistry) -> Self {
        SharedRegistry {
            current: DbgRwLock::new(
                "serve.registry.current",
                Arc::new(RegistrySnapshot { registry, generation: 1 }),
            ),
        }
    }

    /// The current generation's snapshot. Cheap: one short read lock
    /// and an `Arc` clone.
    pub fn snapshot(&self) -> Arc<RegistrySnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Atomically publishes `registry` as the next generation and
    /// returns its generation number. In-flight requests holding the
    /// previous snapshot are unaffected.
    pub fn swap(&self, registry: ModelRegistry) -> u64 {
        let mut current = self.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let generation = current.generation + 1;
        *current = Arc::new(RegistrySnapshot { registry, generation });
        generation
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn tiny_ridge() -> Ridge {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.5, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 1.0, 2.0];
        Ridge::fit(&x, &y, 0.1).expect("tiny ridge fits")
    }

    #[test]
    fn register_and_look_up() {
        let mut reg = ModelRegistry::new();
        reg.register("fmax-ridge", tiny_ridge()).expect("register");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let model = reg.get("fmax-ridge").expect("present");
        assert_eq!(model.name(), "ridge");
        assert_eq!(model.n_features(), 2);
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn listing_is_name_ordered() {
        let mut reg = ModelRegistry::new();
        for name in ["zeta", "alpha", "mid.point-1_2"] {
            reg.register(name, tiny_ridge()).expect("register");
        }
        let names: Vec<String> = reg.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["alpha", "mid.point-1_2", "zeta"]);
    }

    #[test]
    fn invalid_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        for bad in ["", "has space", "slash/y", "colon:predict", "q?x", "ünicode"] {
            assert_eq!(
                reg.register(bad, tiny_ridge()),
                Err(RegistryError::InvalidName(bad.to_string())),
                "{bad:?} should be invalid"
            );
        }
    }

    #[test]
    fn tier_gate_enforces_and_returns_quota() {
        let mut reg = ModelRegistry::new();
        reg.register_tiered("svc", tiny_ridge(), AdmissionTier::new("bulk", 2))
            .expect("tiered register");
        reg.register("free", tiny_ridge()).expect("untiered register");
        assert!(reg.get_entry("free").expect("entry").gate.is_none());
        let gate = reg.get_entry("svc").expect("entry").gate.expect("tiered");
        assert_eq!(gate.tier().name, "bulk");
        assert_eq!(gate.tier().retry_after_secs, 1);
        let a = gate.try_acquire().expect("first unit");
        let b = gate.try_acquire().expect("second unit");
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_acquire().is_none(), "quota saturated");
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let _c = gate.try_acquire().expect("freed unit is reusable");
        drop(b);
    }

    #[test]
    fn zero_quota_tiers_are_clamped_to_one() {
        let mut reg = ModelRegistry::new();
        reg.register_tiered("svc", tiny_ridge(), AdmissionTier::new("tiny", 0)).expect("register");
        let gate = reg.get_entry("svc").expect("entry").gate.expect("tiered");
        assert_eq!(gate.tier().max_in_flight, 1, "a 0-quota tier would serve nothing");
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        reg.register("svc", tiny_ridge()).expect("first");
        assert_eq!(
            reg.register("svc", tiny_ridge()),
            Err(RegistryError::Duplicate("svc".to_string()))
        );
    }

    #[test]
    fn loaded_models_carry_provenance() {
        let mut reg = ModelRegistry::new();
        reg.register_loaded("r", Arc::new(tiny_ridge()), "/models/r.edm".to_string(), 0xDEAD)
            .expect("register loaded");
        reg.register("plain", tiny_ridge()).expect("register plain");
        let infos = reg.list();
        assert_eq!(infos[1].loaded_from.as_deref(), Some("/models/r.edm"));
        assert_eq!(infos[1].checksum, Some(0xDEAD));
        assert_eq!(infos[0].loaded_from, None, "in-process models have no provenance");
        assert_eq!(infos[0].checksum, None);
    }

    #[test]
    fn shared_registry_swaps_generations_without_touching_held_snapshots() {
        let mut gen1 = ModelRegistry::new();
        gen1.register("a", tiny_ridge()).expect("register a");
        let shared = SharedRegistry::new(gen1);
        assert_eq!(shared.generation(), 1);
        let held = shared.snapshot();

        let mut gen2 = held.registry.clone();
        gen2.upsert_entry(
            "b",
            ModelEntry {
                model: Arc::new(tiny_ridge()),
                gate: None,
                loaded_from: None,
                checksum: None,
            },
        )
        .expect("upsert b");
        assert_eq!(shared.swap(gen2), 2);

        // The held snapshot still sees generation 1's world...
        assert_eq!(held.generation, 1);
        assert_eq!(held.registry.names(), vec!["a"]);
        // ...while fresh snapshots see generation 2.
        let fresh = shared.snapshot();
        assert_eq!(fresh.generation, 2);
        assert_eq!(fresh.registry.names(), vec!["a", "b"]);
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut reg = ModelRegistry::new();
        reg.register("m", tiny_ridge()).expect("register");
        let replacement = ModelEntry {
            model: Arc::new(tiny_ridge()),
            gate: None,
            loaded_from: Some("m.edm".to_string()),
            checksum: Some(7),
        };
        reg.upsert_entry("m", replacement).expect("upsert over existing");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get_entry("m").expect("entry").loaded_from.as_deref(), Some("m.edm"));
        assert!(reg.upsert_entry("bad name", reg.get_entry("m").expect("entry")).is_err());
    }
}
