//! The model directory behind hot reload: `*.edm` containers on disk,
//! scanned into a registry generation at startup and on
//! `POST /v1/admin/reload`, written back by `POST /v1/models/{name}:train`.
//!
//! The layout is deliberately flat: every file `<name>.edm` directly
//! under the directory serves one model, registered under its filename
//! stem (which must fit the registry's URL-safe alphabet). Writes are
//! atomic — containers are staged to `<name>.edm.tmp` and renamed into
//! place — so a reload can never observe a half-written model.
//!
//! A corrupt or unloadable file never takes the scan down with it: the
//! scan loads what it can, reports per-file failures in
//! [`ScanReport::errors`], and the serve layer keeps running on
//! whatever loaded. Directory-level failures (the directory itself is
//! unreadable) are the only hard errors.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use edm::model_io::ModelReader;
use edm::persist::load_predictor_from_bytes;
use edm::{Error, Predictor, PersistentPredictor};

use crate::registry::{ModelEntry, ModelRegistry, ServedModel};

/// File extension for persisted model containers.
pub const MODEL_EXTENSION: &str = "edm";

/// Adapter giving a reloaded `Box<dyn PersistentPredictor>` the
/// `Arc<dyn Predictor>` shape the registry serves (no trait upcasting
/// required).
struct LoadedPredictor(Box<dyn PersistentPredictor + Send + Sync>);

impl Predictor for LoadedPredictor {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        self.0.predict_batch(xs)
    }

    fn n_features(&self) -> usize {
        self.0.n_features()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// One model successfully loaded by a [`ModelStore::scan`].
pub struct StoredModel {
    /// Registry name (the filename stem).
    pub name: String,
    /// The reloaded predictor, ready to serve.
    pub model: ServedModel,
    /// Absolute-ish path the container was read from, as displayed in
    /// `/v1/models`.
    pub loaded_from: String,
    /// The container's whole-file CRC-32.
    pub checksum: u32,
}

impl std::fmt::Debug for StoredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredModel")
            .field("name", &self.name)
            .field("family", &self.model.name())
            .field("loaded_from", &self.loaded_from)
            .field("checksum", &self.checksum)
            .finish()
    }
}

/// Outcome of one directory scan: what loaded, and what did not.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Successfully loaded models, in name order.
    pub models: Vec<StoredModel>,
    /// `(file name, why)` for every `*.edm` file that failed to load
    /// (corrupt container, unknown family, invalid stem), in file-name
    /// order. These are skipped, not fatal.
    pub errors: Vec<(String, String)>,
}

impl ScanReport {
    /// Overlays every loaded model onto `registry` (replacing
    /// same-named entries), producing the next generation's registry.
    /// A replaced entry keeps its admission gate: the tier is serving
    /// policy, not model data, and survives reloads.
    pub fn apply(&self, registry: &mut ModelRegistry) {
        for stored in &self.models {
            let gate = registry.get_entry(&stored.name).and_then(|e| e.gate);
            // Names were validated against the registry alphabet during
            // the scan, so upsert cannot fail here.
            let _ = registry.upsert_entry(
                &stored.name,
                ModelEntry {
                    model: Arc::clone(&stored.model),
                    gate,
                    loaded_from: Some(stored.loaded_from.clone()),
                    checksum: Some(stored.checksum),
                },
            );
        }
    }
}

/// A model directory. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// A store rooted at `dir`. The directory is created lazily by the
    /// first [`ModelStore::save`]; scanning a missing directory yields
    /// an empty report.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ModelStore { dir: dir.into() }
    }

    /// A store at `EDM_SERVE_MODEL_DIR`, when that variable is set and
    /// non-empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var("EDM_SERVE_MODEL_DIR") {
            Ok(dir) if !dir.is_empty() => Some(ModelStore::new(dir)),
            _ => None,
        }
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads every `*.edm` container directly under the directory.
    /// Per-file failures land in [`ScanReport::errors`]; a missing
    /// directory is an empty report.
    ///
    /// # Errors
    ///
    /// Only when the directory exists but cannot be read at all.
    pub fn scan(&self) -> io::Result<ScanReport> {
        let mut report = ScanReport::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(e),
        };
        // Sort for deterministic load order and reporting (read_dir
        // order is filesystem-dependent).
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(MODEL_EXTENSION))
            .collect();
        paths.sort();
        for path in paths {
            let file = path.file_name().and_then(|f| f.to_str()).unwrap_or("?").to_string();
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                report.errors.push((file, "non-UTF-8 file stem".to_string()));
                continue;
            };
            if !ModelRegistry::valid_name(name) {
                report.errors.push((
                    file,
                    format!("stem {name:?} is outside the registry alphabet [A-Za-z0-9_.-]"),
                ));
                continue;
            }
            match self.load_file(&path) {
                Ok(stored) => report.models.push(stored),
                Err(e) => report.errors.push((file, e.to_string())),
            }
        }
        Ok(report)
    }

    fn load_file(&self, path: &Path) -> Result<StoredModel, Error> {
        let bytes = fs::read(path).map_err(|e| Error::ModelIo(e.into()))?;
        let loaded = load_predictor_from_bytes(&bytes)?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("caller validated the stem")
            .to_string();
        Ok(StoredModel {
            name,
            model: Arc::new(LoadedPredictor(loaded.model)),
            loaded_from: path.display().to_string(),
            checksum: loaded.checksum,
        })
    }

    /// Persists `model` as `<name>.edm`, atomically (staged tmp file +
    /// rename). Returns the final path and the container's CRC-32.
    ///
    /// # Errors
    ///
    /// [`edm::Error::ModelIo`] when encoding or any filesystem step
    /// fails.
    pub fn save(
        &self,
        name: &str,
        model: &dyn PersistentPredictor,
    ) -> Result<(PathBuf, u32), Error> {
        let mut bytes = Vec::new();
        model.save(&mut bytes)?;
        // Re-open the fresh container for its sealed file CRC — the
        // same fingerprint a later load reports.
        let checksum = ModelReader::from_bytes(&bytes).map_err(Error::ModelIo)?.checksum();
        fs::create_dir_all(&self.dir).map_err(|e| Error::ModelIo(e.into()))?;
        let path = self.dir.join(format!("{name}.{MODEL_EXTENSION}"));
        let tmp = self.dir.join(format!("{name}.{MODEL_EXTENSION}.tmp"));
        fs::write(&tmp, &bytes).map_err(|e| Error::ModelIo(e.into()))?;
        fs::rename(&tmp, &path).map_err(|e| Error::ModelIo(e.into()))?;
        Ok((path, checksum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edm-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_ridge() -> Ridge {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![0.5, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 1.0, 2.0];
        Ridge::fit(&x, &y, 0.1).expect("tiny ridge fits")
    }

    #[test]
    fn save_scan_round_trip_preserves_predictions_and_checksum() {
        let store = ModelStore::new(scratch("roundtrip"));
        let ridge = tiny_ridge();
        let (path, checksum) = store.save("plane", &ridge).expect("save");
        assert!(path.ends_with("plane.edm"), "got {path:?}");

        let report = store.scan().expect("scan");
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert_eq!(report.models.len(), 1);
        let stored = &report.models[0];
        assert_eq!((stored.name.as_str(), stored.checksum), ("plane", checksum));
        let probe = vec![vec![0.3, 0.7]];
        let direct = edm::Predictor::predict_batch(&ridge, &probe).expect("direct");
        let loaded = stored.model.predict_batch(&probe).expect("loaded");
        assert_eq!(direct[0].to_bits(), loaded[0].to_bits(), "reload changed a score");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_and_misnamed_files_are_skipped_not_fatal() {
        let store = ModelStore::new(scratch("corrupt"));
        store.save("good", &tiny_ridge()).expect("save good");
        fs::write(store.dir().join("broken.edm"), b"not a container").expect("write junk");
        fs::write(store.dir().join("bad name.edm"), b"x").expect("write bad stem");
        fs::write(store.dir().join("ignored.txt"), b"x").expect("write non-model");

        let report = store.scan().expect("scan survives junk");
        let names: Vec<&str> = report.models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["good"]);
        let failed: Vec<&str> = report.errors.iter().map(|(f, _)| f.as_str()).collect();
        assert_eq!(failed, vec!["bad name.edm", "broken.edm"]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_directory_scans_empty() {
        let store = ModelStore::new(scratch("missing"));
        let report = store.scan().expect("missing dir is empty, not fatal");
        assert!(report.models.is_empty() && report.errors.is_empty());
    }

    #[test]
    fn apply_overlays_and_replaces() {
        let store = ModelStore::new(scratch("apply"));
        store.save("shared", &tiny_ridge()).expect("save");
        let report = store.scan().expect("scan");

        let mut reg = ModelRegistry::new();
        reg.register("shared", tiny_ridge()).expect("register in-process");
        reg.register("builtin", tiny_ridge()).expect("register builtin");
        report.apply(&mut reg);
        assert_eq!(reg.len(), 2, "overlay replaces, never duplicates");
        let entry = reg.get_entry("shared").expect("entry");
        assert!(entry.loaded_from.is_some(), "disk model must replace the in-process one");
        assert!(reg.get_entry("builtin").expect("entry").loaded_from.is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}
