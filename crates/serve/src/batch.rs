//! Micro-batch scheduler: coalesces concurrent predict requests for
//! the same model into one `predict_batch` call.
//!
//! # Why
//!
//! A scoring service under a high-rate stream of small requests pays
//! the per-call overhead of `predict_batch` (dispatch, fan-out, cache
//! warm-up) once per request, and the kernels underneath (tiled Gram,
//! batched Q fills, `edm-par` row fan-out) never see batches large
//! enough to win. Coalescing concurrent requests converts that
//! per-request fan-out into the large batches the compute layer is
//! optimized for — without changing a single scored value, because
//! every `Predictor` scores rows independently (batched output row `i`
//! is bitwise identical to scoring row `i` alone; pinned by the
//! `batch_props` proptests).
//!
//! # How
//!
//! Per model the scheduler keeps a tiny state machine: an `active`
//! flag (someone is scoring right now) and a queue of waiting
//! requests.
//!
//! * **Inline fast path.** A request that finds the model idle scores
//!   immediately on its own thread — an idle server adds *zero*
//!   latency (`flush_reason = "inline"`).
//! * **Coalescing.** Requests arriving while a score is in flight
//!   enqueue and park. When the in-flight call finishes, the whole
//!   queue is handed to one waiter (the promoted *leader*), which
//!   scores every queued request in one `predict_batch` call and
//!   distributes the per-request slices back to the parked waiters in
//!   order (`flush_reason = "drain"`). The natural coalescing window
//!   is therefore one in-flight execution — bounded by the model's own
//!   batch latency, not by a timer.
//! * **Bounded hold.** With [`BatchConfig::max_wait`] > 0 the promoted
//!   leader additionally holds the batch open for stragglers until the
//!   deadline or the row cap, whichever comes first
//!   (`flush_reason = "hold"` / `"size"`). The default is 0: flush the
//!   moment a leader is promoted, so added latency stays at most one
//!   execution even under adversarial arrival patterns.
//! * **Caps.** Batches are chunked at request boundaries to
//!   [`BatchConfig::max_rows`] rows per call; a single oversized
//!   request bypasses the queue entirely (`flush_reason = "bypass"`).
//!
//! Env knobs (read once per [`BatchConfig::from_env`]):
//! `EDM_SERVE_BATCH=off` disables coalescing,
//! `EDM_SERVE_BATCH_MAX_ROWS` caps rows per flushed call, and
//! `EDM_SERVE_BATCH_WAIT_US` sets the leader hold budget.
//!
//! Every flush feeds the trace probes `serve.batch.size`,
//! `serve.batch.wait_ns`, and `serve.batch.flush_reason` plus the
//! always-on [`ServeMetrics`] batch families rendered on `/metrics`.
//!
//! # Failure containment
//!
//! Shapes are validated *before* submission (the server rejects
//! mismatched rows with 400 up front), so one malformed request can
//! never poison a shared batch. If `predict_batch` still fails or
//! panics mid-flush, every request in that flush gets the error while
//! the model's state machine is released by RAII guards — a panicking
//! predictor cannot wedge the queue or strand a parked waiter.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use edm_par::sync::{DbgCondvar, DbgMutex, DbgMutexGuard};

use crate::metrics::ServeMetrics;
use crate::registry::ServedModel;

/// Tunables for the [`BatchScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Master switch; `false` scores every request inline, unbatched.
    pub enabled: bool,
    /// Most rows per flushed `predict_batch` call; batches are chunked
    /// at request boundaries to stay under this. Requests carrying
    /// `max_rows` or more rows bypass the queue.
    pub max_rows: usize,
    /// How long a promoted leader may hold its batch open waiting for
    /// more arrivals. Zero (the default) flushes immediately on
    /// promotion, so coalescing never *adds* latency beyond one
    /// in-flight execution.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { enabled: true, max_rows: 512, max_wait: Duration::ZERO }
    }
}

impl BatchConfig {
    /// The defaults with `EDM_SERVE_BATCH` / `EDM_SERVE_BATCH_MAX_ROWS`
    /// / `EDM_SERVE_BATCH_WAIT_US` environment overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = BatchConfig::default();
        if let Ok(v) = std::env::var("EDM_SERVE_BATCH") {
            cfg.enabled =
                !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"));
        }
        if let Some(rows) =
            std::env::var("EDM_SERVE_BATCH_MAX_ROWS").ok().and_then(|v| v.parse::<usize>().ok())
        {
            cfg.max_rows = rows.max(1);
        }
        if let Some(us) =
            std::env::var("EDM_SERVE_BATCH_WAIT_US").ok().and_then(|v| v.parse::<u64>().ok())
        {
            cfg.max_wait = Duration::from_micros(us);
        }
        cfg
    }
}

/// Scoring outcome for one submitted request.
type ScoreResult = Result<Vec<f64>, String>;

/// What one parked request is waiting on.
enum SlotState {
    /// Still queued; the leader has not picked this request up yet.
    Waiting,
    /// This waiter was promoted to leader: it must score the contained
    /// batch (its own request included) and distribute the results.
    Lead(Vec<Pending>),
    /// Scored; the result is ready to take.
    Done(ScoreResult),
    /// Result already taken (terminal; seen only by debug assertions).
    Taken,
}

/// One parked request's rendezvous point.
struct Slot {
    state: DbgMutex<SlotState>,
    ready: DbgCondvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: DbgMutex::new("serve.batch.slot", SlotState::Waiting),
            ready: DbgCondvar::new(),
        })
    }

    fn fill(&self, result: ScoreResult) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *st = SlotState::Done(result);
        self.ready.notify_one();
    }
}

/// A queued request: its rows and where to deliver the result.
struct Pending {
    rows: Vec<Vec<f64>>,
    enqueued: Instant,
    slot: Arc<Slot>,
}

/// Per-model coalescing state.
struct QState {
    /// True while some thread is scoring this model (inline or as a
    /// leader). Requests arriving meanwhile enqueue instead of racing.
    active: bool,
    queue: Vec<Pending>,
}

struct ModelQueue {
    state: DbgMutex<QState>,
    /// Signaled on every enqueue; a holding leader waits here.
    arrivals: DbgCondvar,
}

impl ModelQueue {
    fn new() -> Arc<ModelQueue> {
        Arc::new(ModelQueue {
            state: DbgMutex::new("serve.batch.queue", QState { active: false, queue: Vec::new() }),
            arrivals: DbgCondvar::new(),
        })
    }

    fn lock(&self) -> DbgMutexGuard<'_, QState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Releases a model's `active` flag when scoring finishes — promoting
/// a new leader if requests queued up meanwhile. Runs on drop so a
/// panicking predictor cannot wedge the model.
struct ActiveGuard<'a> {
    mq: &'a ModelQueue,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.mq.lock();
        if st.queue.is_empty() {
            st.active = false;
            return;
        }
        // Promote: hand the whole queue to the first waiter; `active`
        // stays true until that leader's own guard runs.
        let batch = std::mem::take(&mut st.queue);
        let lead = Arc::clone(&batch[0].slot);
        drop(st);
        let mut slot = lead.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = SlotState::Lead(batch);
        lead.ready.notify_one();
    }
}

/// Fails every not-yet-delivered request in a flush if the scoring
/// call panics, so parked waiters always wake.
struct FlushGuard<'a> {
    undelivered: &'a [Pending],
    armed: bool,
}

impl Drop for FlushGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for p in self.undelivered {
            p.slot.fill(Err("batched scoring panicked".to_string()));
        }
    }
}

/// Pre-resolved flush telemetry (the flush reasons form a small closed
/// vocabulary, so every handle is resolved once at scheduler
/// construction — the per-flush cost is atomics and short per-series
/// locks, never the global trace registry).
struct BatchProbes {
    size: edm_trace::HistHandle,
    wait_ns: edm_trace::HistHandle,
    inline_flush: edm_trace::CounterHandle,
    drain: edm_trace::CounterHandle,
    size_flush: edm_trace::CounterHandle,
    hold: edm_trace::CounterHandle,
    bypass: edm_trace::CounterHandle,
}

impl BatchProbes {
    fn resolve() -> BatchProbes {
        let reason =
            |r: &str| edm_trace::counter_handle("serve.batch.flush_reason", &[("reason", r)]);
        BatchProbes {
            size: edm_trace::hist_handle("serve.batch.size", &[]),
            wait_ns: edm_trace::hist_handle("serve.batch.wait_ns", &[]),
            inline_flush: reason("inline"),
            drain: reason("drain"),
            size_flush: reason("size"),
            hold: reason("hold"),
            bypass: reason("bypass"),
        }
    }

    fn for_reason(&self, reason: &str) -> &edm_trace::CounterHandle {
        match reason {
            "inline" => &self.inline_flush,
            "drain" => &self.drain,
            "size" => &self.size_flush,
            "hold" => &self.hold,
            _ => &self.bypass,
        }
    }
}

/// The per-server micro-batch scheduler. See the [module docs](self).
///
/// Queues are keyed per **(model name, registry generation)**: after a
/// hot reload, requests routed against the new generation coalesce in
/// a fresh queue while any in-flight leader finishes draining the old
/// one — a batch can therefore never mix rows scored by two different
/// generations of a model.
pub struct BatchScheduler {
    config: BatchConfig,
    queues: DbgMutex<BTreeMap<String, (u64, Arc<ModelQueue>)>>,
    probes: BatchProbes,
}

impl BatchScheduler {
    /// A scheduler with the given tunables.
    pub fn new(config: BatchConfig) -> Self {
        BatchScheduler {
            config,
            queues: DbgMutex::new("serve.batch.queues", BTreeMap::new()),
            probes: BatchProbes::resolve(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Scores `rows` against `model`, coalescing with any concurrent
    /// submissions for the same `name` *and* `generation`. Blocks
    /// until this request's results are ready. Row `i` of the return
    /// value is bitwise identical to what `model.predict_batch(&rows)`
    /// would have produced for row `i`.
    ///
    /// `generation` is the registry generation `model` came from;
    /// requests from different generations never share a batch.
    ///
    /// # Errors
    ///
    /// The stringified predictor error; every request in a failing
    /// flush observes the same error. Callers should validate shapes
    /// against [`edm::Predictor::n_features`] *before* submitting so a
    /// shape error cannot fail innocent co-batched requests.
    pub fn submit(
        &self,
        name: &str,
        generation: u64,
        model: &ServedModel,
        rows: Vec<Vec<f64>>,
        metrics: &ServeMetrics,
    ) -> ScoreResult {
        if !self.config.enabled {
            return model.predict_batch(&rows).map_err(|e| e.to_string());
        }
        if rows.len() >= self.config.max_rows {
            return self.score_chunk(model, &[], &rows, "bypass", Instant::now(), metrics);
        }
        let mq = self.model_queue(name, generation);
        let enqueued = Instant::now();
        {
            let mut st = mq.lock();
            if st.active {
                // Someone is scoring this model: park and coalesce.
                let slot = Slot::new();
                st.queue.push(Pending { rows, enqueued, slot: Arc::clone(&slot) });
                drop(st);
                mq.arrivals.notify_one();
                return self.wait_or_lead(&mq, &slot, model, metrics);
            }
            st.active = true;
        }
        // Inline fast path: the model was idle, score immediately.
        let _release = ActiveGuard { mq: &mq };
        self.score_chunk(model, &[], &rows, "inline", enqueued, metrics)
    }

    /// Parks on `slot` until a result arrives — or until this waiter
    /// is promoted to leader, in which case it scores the batch it was
    /// handed and returns its own slice.
    fn wait_or_lead(
        &self,
        mq: &ModelQueue,
        slot: &Arc<Slot>,
        model: &ServedModel,
        metrics: &ServeMetrics,
    ) -> ScoreResult {
        let mut st = slot.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Done(result) => return result,
                SlotState::Lead(batch) => {
                    drop(st);
                    return self.lead(mq, slot, batch, model, metrics);
                }
                waiting @ SlotState::Waiting => {
                    *st = waiting;
                    st = slot.ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                SlotState::Taken => unreachable!("slot consumed twice"),
            }
        }
    }

    /// Leader duty: optionally hold for stragglers, then flush the
    /// batch in `max_rows`-bounded chunks, delivering every request's
    /// slice. Returns this leader's own result. The leader's
    /// [`ActiveGuard`] promotes the next leader (or goes idle) on exit
    /// — including on panic.
    fn lead(
        &self,
        mq: &ModelQueue,
        own: &Arc<Slot>,
        mut batch: Vec<Pending>,
        model: &ServedModel,
        metrics: &ServeMetrics,
    ) -> ScoreResult {
        let _release = ActiveGuard { mq };
        let mut reason = "drain";
        if !self.config.max_wait.is_zero() {
            reason = self.hold_for_stragglers(mq, &mut batch);
        }
        let mut own_result: ScoreResult = Err("leader lost its own result".to_string());
        let mut start = 0;
        while start < batch.len() {
            // Chunk at request boundaries: extend while under the cap
            // (always take at least one request).
            let mut end = start + 1;
            let mut chunk_rows = batch[start].rows.len();
            while end < batch.len() && chunk_rows + batch[end].rows.len() <= self.config.max_rows {
                chunk_rows += batch[end].rows.len();
                end += 1;
            }
            let chunk = &batch[start..end];
            let chunk_reason = if end < batch.len() { "size" } else { reason };
            let all_rows: Vec<Vec<f64>> =
                chunk.iter().flat_map(|p| p.rows.iter().cloned()).collect();
            let oldest = chunk.iter().map(|p| p.enqueued).min().unwrap_or_else(Instant::now);
            let _ = self.score_chunk(model, chunk, &all_rows, chunk_reason, oldest, metrics);
            // `score_chunk` delivered every request's slice, our own
            // included (the leader's pending is somewhere in `batch`);
            // fish our slice back out of our slot when its chunk runs.
            if chunk.iter().any(|p| Arc::ptr_eq(&p.slot, own)) {
                let mut st = own.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if let SlotState::Done(r) = std::mem::replace(&mut *st, SlotState::Taken) {
                    own_result = r;
                }
            }
            start = end;
        }
        own_result
    }

    /// Holds the freshly promoted leader's batch open until the row cap
    /// or [`BatchConfig::max_wait`] elapses, absorbing new arrivals.
    /// Returns the flush reason.
    fn hold_for_stragglers(&self, mq: &ModelQueue, batch: &mut Vec<Pending>) -> &'static str {
        let deadline = Instant::now() + self.config.max_wait;
        let mut st = mq.lock();
        loop {
            batch.append(&mut st.queue);
            let rows: usize = batch.iter().map(|p| p.rows.len()).sum();
            if rows >= self.config.max_rows {
                return "size";
            }
            let now = Instant::now();
            if now >= deadline {
                return "hold";
            }
            let (guard, _) = mq
                .arrivals
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
    }

    /// Scores one flushed chunk (`followers` may be empty for the
    /// inline/bypass paths, where `rows` belong to the calling request
    /// alone), records the flush telemetry, and delivers every
    /// follower's slice. Returns the full chunk result.
    fn score_chunk(
        &self,
        model: &ServedModel,
        followers: &[Pending],
        rows: &[Vec<f64>],
        reason: &'static str,
        oldest: Instant,
        metrics: &ServeMetrics,
    ) -> ScoreResult {
        let mut guard = FlushGuard { undelivered: followers, armed: true };
        let wait_ns = oldest.elapsed().as_nanos() as u64;
        let n_requests = followers.len().max(1);
        self.probes.size.record(rows.len() as f64);
        self.probes.wait_ns.record(wait_ns as f64);
        self.probes.for_reason(reason).add(1);
        metrics.batch_flush(reason, n_requests, rows.len());
        let result = model.predict_batch(rows).map_err(|e| e.to_string());
        guard.armed = false;
        match &result {
            Ok(preds) => {
                let mut offset = 0;
                for p in followers {
                    let take = p.rows.len();
                    p.slot.fill(Ok(preds[offset..offset + take].to_vec()));
                    offset += take;
                }
            }
            Err(e) => {
                for p in followers {
                    p.slot.fill(Err(e.clone()));
                }
            }
        }
        result
    }

    /// Requests currently parked for `name` (any generation), waiting
    /// to be coalesced. Point-in-time observability for tests and
    /// harnesses.
    pub fn queued(&self, name: &str) -> usize {
        let queues = self.queues.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        queues.get(name).map_or(0, |(_, mq)| mq.lock().queue.len())
    }

    /// The (lazily created) queue for `name` at `generation`. A stale
    /// entry from an older generation is replaced with a fresh queue:
    /// its in-flight leader keeps draining the waiters it already owns
    /// (they hold their own `Arc`), while new arrivals coalesce under
    /// the new generation. The hit path is allocation-free (no owned
    /// key is built for the lookup).
    fn model_queue(&self, name: &str, generation: u64) -> Arc<ModelQueue> {
        let mut queues = self.queues.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match queues.get_mut(name) {
            Some((gen, mq)) if *gen == generation => Arc::clone(mq),
            Some(slot) => {
                *slot = (generation, ModelQueue::new());
                Arc::clone(&slot.1)
            }
            None => {
                let (_, mq) =
                    queues.entry(name.to_string()).or_insert_with(|| (generation, ModelQueue::new()));
                Arc::clone(mq)
            }
        }
    }
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler").field("config", &self.config).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm::prelude::*;

    fn plane() -> ServedModel {
        let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        Arc::new(Ridge::fit(&x, &y, 1e-6).expect("plane fits"))
    }

    #[test]
    fn inline_path_matches_direct_scoring_bitwise() {
        let model = plane();
        let sched = BatchScheduler::new(BatchConfig::default());
        let metrics = ServeMetrics::new();
        let rows = vec![vec![0.25, 0.5], vec![0.75, -0.25]];
        let direct = model.predict_batch(&rows).expect("direct");
        let batched =
            sched.submit("plane", 1, &model, rows, &metrics).expect("inline submit succeeds");
        assert_eq!(batched.len(), direct.len());
        for (b, d) in batched.iter().zip(&direct) {
            assert_eq!(b.to_bits(), d.to_bits());
        }
        let snap = metrics.batch_snapshot();
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.batched_rows, 2);
        assert_eq!(snap.coalesced_batches, 0, "a lone request is not a coalesced batch");
    }

    #[test]
    fn oversized_requests_bypass_the_queue() {
        let model = plane();
        let sched = BatchScheduler::new(BatchConfig { max_rows: 2, ..BatchConfig::default() });
        let metrics = ServeMetrics::new();
        let rows = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.5, 0.5]];
        let out = sched.submit("plane", 1, &model, rows, &metrics).expect("bypass path");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn disabled_scheduler_is_a_passthrough() {
        let model = plane();
        let sched = BatchScheduler::new(BatchConfig { enabled: false, ..BatchConfig::default() });
        let metrics = ServeMetrics::new();
        let out =
            sched.submit("plane", 1, &model, vec![vec![0.5, 0.5]], &metrics).expect("passthrough");
        assert_eq!(out.len(), 1);
        assert_eq!(metrics.batch_snapshot().flushes, 0, "no batch telemetry when disabled");
    }

    #[test]
    fn shape_errors_surface_as_strings() {
        let model = plane();
        let sched = BatchScheduler::new(BatchConfig::default());
        let metrics = ServeMetrics::new();
        let err = sched
            .submit("plane", 1, &model, vec![vec![1.0, 2.0, 3.0]], &metrics)
            .expect_err("shape mismatch");
        assert!(err.contains("expects"), "got {err}");
    }
}
