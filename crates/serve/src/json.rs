//! Minimal hand-rolled JSON reader/writer for the scoring endpoints.
//!
//! The serving crate is zero-dependency by design (the workspace's
//! `serde_json` stand-in is a dev-only compat shim, and the server must
//! not pull the full serde machinery into every model crate), so this
//! module implements just enough of RFC 8259 for the wire format:
//! objects, arrays, strings with escapes (including `\uXXXX` and
//! surrogate pairs), `f64` numbers, booleans, and `null`.
//!
//! Objects preserve insertion order in a `Vec<(String, Value)>` — the
//! workspace's `unordered-iteration` lint bans `HashMap` in lib code,
//! and ordered output keeps responses byte-deterministic.
//!
//! Non-finite numbers serialize as `null` (JSON has no NaN/∞); the
//! parser caps nesting depth so adversarial bodies cannot overflow the
//! stack.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (linear scan; serving payloads have
    /// a handful of keys). `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if n.is_finite() {
                    // `{:?}` is Rust's shortest round-trip rendering,
                    // which is also valid JSON for finite values.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

pub(crate) fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Fast path for the predict wire format: parses exactly
/// `{"inputs": [[<number>, ...], ...]}` (arbitrary whitespace, no other
/// keys, no string escapes) straight into rows, skipping the [`Value`]
/// tree — the hot scoring endpoint would otherwise allocate one node
/// per cell. Numbers go through the same `str::parse::<f64>` as
/// [`parse`], so accepted bodies produce bitwise-identical rows.
/// Anything else — extra keys, non-numeric cells, malformed syntax,
/// non-finite numbers — returns `None`; the caller falls back to the
/// general parser for exact error reporting.
pub fn parse_inputs_fast(input: &str) -> Option<Vec<Vec<f64>>> {
    let mut c = Cursor { b: input.as_bytes(), pos: 0 };
    c.ws();
    if !c.eat(b'{') {
        return None;
    }
    c.ws();
    if !c.eat_slice(b"\"inputs\"") {
        return None;
    }
    c.ws();
    if !c.eat(b':') {
        return None;
    }
    c.ws();
    if !c.eat(b'[') {
        return None;
    }
    let mut rows = Vec::new();
    c.ws();
    if !c.eat(b']') {
        loop {
            c.ws();
            if !c.eat(b'[') {
                return None;
            }
            let mut row = Vec::new();
            c.ws();
            if !c.eat(b']') {
                loop {
                    c.ws();
                    row.push(c.number()?);
                    c.ws();
                    if c.eat(b',') {
                        continue;
                    }
                    if c.eat(b']') {
                        break;
                    }
                    return None;
                }
            }
            rows.push(row);
            c.ws();
            if c.eat(b',') {
                continue;
            }
            if c.eat(b']') {
                break;
            }
            return None;
        }
    }
    c.ws();
    if !c.eat(b'}') {
        return None;
    }
    c.ws();
    if c.pos == c.b.len() {
        Some(rows)
    } else {
        None
    }
}

/// Byte cursor for [`parse_inputs_fast`].
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.b.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_slice(&mut self, expected: &[u8]) -> bool {
        if self.b[self.pos..].starts_with(expected) {
            self.pos += expected.len();
            true
        } else {
            false
        }
    }

    /// Same number grammar and `f64` conversion as [`Parser::number`].
    fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        while matches!(self.b.get(self.pos), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).ok()?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Some(n),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            Ok(_) => Err(self.err("number out of f64 range")),
            Err(_) => Err(self.err("malformed number")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-UTF-8 string"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `\u` itself already
    /// consumed), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a `\uDC00`..`\uDFFF` low half must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).expect(src).encode()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("3.25"), "3.25");
        assert_eq!(roundtrip("-0.5"), "-0.5");
        assert_eq!(roundtrip("1e3"), "1000.0");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        assert_eq!(roundtrip("[1, 2.5, [3]]"), "[1.0,2.5,[3.0]]");
        assert_eq!(
            roundtrip("{\"z\": 1, \"a\": {\"k\": [true, null]}}"),
            "{\"z\":1.0,\"a\":{\"k\":[true,null]}}"
        );
    }

    #[test]
    fn string_escapes_both_ways() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\nd".to_string() + "Aé😀"));
        let enc = Value::Str("tab\there \"q\" \u{1}".into()).encode();
        assert_eq!(enc, "\"tab\\there \\\"q\\\" \\u0001\"");
        assert_eq!(parse(&enc).unwrap(), Value::Str("tab\there \"q\" \u{1}".into()));
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(Value::Number(f64::NAN).encode(), "null");
        assert_eq!(Value::Number(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn float_values_survive_bitwise() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, -1.7976931348623157e308] {
            let enc = Value::Number(v).encode();
            let back = parse(&enc).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {enc}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn fast_inputs_path_matches_the_general_parser_bitwise() {
        for body in [
            "{\"inputs\": [[1, 2.5], [3e-2, -0.125]]}",
            "{\"inputs\":[[0.1,0.2,0.3]]}",
            "{ \"inputs\" : [ [ 1e10 ] ] } ",
            "{\"inputs\": []}",
            "{\"inputs\": [[]]}",
        ] {
            let fast = parse_inputs_fast(body).unwrap_or_else(|| panic!("fast rejects {body:?}"));
            let doc = parse(body).expect(body);
            let rows = doc.get("inputs").and_then(Value::as_array).expect("inputs");
            assert_eq!(fast.len(), rows.len(), "{body}");
            for (f_row, row) in fast.iter().zip(rows) {
                let cells = row.as_array().expect("row");
                assert_eq!(f_row.len(), cells.len());
                for (f, c) in f_row.iter().zip(cells) {
                    assert_eq!(f.to_bits(), c.as_f64().expect("number").to_bits(), "{body}");
                }
            }
        }
    }

    #[test]
    fn fast_inputs_path_defers_everything_else() {
        for body in [
            "{\"inputs\": [[1]], \"extra\": 1}", // extra key
            "{\"rows\": [[1]]}",                 // wrong key
            "{\"inputs\": [[true]]}",            // non-number cell
            "{\"inputs\": [1]}",                 // non-array row
            "{\"inputs\": [[1]]",                // truncated
            "{\"inputs\": [[1]]} x",             // trailing garbage
            "{\"inputs\": [[1e999]]}",           // overflows f64
            "not json at all",
        ] {
            assert!(parse_inputs_fast(body).is_none(), "fast path must defer {body:?}");
        }
    }

    #[test]
    fn object_lookup_helpers() {
        let v = parse("{\"inputs\": [[1, 2]], \"n\": 2}").unwrap();
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(2.0));
        let rows = v.get("inputs").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("x").is_none());
    }
}
