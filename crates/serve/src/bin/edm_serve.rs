//! Demo scoring server: trains a few models on synthetic data and
//! serves them until killed.
//!
//! ```text
//! cargo run --release -p edm-serve --bin edm_serve [addr]
//! ```
//!
//! `addr` defaults to `127.0.0.1:8080`. Set `EDM_TRACE=summary` (or
//! `full`) to populate `/metrics`.

use std::time::Duration;

use edm::prelude::*;
use edm_serve::{ModelRegistry, Server, ServerConfig};

/// Deterministic SplitMix64 stream (the workspace bans ambient
/// entropy; a fixed seed also makes the demo responses reproducible).
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

/// Two separable blobs with ±1 labels, mimicking a pass/fail test
/// outcome against two parametric measurements.
fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut m = Mix(42);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        x.push(vec![m.next_f64() + label * 1.5, m.next_f64() + label * 1.5]);
        y.push(label);
    }
    (x, y)
}

fn registry() -> ModelRegistry {
    let (x, y) = blobs(120);
    let labels: Vec<i32> = y.iter().map(|&v| v as i32).collect();
    // A smooth synthetic "fmax" response over the same features.
    let fmax: Vec<f64> = x.iter().map(|r| 3.1 + 0.8 * r[0] - 0.4 * r[1]).collect();

    let mut reg = ModelRegistry::new();
    reg.register(
        "passfail-svc",
        SvcTrainer::new(SvcParams::default())
            .kernel(RbfKernel::new(0.5))
            .fit(&x, &y)
            .expect("separable blobs train"),
    )
    .expect("register passfail-svc");
    reg.register("fmax-ridge", Ridge::fit(&x, &fmax, 0.1).expect("ridge fits"))
        .expect("register fmax-ridge");
    reg.register(
        "outlier-oneclass",
        OneClassSvm::new(OneClassParams::default().with_nu(0.1))
            .kernel(RbfKernel::new(0.5))
            .fit(&x)
            .expect("one-class fits"),
    )
    .expect("register outlier-oneclass");
    reg.register("passfail-knn", KnnClassifier::fit(5, &x, &labels).expect("knn fits"))
        .expect("register passfail-knn");
    reg
}

fn main() {
    edm_trace::init_from_env_or(edm_trace::Level::Summary);
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let server = Server::start(&addr, registry(), ServerConfig::default())
        .expect("bind the requested address");
    let bound = server.local_addr();
    println!("edm-serve listening on http://{bound}");
    println!();
    println!("try:");
    println!("  curl http://{bound}/healthz");
    println!("  curl http://{bound}/v1/models");
    println!(
        "  curl -d '{{\"inputs\": [[1.4, 1.6], [-1.5, -1.4]]}}' \\\n       http://{bound}/v1/models/passfail-svc:predict"
    );
    println!("  curl http://{bound}/metrics");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
