//! Demo scoring server: trains a few models on synthetic data and
//! serves them until killed.
//!
//! ```text
//! cargo run --release -p edm-serve --bin edm_serve [addr]
//! cargo run --release -p edm-serve --bin edm_serve -- --save-demo DIR
//! ```
//!
//! `addr` defaults to `127.0.0.1:8080`. Set `EDM_TRACE=summary` (or
//! `full`) to populate `/metrics`. When `EDM_SERVE_MODEL_DIR` is set,
//! persisted `*.edm` containers in that directory are served alongside
//! the demo models and `POST /v1/admin/reload` rescans it without a
//! restart.
//!
//! `--save-demo DIR` skips serving entirely: it persists the demo
//! models into `DIR` as `*.edm` containers (handy for seeding a model
//! directory to exercise the reload path) and exits.

use std::time::Duration;

use edm::prelude::*;
use edm_serve::{ModelRegistry, ModelStore, Server, ServerConfig};

/// Deterministic SplitMix64 stream (the workspace bans ambient
/// entropy; a fixed seed also makes the demo responses reproducible).
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

/// Two separable blobs with ±1 labels, mimicking a pass/fail test
/// outcome against two parametric measurements.
fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut m = Mix(42);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        x.push(vec![m.next_f64() + label * 1.5, m.next_f64() + label * 1.5]);
        y.push(label);
    }
    (x, y)
}

/// The demo models, trained fresh: name → persistable predictor.
fn demo_models() -> Vec<(&'static str, Box<dyn edm::PersistentPredictor + Send + Sync>)> {
    let (x, y) = blobs(120);
    let labels: Vec<i32> = y.iter().map(|&v| v as i32).collect();
    // A smooth synthetic "fmax" response over the same features.
    let fmax: Vec<f64> = x.iter().map(|r| 3.1 + 0.8 * r[0] - 0.4 * r[1]).collect();
    vec![
        (
            "passfail-svc",
            Box::new(
                SvcTrainer::new(SvcParams::default())
                    .kernel(RbfKernel::new(0.5))
                    .fit(&x, &y)
                    .expect("separable blobs train"),
            ),
        ),
        ("fmax-ridge", Box::new(Ridge::fit(&x, &fmax, 0.1).expect("ridge fits"))),
        (
            "outlier-oneclass",
            Box::new(
                OneClassSvm::new(OneClassParams::default().with_nu(0.1))
                    .kernel(RbfKernel::new(0.5))
                    .fit(&x)
                    .expect("one-class fits"),
            ),
        ),
        ("passfail-knn", Box::new(KnnClassifier::fit(5, &x, &labels).expect("knn fits"))),
    ]
}

/// Serves each demo model through a thin adapter (the registry wants
/// `Arc<dyn Predictor>`, the persistence API hands out
/// `Box<dyn PersistentPredictor>`).
struct Demo(Box<dyn edm::PersistentPredictor + Send + Sync>);

impl edm::Predictor for Demo {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, edm::Error> {
        self.0.predict_batch(xs)
    }

    fn n_features(&self) -> usize {
        self.0.n_features()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

fn registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new();
    for (name, model) in demo_models() {
        reg.register_arc(name, std::sync::Arc::new(Demo(model)))
            .unwrap_or_else(|e| panic!("register {name}: {e}"));
    }
    reg
}

/// Persists the demo models into `dir` as `*.edm` containers and
/// exits. Seeds a model directory for the reload path.
fn save_demo(dir: &str) {
    let store = ModelStore::new(dir);
    for (name, model) in demo_models() {
        let (path, checksum) = store
            .save(name, model.as_ref())
            .unwrap_or_else(|e| panic!("persist {name}: {e}"));
        println!("saved {} (crc32 {checksum:#010x})", path.display());
    }
}

fn main() {
    edm_trace::init_from_env_or(edm_trace::Level::Summary);
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--save-demo") {
        let dir = args.next().unwrap_or_else(|| {
            eprintln!("usage: edm_serve --save-demo DIR");
            std::process::exit(2);
        });
        save_demo(&dir);
        return;
    }
    let addr = first.unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let store = ModelStore::from_env();
    let config = ServerConfig {
        model_dir: store.as_ref().map(|s| s.dir().to_path_buf()),
        ..ServerConfig::default()
    };
    let server =
        Server::start(&addr, registry(), config).expect("bind the requested address");
    let bound = server.local_addr();
    println!("edm-serve listening on http://{bound}");
    if let Some(store) = &store {
        println!("model directory: {} (POST /v1/admin/reload to rescan)", store.dir().display());
    }
    println!();
    println!("try:");
    println!("  curl http://{bound}/healthz");
    println!("  curl http://{bound}/v1/models");
    println!(
        "  curl -d '{{\"inputs\": [[1.4, 1.6], [-1.5, -1.4]]}}' \\\n       http://{bound}/v1/models/passfail-svc:predict"
    );
    println!("  curl -X POST http://{bound}/v1/admin/reload");
    println!("  curl http://{bound}/metrics");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
