//! Property tests pinning the serving contract: scoring through a
//! `&dyn Predictor` trait object (the only path the server uses) is
//! bitwise identical to calling the model's inherent `predict_batch`,
//! for SVC, SVR, and ridge across random training sets and batches.
//!
//! This is the load-bearing guarantee behind "a prediction served over
//! HTTP equals one computed in-process": the trait impls must stay
//! pure delegation, never re-deriving scores.

use edm::prelude::*;
use proptest::prelude::*;

/// Deterministic SplitMix64 point cloud in `[-1, 1]^d`.
fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// Two separable ±1 blobs plus a smooth regression target over the
/// same features.
fn blobs(seed: u64, n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let mut x = points(seed, n, d);
    let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    for (xi, &yi) in x.iter_mut().zip(&y) {
        for v in xi.iter_mut() {
            *v += yi * 1.2;
        }
    }
    let target: Vec<f64> =
        x.iter().map(|r| r.iter().enumerate().map(|(j, v)| v * (j as f64 + 0.5)).sum()).collect();
    (x, y, target)
}

fn assert_bitwise(name: &str, via_trait: &[f64], inherent: &[f64]) {
    assert_eq!(via_trait.len(), inherent.len(), "{name}: length changed through the trait");
    for (i, (a, b)) in via_trait.iter().zip(inherent).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: row {i} differs through the trait object ({a} vs {b})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn svc_trait_object_is_bitwise_identical(
        seed in 0u64..1_000_000,
        n in 8usize..28,
        gamma in 0.3f64..2.0,
        batch in 1usize..12,
    ) {
        let (x, y, _) = blobs(seed, n, 3);
        let model = SvcTrainer::new(SvcParams::default())
            .kernel(RbfKernel::new(gamma))
            .fit(&x, &y)
            .expect("separable blobs train");
        let queries = points(seed ^ 0xABCD, batch, 3);
        let served = (&model as &dyn Predictor).predict_batch(&queries).expect("clean batch");
        assert_bitwise("svc", &served, &model.predict_batch(&queries));
    }

    #[test]
    fn svr_trait_object_is_bitwise_identical(
        seed in 0u64..1_000_000,
        n in 8usize..28,
        gamma in 0.3f64..2.0,
        batch in 1usize..12,
    ) {
        let (x, _, target) = blobs(seed, n, 3);
        let model = SvrTrainer::new(SvrParams::default())
            .kernel(RbfKernel::new(gamma))
            .fit(&x, &target)
            .expect("svr trains");
        let queries = points(seed ^ 0x1234, batch, 3);
        let served = (&model as &dyn Predictor).predict_batch(&queries).expect("clean batch");
        assert_bitwise("svr", &served, &model.predict_batch(&queries));
    }

    #[test]
    fn ridge_trait_object_is_bitwise_identical(
        seed in 0u64..1_000_000,
        n in 6usize..40,
        lambda in 1e-6f64..10.0,
        batch in 1usize..12,
    ) {
        let (x, _, target) = blobs(seed, n, 4);
        let model = Ridge::fit(&x, &target, lambda).expect("ridge fits");
        let queries = points(seed ^ 0x9999, batch, 4);
        let served = (&model as &dyn Predictor).predict_batch(&queries).expect("clean batch");
        assert_bitwise("ridge", &served, &model.predict_batch(&queries));
    }
}
