//! Property test: Chrome Trace exports produced from arbitrary
//! span/counter workloads must be consumable by tooling. We hold the
//! exporter to the strictest local standard available — `edm-serve`'s
//! own JSON parser — and to the Trace Event Format contract Perfetto
//! relies on: a `traceEvents` array, a known `ph` vocabulary, metadata
//! naming for every referenced thread, monotone non-decreasing
//! timestamps per tid, and begin/end balance after the exporter's
//! dangling-end sanitizer.
//!
//! Trace state is process-global, so this file holds exactly one test
//! function; proptest runs its cases sequentially on one thread.

use std::collections::{BTreeMap, BTreeSet};

use edm_serve::json::{self, Value};
use proptest::prelude::*;

fn str_field<'v>(ev: &'v Value, key: &str) -> Option<&'v str> {
    ev.get(key).and_then(Value::as_str)
}

fn num_field(ev: &Value, key: &str) -> Option<f64> {
    ev.get(key).and_then(Value::as_f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chrome_trace_is_valid_and_monotone_per_tid(
        cap in 4usize..80,
        spans in 0usize..40,
        counters in 0usize..30,
    ) {
        edm_trace::set_level(edm_trace::Level::Full);
        edm_trace::set_event_capacity(cap);
        edm_trace::reset();
        edm_trace::name_thread("props-main");

        for i in 0..spans {
            let _outer = edm_trace::span("props.chrome.outer");
            if i % 3 == 0 {
                drop(edm_trace::span("props.chrome.inner"));
            }
        }
        for _ in 0..counters {
            edm_trace::counter_add("props.chrome.count", 1);
        }

        let text = edm_trace::collect().to_chrome_trace();

        // Our own strict JSON parser must accept the export verbatim.
        let doc = json::parse(&text).expect("chrome trace is valid JSON");
        let events =
            doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");

        let mut named_tids: BTreeSet<i64> = BTreeSet::new();
        let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
        let mut depth: BTreeMap<i64, u64> = BTreeMap::new();
        for ev in events {
            let ph = str_field(ev, "ph").expect("event has ph");
            let tid = num_field(ev, "tid").expect("event has tid") as i64;
            prop_assert_eq!(num_field(ev, "pid"), Some(1.0));
            match ph {
                "M" => {
                    prop_assert_eq!(str_field(ev, "name"), Some("thread_name"));
                    named_tids.insert(tid);
                }
                "B" | "E" | "C" => {
                    prop_assert!(str_field(ev, "name").is_some(), "{ph} event without name");
                    let ts = num_field(ev, "ts").expect("event has ts");
                    if let Some(prev) = last_ts.insert(tid, ts) {
                        prop_assert!(prev <= ts, "ts regressed on tid {tid}: {prev} > {ts}");
                    }
                    let d = depth.entry(tid).or_insert(0u64);
                    if ph == "B" {
                        *d += 1;
                    } else if ph == "E" {
                        // The sanitizer must have removed dangling
                        // ends, so depth never goes negative.
                        prop_assert!(*d > 0, "unbalanced E on tid {tid}");
                        *d -= 1;
                    }
                }
                other => panic!("unknown ph {other:?}"),
            }
        }
        // Every tid that recorded events carries thread_name metadata,
        // and all spans close by end of stream.
        for tid in last_ts.keys() {
            prop_assert!(named_tids.contains(tid), "tid {tid} has no thread_name metadata");
        }
        for (tid, d) in &depth {
            prop_assert_eq!(*d, 0u64, "tid {} ended at depth {}", tid, d);
        }

        edm_trace::reset();
        edm_trace::set_event_capacity(edm_trace::EVENT_CAP);
        edm_trace::set_level(edm_trace::Level::Off);
    }
}
