//! Property tests pinning the micro-batch scheduler's contract:
//! coalesced scoring is **bitwise identical** to per-request scoring,
//! and every response maps back to the request that asked for it —
//! across interleaved models, mixed per-request batch sizes, forced
//! coalescing, bounded-hold mode, and keep-alive connection reuse.
//!
//! Coalescing is made deterministic with a gate: the first submission
//! parks inside `predict_batch`, follow-up submissions queue behind it
//! (observed via `BatchScheduler::queued`), and only then does the gate
//! open — so the drain flush provably coalesced the waiters.

#![cfg(feature = "parallel")]

use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use edm::prelude::*;
use edm_serve::json::{self, Value};
use edm_serve::{BatchConfig, BatchScheduler, ModelRegistry, ServeMetrics, Server, ServerConfig};
use proptest::prelude::*;

/// Deterministic SplitMix64 stream in `[-1, 1]`.
struct Mix(u64);

impl Mix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    }
}

fn fit_plane(seed: u64) -> Ridge {
    let mut m = Mix(seed);
    let x: Vec<Vec<f64>> = (0..12).map(|_| vec![m.next_f64(), m.next_f64()]).collect();
    let y: Vec<f64> = x.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
    Ridge::fit(&x, &y, 1e-6).expect("plane fits")
}

/// Request `i`'s rows are a deterministic function of `(seed, i)`, so
/// its expected predictions are unique to it: a cross-wired response
/// cannot pass the bitwise check.
fn request_rows(seed: u64, i: usize, n_rows: usize) -> Vec<Vec<f64>> {
    let mut m = Mix(seed ^ (0x5151_0000 + i as u64));
    (0..n_rows).map(|_| vec![m.next_f64(), m.next_f64()]).collect()
}

/// Delegates to a [`Ridge`] but parks inside `predict_batch` until the
/// shared gate opens, recording each call's row count.
struct GatedRidge {
    inner: Ridge,
    gate: Arc<(Mutex<bool>, Condvar)>,
    calls: Arc<Mutex<Vec<usize>>>,
}

impl Predictor for GatedRidge {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, edm::Error> {
        let (open, cv) = &*self.gate;
        let mut open = open.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*open {
            open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(open);
        self.calls.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(xs.len());
        (&self.inner as &dyn Predictor).predict_batch(xs)
    }

    fn n_features(&self) -> usize {
        Predictor::n_features(&self.inner)
    }

    fn name(&self) -> &'static str {
        "gated-ridge"
    }
}

fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (open, cv) = &**gate;
    *open.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
    cv.notify_all();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forced coalescing across two interleaved models with mixed
    /// per-request sizes: every response is bitwise identical to
    /// scoring that request alone, and at least one flush provably
    /// carried multiple requests.
    #[test]
    fn coalesced_scoring_is_bitwise_and_correctly_routed(
        seed in 0u64..1_000_000,
        n_requests in 3usize..8,
        sizes in proptest::collection::vec(1usize..5, 8),
    ) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let calls = Arc::new(Mutex::new(Vec::new()));
        let models: Vec<(&str, Ridge)> =
            vec![("alpha", fit_plane(seed)), ("beta", fit_plane(seed ^ 0xBEEF))];
        let served: Vec<edm_serve::ServedModel> = models
            .iter()
            .map(|(_, inner)| {
                Arc::new(GatedRidge {
                    inner: inner.clone(),
                    gate: Arc::clone(&gate),
                    calls: Arc::clone(&calls),
                }) as edm_serve::ServedModel
            })
            .collect();
        let sched = Arc::new(BatchScheduler::new(BatchConfig::default()));
        let metrics = Arc::new(ServeMetrics::new());

        // One "opener" per model parks inside predict, so every later
        // submission for that model must queue.
        let mut handles = Vec::new();
        for (m, (name, _)) in models.iter().enumerate() {
            let sched = Arc::clone(&sched);
            let model = Arc::clone(&served[m]);
            let metrics = Arc::clone(&metrics);
            let rows = request_rows(seed, 100 + m, 1);
            let name = name.to_string();
            handles.push((100 + m, m, rows.clone(), std::thread::spawn(move || {
                sched.submit(&name, 1, &model, rows, &metrics)
            })));
        }
        // Wait until both openers are inside predict (queue still 0,
        // model marked active) — detectable because a probe submission
        // would park; instead poll on the gate predictor having NOT
        // been called (gate closed) plus a short settle. Simplest
        // robust signal: wait until both models report active by
        // submitting the followers and polling `queued`.
        let followers: Vec<(usize, usize, Vec<Vec<f64>>)> = (0..n_requests)
            .map(|i| (i, i % models.len(), request_rows(seed, i, sizes[i % sizes.len()])))
            .collect();
        // Give the openers a moment to reach predict before enqueueing
        // followers; correctness does not depend on this (a follower
        // that wins the race simply becomes an opener itself).
        std::thread::sleep(Duration::from_millis(20));
        for (i, m, rows) in &followers {
            let sched = Arc::clone(&sched);
            let model = Arc::clone(&served[*m]);
            let metrics = Arc::clone(&metrics);
            let rows = rows.clone();
            let name = models[*m].0.to_string();
            handles.push((*i, *m, rows.clone(), std::thread::spawn(move || {
                sched.submit(&name, 1, &model, rows, &metrics)
            })));
        }
        // Wait for every follower to park (or for the deadline — the
        // race-loser case above keeps this a lower bound, not an
        // invariant), then open the gate.
        let deadline = Instant::now() + Duration::from_secs(10);
        while sched.queued("alpha") + sched.queued("beta") < n_requests
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        open_gate(&gate);

        for (i, m, rows, handle) in handles {
            let got = handle.join().expect("submitter thread").expect("clean scoring");
            let expected = (&models[m].1 as &dyn Predictor)
                .predict_batch(&rows)
                .expect("reference scoring");
            prop_assert_eq!(got.len(), expected.len(), "request {} length", i);
            for (j, (g, e)) in got.iter().zip(&expected).enumerate() {
                prop_assert_eq!(
                    g.to_bits(), e.to_bits(),
                    "request {} row {} was mis-routed or rescored ({} vs {})", i, j, g, e
                );
            }
        }
        // With every follower parked before the gate opened, the drain
        // flush coalesced at least two requests somewhere.
        let snap = metrics.batch_snapshot();
        prop_assert!(
            snap.coalesced_batches >= 1,
            "no coalesced flush despite {} parked followers (calls: {:?})",
            n_requests, calls.lock().unwrap()
        );
    }

    /// Bounded-hold mode (`max_wait > 0`) under free-running concurrent
    /// submitters: coalescing opportunistic, correctness unconditional.
    #[test]
    fn hold_mode_scoring_stays_bitwise(
        seed in 0u64..1_000_000,
        n_requests in 2usize..7,
        wait_us in 1u64..800,
    ) {
        let inner = fit_plane(seed);
        let model: edm_serve::ServedModel = Arc::new(inner.clone());
        let sched = Arc::new(BatchScheduler::new(BatchConfig {
            max_wait: Duration::from_micros(wait_us),
            ..BatchConfig::default()
        }));
        let metrics = Arc::new(ServeMetrics::new());
        let handles: Vec<_> = (0..n_requests)
            .map(|i| {
                let sched = Arc::clone(&sched);
                let model = Arc::clone(&model);
                let metrics = Arc::clone(&metrics);
                let rows = request_rows(seed, i, 1 + i % 4);
                (i, rows.clone(), std::thread::spawn(move || {
                    sched.submit("solo", 1, &model, rows, &metrics)
                }))
            })
            .collect();
        for (i, rows, handle) in handles {
            let got = handle.join().expect("submitter thread").expect("clean scoring");
            let expected =
                (&inner as &dyn Predictor).predict_batch(&rows).expect("reference scoring");
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                prop_assert_eq!(g.to_bits(), e.to_bits(), "request {} rescored under hold", i);
            }
        }
    }
}

/// Reads one `content-length`-framed response off a keep-alive stream.
fn read_framed(stream: &mut std::net::TcpStream) -> (u16, String) {
    let mut head_bytes = Vec::new();
    let mut byte = [0u8; 1];
    while !head_bytes.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read header byte");
        assert!(n > 0, "EOF mid-headers");
        head_bytes.push(byte[0]);
    }
    let head = String::from_utf8(head_bytes).expect("utf8 headers");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (k, v) = line.split_once(':')?;
            if k.eq_ignore_ascii_case("content-length") {
                v.trim().parse().ok()
            } else {
                None
            }
        })
        .expect("content-length header");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    (status, String::from_utf8(body).expect("utf8 body"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Keep-alive reuse: a random sequence of predict requests down one
    /// persistent connection each score bitwise-identically to the
    /// in-process reference — response N answers request N.
    #[test]
    fn keep_alive_reuse_preserves_bitwise_scoring(
        seed in 0u64..1_000_000,
        sizes in proptest::collection::vec(1usize..6, 2..7),
    ) {
        let inner = fit_plane(seed);
        let mut reg = ModelRegistry::new();
        reg.register("plane", inner.clone()).expect("register");
        let server = Server::start("127.0.0.1:0", reg, ServerConfig::default()).expect("bind");
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");

        for (i, &n_rows) in sizes.iter().enumerate() {
            let rows = request_rows(seed, i, n_rows);
            let inputs: Vec<String> = rows
                .iter()
                .map(|r| format!("[{}]", r.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(", ")))
                .collect();
            let body = format!("{{\"inputs\": [{}]}}", inputs.join(", "));
            let raw = format!(
                "POST /v1/models/plane:predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(raw.as_bytes()).expect("send request");
            let (status, resp_body) = read_framed(&mut stream);
            prop_assert_eq!(status, 200, "request {} failed: {}", i, resp_body);
            let doc = json::parse(&resp_body).expect("predict response json");
            let served: Vec<f64> = doc
                .get("predictions")
                .and_then(Value::as_array)
                .expect("predictions")
                .iter()
                .map(|v| v.as_f64().expect("number"))
                .collect();
            let expected =
                (&inner as &dyn Predictor).predict_batch(&rows).expect("reference scoring");
            prop_assert_eq!(served.len(), expected.len());
            for (j, (s, e)) in served.iter().zip(&expected).enumerate() {
                prop_assert_eq!(
                    s.to_bits(), e.to_bits(),
                    "request {} row {} over reused connection ({} vs {})", i, j, s, e
                );
            }
        }
        server.shutdown();
    }
}
