//! Hot-reload smoke tests against a live server: save → serve →
//! overwrite → `POST /v1/admin/reload`, with a concurrent predict
//! storm across the swap. A reload must bump the generation without
//! producing a single 5xx on admitted work.

#![cfg(feature = "parallel")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edm::prelude::*;
use edm_serve::json::{self, Value};
use edm_serve::{ModelRegistry, ModelStore, Server, ServerConfig};

fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edm-reload-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A ridge fit of `y = slope * (x0 + x1)` — distinguishable model
/// versions from one scalar.
fn sloped_ridge(slope: f64) -> Ridge {
    let x = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
    let y: Vec<f64> = x.iter().map(|r| slope * (r[0] + r[1])).collect();
    Ridge::fit(&x, &y, 1e-9).expect("ridge fits")
}

fn start_with_store(dir: &PathBuf) -> Server {
    let mut reg = ModelRegistry::new();
    reg.register("baseline", sloped_ridge(1.0)).expect("register baseline");
    let config = ServerConfig { model_dir: Some(dir.clone()), ..ServerConfig::default() };
    Server::start("127.0.0.1:0", reg, config).expect("bind ephemeral port")
}

#[test]
fn save_serve_reload_bumps_the_generation() {
    let dir = scratch_dir("basic");
    let store = ModelStore::new(&dir);
    store.save("disk-model", &sloped_ridge(2.0)).expect("seed v1");

    let server = start_with_store(&dir);
    let addr = server.local_addr();

    // Generation 1 serves the startup scan: both models, provenance on
    // the disk one.
    let (status, head, body) = post(addr, "/v1/models/disk-model:predict", r#"{"inputs": [[1, 1]]}"#);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(header_value(&head, "x-model-generation"), Some("1"));
    let doc = json::parse(&body).expect("json");
    let v1 = doc.get("predictions").and_then(Value::as_array).expect("preds")[0]
        .as_f64()
        .expect("number");
    assert!((v1 - 4.0).abs() < 1e-6, "slope-2 model scores 2*(1+1), got {v1}");

    // Overwrite the container on disk and reload.
    store.save("disk-model", &sloped_ridge(3.0)).expect("drop v2");
    let (status, _, body) = post(addr, "/v1/admin/reload", "");
    assert_eq!(status, 200, "reload body: {body}");
    let doc = json::parse(&body).expect("reload json");
    assert_eq!(doc.get("generation").and_then(Value::as_f64), Some(2.0));

    // Generation 2 serves the new fit; the baseline survives.
    let (status, head, body) = post(addr, "/v1/models/disk-model:predict", r#"{"inputs": [[1, 1]]}"#);
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "x-model-generation"), Some("2"));
    let doc = json::parse(&body).expect("json");
    let v2 = doc.get("predictions").and_then(Value::as_array).expect("preds")[0]
        .as_f64()
        .expect("number");
    assert!((v2 - 6.0).abs() < 1e-6, "slope-3 model scores 3*(1+1), got {v2}");
    let (status, _, body) = get(addr, "/v1/models");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("models json");
    let models = doc.get("models").and_then(Value::as_array).expect("models");
    let names: Vec<&str> =
        models.iter().filter_map(|m| m.get("name").and_then(Value::as_str)).collect();
    assert_eq!(names, vec!["baseline", "disk-model"]);
    let disk = models.iter().find(|m| m.get("name").and_then(Value::as_str) == Some("disk-model"));
    let disk = disk.expect("disk-model listed");
    assert!(disk.get("loaded_from").and_then(Value::as_str).is_some());
    assert!(disk.get("checksum").and_then(Value::as_f64).is_some());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn train_endpoint_persists_and_serves_immediately() {
    let dir = scratch_dir("train");
    let server = start_with_store(&dir);
    let addr = server.local_addr();

    let body = r#"{"family": "ridge", "inputs": [[0, 0], [1, 0], [0, 1], [1, 1]], "targets": [0, 5, 5, 10]}"#;
    let (status, _, resp) = post(addr, "/v1/models/fresh:train", body);
    assert_eq!(status, 200, "train body: {resp}");
    let doc = json::parse(&resp).expect("train json");
    assert_eq!(doc.get("generation").and_then(Value::as_f64), Some(2.0));
    let saved_to = doc.get("saved_to").and_then(Value::as_str).expect("persisted");
    assert!(saved_to.ends_with("fresh.edm"), "saved to {saved_to}");
    assert!(dir.join("fresh.edm").is_file(), "container written to the model dir");

    let (status, head, body) = post(addr, "/v1/models/fresh:predict", r#"{"inputs": [[1, 1]]}"#);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(header_value(&head, "x-model-generation"), Some("2"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn predict_storm_across_reloads_sees_no_5xx() {
    let dir = scratch_dir("storm");
    let store = ModelStore::new(&dir);
    store.save("disk-model", &sloped_ridge(2.0)).expect("seed v1");
    let server = start_with_store(&dir);
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let (status, head, _) =
                        post(addr, "/v1/models/disk-model:predict", r#"{"inputs": [[0.5, 0.5]]}"#);
                    let generation: u64 = header_value(&head, "x-model-generation")
                        .and_then(|v| v.parse().ok())
                        .expect("every predict response carries its generation");
                    statuses.push((status, generation));
                }
                statuses
            })
        })
        .collect();

    // Swap generations under the storm: alternate two model versions
    // through the directory with a reload after each overwrite.
    let mut last_generation = 1.0;
    for round in 0..5u32 {
        let slope = if round % 2 == 0 { 3.0 } else { 2.0 };
        store.save("disk-model", &sloped_ridge(slope)).expect("overwrite");
        let (status, _, body) = post(addr, "/v1/admin/reload", "");
        assert_eq!(status, 200, "reload under load: {body}");
        let doc = json::parse(&body).expect("reload json");
        last_generation = doc.get("generation").and_then(Value::as_f64).expect("generation");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(last_generation, 6.0, "five reloads on top of generation 1");

    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    let mut max_generation = 0u64;
    for client in clients {
        for (status, generation) in client.join().expect("client thread") {
            assert!(status < 500, "predict failed with {status} during a reload");
            assert_eq!(status, 200);
            max_generation = max_generation.max(generation);
            total += 1;
        }
    }
    assert!(total > 0, "storm actually scored something");
    assert!(max_generation > 1, "storm observed a post-reload generation");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
