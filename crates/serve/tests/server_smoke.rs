//! End-to-end tests against a live server on an ephemeral port: the
//! scoring round trip, every error status, OpenMetrics framing,
//! deterministic queue-full backpressure, and graceful shutdown.
//!
//! Clients are raw `std::net::TcpStream`s writing HTTP/1.1 by hand —
//! the server must interoperate with the wire format, not just with
//! its own parser.

#![cfg(feature = "parallel")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use edm::prelude::*;
use edm_serve::json::{self, Value};
use edm_serve::{AdmissionTier, ModelRegistry, Server, ServerConfig};

/// Sends raw bytes, reads to EOF, and splits the response into
/// (status, headers, body). The server keeps connections alive by
/// default, so the request must carry `connection: close` (as `get` /
/// `post` do) or be one the server answers with a close (malformed,
/// 413, accept-time 503) — otherwise this read parks until the idle
/// timeout.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Reads exactly one response off a keep-alive stream using its
/// `content-length` framing (byte-at-a-time headers; fine for tests).
fn read_framed(stream: &mut TcpStream) -> (u16, String, String) {
    let mut head_bytes = Vec::new();
    let mut byte = [0u8; 1];
    while !head_bytes.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read header byte");
        assert!(n > 0, "EOF mid-headers after {:?}", String::from_utf8_lossy(&head_bytes));
        head_bytes.push(byte[0]);
    }
    let head =
        String::from_utf8(head_bytes[..head_bytes.len() - 4].to_vec()).expect("utf8 headers");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (k, v) = line.split_once(':')?;
            if k.eq_ignore_ascii_case("content-length") {
                v.trim().parse().ok()
            } else {
                None
            }
        })
        .unwrap_or_else(|| panic!("no content-length in {head:?}"));
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    let status: u16 =
        head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("parseable status line");
    (status, head, String::from_utf8(body).expect("utf8 body"))
}

fn training_data() -> (Vec<Vec<f64>>, Vec<f64>) {
    let x = vec![
        vec![0.0, 0.0],
        vec![0.2, 0.1],
        vec![0.1, 0.3],
        vec![2.0, 2.1],
        vec![2.2, 1.9],
        vec![1.9, 2.2],
    ];
    let y = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
    (x, y)
}

fn start_default() -> (Server, Ridge) {
    let (x, y) = training_data();
    let ridge = Ridge::fit(&x, &y, 0.05).expect("ridge fits");
    let mut reg = ModelRegistry::new();
    reg.register("ridge", ridge.clone()).expect("register ridge");
    reg.register(
        "svc",
        SvcTrainer::new(SvcParams::default())
            .kernel(RbfKernel::new(0.8))
            .fit(&x, &y)
            .expect("svc trains"),
    )
    .expect("register svc");
    let server =
        Server::start("127.0.0.1:0", reg, ServerConfig::default()).expect("bind ephemeral port");
    (server, ridge)
}

#[test]
fn healthz_models_and_predict_round_trip() {
    let (server, ridge) = start_default();
    let addr = server.local_addr();

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, head, body) = get(addr, "/v1/models");
    assert_eq!(status, 200);
    assert!(head.contains("content-type: application/json"), "head was {head}");
    let doc = json::parse(&body).expect("valid JSON listing");
    let models = doc.get("models").and_then(Value::as_array).expect("models array");
    let names: Vec<&str> =
        models.iter().map(|m| m.get("name").and_then(Value::as_str).expect("name")).collect();
    assert_eq!(names, vec!["ridge", "svc"], "listing must be name-ordered");

    let queries = vec![vec![0.15, 0.2], vec![2.05, 2.0]];
    let expected = ridge.predict_batch(&queries);
    let (status, _, body) =
        post(addr, "/v1/models/ridge:predict", "{\"inputs\": [[0.15, 0.2], [2.05, 2.0]]}");
    assert_eq!(status, 200, "predict failed: {body}");
    let doc = json::parse(&body).expect("valid predict response");
    assert_eq!(doc.get("model").and_then(Value::as_str), Some("ridge"));
    assert_eq!(doc.get("family").and_then(Value::as_str), Some("ridge"));
    assert_eq!(doc.get("count").and_then(Value::as_f64), Some(2.0));
    let served: Vec<f64> = doc
        .get("predictions")
        .and_then(Value::as_array)
        .expect("predictions")
        .iter()
        .map(|v| v.as_f64().expect("number"))
        .collect();
    assert_eq!(served.len(), expected.len());
    for (s, e) in served.iter().zip(&expected) {
        assert_eq!(s.to_bits(), e.to_bits(), "HTTP round trip changed a prediction");
    }
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (server, ridge) = start_default();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");

    // Three requests down the same socket, mixing GET and POST.
    let expected = ridge.predict_batch(&[vec![0.15, 0.2]]);
    for i in 0..3 {
        let body = "{\"inputs\": [[0.15, 0.2]]}";
        let raw = format!(
            "POST /v1/models/ridge:predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).expect("send request");
        let (status, head, resp_body) = read_framed(&mut stream);
        assert_eq!(status, 200, "request {i} on the shared connection: {resp_body}");
        assert!(head.contains("connection: keep-alive"), "request {i} head: {head}");
        let doc = json::parse(&resp_body).expect("predict response json");
        let served = doc.get("predictions").and_then(Value::as_array).expect("predictions")[0]
            .as_f64()
            .expect("number");
        assert_eq!(served.to_bits(), expected[0].to_bits(), "request {i} changed the score");
    }

    // `connection: close` is honored: final framed response, then EOF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .expect("send final request");
    let (status, head, body) = read_framed(&mut stream);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    assert!(head.contains("connection: close"), "final head: {head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "server must close after connection: close");
    server.shutdown();
}

#[test]
fn request_cap_closes_the_connection() {
    let (x, y) = training_data();
    let mut reg = ModelRegistry::new();
    reg.register("ridge", Ridge::fit(&x, &y, 0.05).expect("fits")).expect("register");
    let config = ServerConfig { max_requests_per_conn: 2, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", reg, config).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    let raw = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";
    stream.write_all(raw).expect("first request");
    let (_, head1, _) = read_framed(&mut stream);
    assert!(head1.contains("connection: keep-alive"), "head was {head1}");
    stream.write_all(raw).expect("second request");
    let (_, head2, _) = read_framed(&mut stream);
    assert!(head2.contains("connection: close"), "cap reached, head was {head2}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "server must close at the per-connection cap");
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let (x, y) = training_data();
    let mut reg = ModelRegistry::new();
    reg.register("ridge", Ridge::fit(&x, &y, 0.05).expect("fits")).expect("register");
    let config =
        ServerConfig { idle_timeout: Duration::from_millis(300), ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", reg, config).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").expect("request");
    let (status, _, _) = read_framed(&mut stream);
    assert_eq!(status, 200);
    // Send nothing more: the server must close the idle connection on
    // its own well before the client's 20 s read timeout.
    let t0 = Instant::now();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "no bytes expected after the idle close");
    assert!(t0.elapsed() < Duration::from_secs(10), "idle reap took {:?}", t0.elapsed());
    server.shutdown();
}

#[test]
fn error_statuses_over_the_wire() {
    let (server, _) = start_default();
    let addr = server.local_addr();

    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/v1/models/ghost:predict").0, 405, "GET on :predict");
    assert_eq!(post(addr, "/v1/models/ghost:predict", "{}").0, 404, "unknown model");
    assert_eq!(post(addr, "/v1/models/ridge:predict", "not json").0, 400);
    assert_eq!(post(addr, "/v1/models/ridge:predict", "{\"inputs\": [[1, 2, 3]]}").0, 400);
    assert_eq!(post(addr, "/healthz", "").0, 405);
    let (status, _, body) = exchange(addr, "BOGUS-REQUEST-LINE\r\n\r\n");
    assert_eq!(status, 400, "malformed request line; body {body}");
    server.shutdown();
}

#[test]
fn oversized_bodies_get_413() {
    let (x, y) = training_data();
    let mut reg = ModelRegistry::new();
    reg.register("ridge", Ridge::fit(&x, &y, 0.05).expect("fits")).expect("register");
    let config = ServerConfig { max_body_bytes: 256, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", reg, config).expect("bind");
    let big = format!("{{\"inputs\": [[{}]]}}", "1.0, ".repeat(200) + "1.0");
    let (status, _, _) = post(server.local_addr(), "/v1/models/ridge:predict", &big);
    assert_eq!(status, 413);
    server.shutdown();
}

#[test]
fn metrics_endpoint_speaks_openmetrics() {
    let (server, _) = start_default();
    let addr = server.local_addr();
    // Generate some traffic first so counters exist either way.
    let _ = get(addr, "/healthz");
    let (status, head, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("content-type: application/openmetrics-text"),
        "metrics content-type missing: {head}"
    );
    assert!(
        body.ends_with("# EOF\n"),
        "OpenMetrics framing lost: {:?}",
        &body[body.len().saturating_sub(40)..]
    );
    server.shutdown();
}

/// A predictor that parks inside `predict_batch` until released, so
/// the test controls exactly when the single worker is busy.
struct GatedPredictor {
    started: Mutex<mpsc::Sender<()>>,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

/// Opens the gate on drop — including during a panic unwind. Without
/// this, a failed assertion would leave the worker parked inside
/// `predict_batch` and `Server::drop` would deadlock joining it.
struct GateGuard(Arc<(Mutex<bool>, Condvar)>);

impl GateGuard {
    fn open(&self) {
        let (open, cv) = &*self.0;
        *open.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
    }
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        self.open();
    }
}

impl Predictor for GatedPredictor {
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, edm::Error> {
        // Later requests may arrive after the test dropped the
        // receiver; the signal only matters for the first one.
        let _ = self.started.lock().unwrap_or_else(std::sync::PoisonError::into_inner).send(());
        let (open, cv) = &*self.gate;
        let mut open = open.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*open {
            open = cv.wait(open).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        Ok(vec![0.0; xs.len()])
    }

    fn n_features(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "gated"
    }
}

/// Starts a gated server and parks connection A inside the single
/// worker, returning everything needed to drive the scenario further.
#[allow(clippy::type_complexity)]
fn park_one_request(
    config: ServerConfig,
) -> (Server, GateGuard, std::thread::JoinHandle<(u16, String, String)>) {
    let (started_tx, started_rx) = mpsc::channel();
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut reg = ModelRegistry::new();
    reg.register(
        "slow",
        GatedPredictor { started: Mutex::new(started_tx), gate: Arc::clone(&gate) },
    )
    .expect("register");
    let guard = GateGuard(gate);
    let server = Server::start("127.0.0.1:0", reg, config).expect("bind");
    let addr = server.local_addr();
    let handle_a =
        std::thread::spawn(move || post(addr, "/v1/models/slow:predict", "{\"inputs\": [[1]]}"));
    started_rx.recv_timeout(Duration::from_secs(20)).expect("worker picked up A");
    (server, guard, handle_a)
}

#[test]
fn queue_full_gets_503_with_retry_after() {
    let config = ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() };
    let (server, guard, handle_a) = park_one_request(config);
    let addr = server.local_addr();

    // Connection B fills the single queue slot. Admission happens at
    // accept time, so once `queue_len` reports it the slot is gone.
    let handle_b =
        std::thread::spawn(move || post(addr, "/v1/models/slow:predict", "{\"inputs\": [[2]]}"));
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.queue_len() < 1 {
        assert!(Instant::now() < deadline, "B was never admitted to the queue");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Connection C must be refused, not hung.
    let (status, head, _) = get(addr, "/healthz");
    assert_eq!(status, 503, "third connection should hit backpressure");
    assert!(head.contains("\r\nretry-after: 1"), "503 must carry retry-after: {head}");

    // Open the gate: A and B drain normally.
    guard.open();
    let (status_a, _, _) = handle_a.join().expect("client A");
    let (status_b, _, _) = handle_b.join().expect("client B");
    assert_eq!((status_a, status_b), (200, 200), "queued work must complete after release");
    server.shutdown();
}

#[test]
fn tier_quota_isolates_a_hot_model() {
    let (started_tx, started_rx) = mpsc::channel();
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let (x, y) = training_data();
    let mut reg = ModelRegistry::new();
    reg.register_tiered(
        "slow",
        GatedPredictor { started: Mutex::new(started_tx), gate: Arc::clone(&gate) },
        AdmissionTier::new("hot", 1),
    )
    .expect("register tiered");
    reg.register("ridge", Ridge::fit(&x, &y, 0.05).expect("fits")).expect("register ridge");
    let guard = GateGuard(gate);
    let config = ServerConfig { workers: 4, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", reg, config).expect("bind");
    let addr = server.local_addr();

    // A occupies the hot model's single quota unit (parked inside
    // predict, holding its TierPermit)...
    let handle_a =
        std::thread::spawn(move || post(addr, "/v1/models/slow:predict", "{\"inputs\": [[1]]}"));
    started_rx.recv_timeout(Duration::from_secs(20)).expect("worker picked up A");

    // ...so a second request at the hot model is refused by the tier
    // even though workers are plainly free...
    let (status_b, head_b, _) = post(addr, "/v1/models/slow:predict", "{\"inputs\": [[2]]}");
    assert_eq!(status_b, 503, "saturated tier must refuse");
    assert!(head_b.contains("\r\nretry-after: 1"), "tier Retry-After missing: {head_b}");

    // ...while the *other* model keeps serving: the hot model cannot
    // starve the registry.
    let (status_c, _, body_c) =
        post(addr, "/v1/models/ridge:predict", "{\"inputs\": [[0.1, 0.2]]}");
    assert_eq!(status_c, 200, "untiered model must keep serving: {body_c}");

    guard.open();
    assert_eq!(handle_a.join().expect("client A").0, 200, "quota'd work completes");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let config = ServerConfig { workers: 1, queue_capacity: 4, ..ServerConfig::default() };
    let (server, guard, handle_a) = park_one_request(config);
    let addr = server.local_addr();

    // Connection B is admitted to the queue behind the parked worker.
    let handle_b =
        std::thread::spawn(move || post(addr, "/v1/models/slow:predict", "{\"inputs\": [[2]]}"));
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.queue_len() < 1 {
        assert!(Instant::now() < deadline, "B was never admitted to the queue");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shutdown must block on the in-flight work, not abandon it.
    let shutdown_handle = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    assert!(!shutdown_handle.is_finished(), "shutdown must wait for admitted connections");

    guard.open();
    shutdown_handle.join().expect("shutdown thread");
    let (status_a, _, _) = handle_a.join().expect("client A");
    let (status_b, _, _) = handle_b.join().expect("client B");
    assert_eq!(
        (status_a, status_b),
        (200, 200),
        "connections admitted before shutdown must still be answered"
    );
}

#[test]
fn dropping_an_idle_server_returns_promptly() {
    let (server, _) = start_default();
    let addr = server.local_addr();
    assert_eq!(get(addr, "/healthz").0, 200);
    let t0 = Instant::now();
    drop(server);
    // Drop runs the same drain path as `shutdown()`; with no admitted
    // work it must come back quickly instead of parking on a join.
    assert!(t0.elapsed() < Duration::from_secs(10), "idle drop took {:?}", t0.elapsed());
}
