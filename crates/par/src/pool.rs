//! Fixed-size worker pool with a bounded job queue.
//!
//! The scoped primitives in the crate root ([`crate::for_each_row`],
//! [`crate::map_indexed`]) fork and join around one data-parallel loop.
//! Long-lived services — the `edm-serve` HTTP front end in particular —
//! instead need a *persistent* pool that accepts independent jobs over
//! time, rejects work when a bounded queue is full (backpressure
//! instead of unbounded memory growth), and drains cleanly on
//! shutdown. [`WorkerPool`] provides exactly that, and because it lives
//! in `edm-par` it is the one sanctioned home for those threads: the
//! workspace `direct-thread-spawn` lint bans `thread::spawn` everywhere
//! else.
//!
//! Admission is two-phase so callers never lose the resources captured
//! by a rejected closure: [`WorkerPool::try_reserve`] claims a queue
//! slot (or reports queue-full immediately), and the returned
//! [`Permit`] then moves the job in. A caller holding a connection can
//! therefore decide to send `503 Service Unavailable` *before*
//! surrendering the socket to a closure.
//!
//! Jobs are isolated: a panicking job is caught and counted, and the
//! worker thread survives to run the next job. [`WorkerPool::shutdown`]
//! (also invoked on drop) stops admission, lets the workers finish
//! every job already queued, and joins them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::sync::{DbgCondvar, DbgMutex, DbgMutexGuard};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    /// Slots claimed by outstanding [`Permit`]s but not yet enqueued.
    reserved: usize,
    shutdown: bool,
}

struct Inner {
    state: DbgMutex<State>,
    not_empty: DbgCondvar,
    capacity: usize,
    panics: AtomicU64,
}

impl Inner {
    /// Locks the state, recovering from poisoning (a panic can only
    /// poison the lock from a caller's `try_reserve`/`execute` path;
    /// the queue itself is always consistent between operations).
    fn lock(&self) -> DbgMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A fixed set of worker threads draining a bounded FIFO job queue.
///
/// See the [module docs](self) for the admission protocol and
/// shutdown semantics.
pub struct WorkerPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

/// A claimed queue slot, returned by [`WorkerPool::try_reserve`].
///
/// Call [`Permit::execute`] to enqueue a job into the slot, or drop the
/// permit to release the slot unused.
pub struct Permit<'a> {
    inner: &'a Inner,
    armed: bool,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads behind a queue holding at
    /// most `queue_capacity` pending jobs. Both are clamped to ≥ 1.
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        let inner = Arc::new(Inner {
            state: DbgMutex::new(
                "par.pool.state",
                State { queue: VecDeque::new(), reserved: 0, shutdown: false },
            ),
            not_empty: DbgCondvar::new(),
            capacity: queue_capacity.max(1),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    // Label this thread's timeline ring so Chrome-trace
                    // exports name the track after the pool worker.
                    edm_trace::name_thread(&format!("pool-worker-{w}"));
                    worker_loop(&inner)
                })
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// Claims a queue slot if one is free and the pool is accepting
    /// work; returns `None` when the queue (counting outstanding
    /// permits) is full or the pool is shutting down.
    pub fn try_reserve(&self) -> Option<Permit<'_>> {
        let mut st = self.inner.lock();
        if st.shutdown || st.queue.len() + st.reserved >= self.inner.capacity {
            return None;
        }
        st.reserved += 1;
        Some(Permit { inner: &self.inner, armed: true })
    }

    /// Number of jobs currently waiting in the queue, including slots
    /// claimed by outstanding permits.
    pub fn queue_len(&self) -> usize {
        let st = self.inner.lock();
        st.queue.len() + st.reserved
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Number of jobs that panicked (each was caught; the worker
    /// survived).
    pub fn panic_count(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }

    /// Stops admission, drains every job already queued, and joins the
    /// worker threads. Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.inner.lock();
            st.shutdown = true;
        }
        self.inner.not_empty.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job is already gone;
            // nothing to propagate beyond the panic counter.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("capacity", &self.inner.capacity)
            .field("queue_len", &self.queue_len())
            .finish()
    }
}

impl Permit<'_> {
    /// Enqueues `job` into the reserved slot and wakes a worker.
    pub fn execute<F: FnOnce() + Send + 'static>(mut self, job: F) {
        let mut st = self.inner.lock();
        st.reserved -= 1;
        st.queue.push_back(Box::new(job));
        self.armed = false;
        drop(st);
        self.inner.not_empty.notify_one();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self.inner.lock();
            st.reserved -= 1;
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = inner.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.not_empty.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            inner.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_all_jobs_and_drains_on_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(3, 64);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            let permit = pool.try_reserve().expect("queue should have room");
            permit.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn rejects_when_queue_is_full() {
        let mut pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();

        // Occupy the single worker…
        pool.try_reserve().expect("empty pool").execute(move || {
            started_tx.send(()).expect("test channel");
            block_rx.recv().expect("test channel");
        });
        started_rx.recv().expect("worker should start the job");
        // …fill the single queue slot…
        let (block2_tx, block2_rx) = mpsc::channel::<()>();
        pool.try_reserve().expect("one queue slot").execute(move || {
            block2_rx.recv().expect("test channel");
        });
        // …and the next reservation must be refused.
        assert!(pool.try_reserve().is_none(), "queue-full must reject");
        assert_eq!(pool.queue_len(), 1);

        block_tx.send(()).expect("test channel");
        block2_tx.send(()).expect("test channel");
        pool.shutdown();
    }

    #[test]
    fn dropped_permit_releases_its_slot() {
        let pool = WorkerPool::new(1, 1);
        let permit = pool.try_reserve().expect("empty pool");
        assert!(pool.try_reserve().is_none(), "slot is reserved");
        drop(permit);
        assert!(pool.try_reserve().is_some(), "slot came back");
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let mut pool = WorkerPool::new(1, 8);
        pool.try_reserve().expect("room").execute(|| panic!("job panic"));
        let (tx, rx) = mpsc::channel::<u32>();
        pool.try_reserve().expect("room").execute(move || {
            tx.send(7).expect("test channel");
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
        assert_eq!(pool.panic_count(), 1);
        pool.shutdown();
    }

    #[test]
    fn no_admission_after_shutdown() {
        let mut pool = WorkerPool::new(1, 4);
        pool.shutdown();
        assert!(pool.try_reserve().is_none());
    }
}
