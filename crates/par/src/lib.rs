//! Deterministic parallel primitives for the edm workspace.
//!
//! All heavy kernel-compute loops (Gram matrices, matrix products,
//! per-tree forest training, k-means sweeps, CV folds, Q-row fills)
//! funnel through the two primitives here:
//!
//! - [`for_each_row`] — run a closure over the rows of a flat buffer,
//!   each row visited exactly once by exactly one thread;
//! - [`map_indexed`] — build a `Vec<T>` where slot `i` is produced by
//!   `f(i)`, in parallel, returned in index order.
//!
//! Long-lived services (the `edm-serve` HTTP front end) use the
//! persistent bounded [`pool::WorkerPool`] instead of these fork-join
//! primitives; see that module's docs for its admission protocol.
//!
//! **Determinism guarantee.** Work is *distributed* dynamically (a
//! shared work-list hands out the next index to whichever thread is
//! free) but each unit writes only its own disjoint output slot and
//! performs its floating-point reduction in the same order as the
//! serial loop. Results are therefore bitwise identical to the serial
//! path — no atomics, no tree reductions, no order-dependent sums.
//! Property tests in `edm-kernels`, `edm-linalg`, and `edm-svm` pin
//! this down.
//!
//! With the `parallel` feature disabled (the workspace forwards
//! `--no-default-features` down to this crate), both primitives run the
//! plain serial loop and no threads are ever spawned.

#![forbid(unsafe_code)]

#[cfg(feature = "parallel")]
pub mod pool;

/// Debug-checked synchronization wrappers (re-export of [`edm_sync`]).
///
/// `edm-par` is the workspace's sanctioned concurrency surface, so
/// library code takes its locks from here: [`sync::DbgMutex`],
/// [`sync::DbgRwLock`], and [`sync::DbgCondvar`] behave exactly like
/// their `std::sync` counterparts in release builds (one relaxed
/// atomic load of overhead) but run lock-order and held-too-long
/// checks in debug builds or under `EDM_SYNC_CHECK=1`. See the
/// `edm-sync` crate docs for the checker's semantics and knobs.
pub use edm_sync as sync;

#[cfg(feature = "parallel")]
use std::sync::Mutex;

/// Number of worker threads the primitives will use.
///
/// Reads the `EDM_NUM_THREADS` environment variable if set (useful for
/// benchmarking scaling curves), otherwise the machine's available
/// parallelism. Always at least 1. A value of `0` is clamped to 1 and
/// a non-numeric value falls back to the host parallelism — both with
/// a one-shot warning on stderr rather than a silent fallback. With
/// the `parallel` feature disabled this is constantly 1.
pub fn num_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        match std::env::var("EDM_NUM_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) => {
                    static WARN_ZERO: std::sync::Once = std::sync::Once::new();
                    WARN_ZERO.call_once(|| {
                        eprintln!("edm-par: EDM_NUM_THREADS=0 is invalid; clamping to 1 thread");
                    });
                    1
                }
                Ok(n) => n,
                Err(_) => {
                    static WARN_PARSE: std::sync::Once = std::sync::Once::new();
                    WARN_PARSE.call_once(|| {
                        eprintln!(
                            "edm-par: ignoring non-numeric EDM_NUM_THREADS value {v:?}; \
                             using host parallelism"
                        );
                    });
                    host_parallelism()
                }
            },
            Err(_) => host_parallelism(),
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

#[cfg(feature = "parallel")]
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// True when the `parallel` feature is compiled in.
pub const fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Per-worker telemetry: chunk count and busy time, recorded into the
/// `edm-trace` registry when the worker retires (`par.worker.jobs` /
/// `par.worker.busy_ns` histograms — one sample per worker thread —
/// and the `par.jobs` counter). When tracing is off (or compiled out)
/// the cost is one relaxed atomic load per worker, and the timed and
/// untimed paths run the exact same job closure, so telemetry can
/// never perturb results.
#[cfg(feature = "parallel")]
struct WorkerProbe {
    enabled: bool,
    jobs: u64,
    busy: std::time::Duration,
}

#[cfg(feature = "parallel")]
impl WorkerProbe {
    fn start() -> Self {
        WorkerProbe { enabled: edm_trace::enabled(), jobs: 0, busy: std::time::Duration::ZERO }
    }

    /// Names this worker's timeline ring (`par-worker-<w>`) so
    /// Chrome-trace exports label the track; free when tracing is off.
    fn name(&self, w: usize) {
        if self.enabled {
            edm_trace::name_thread(&format!("par-worker-{w}"));
        }
    }

    #[inline]
    fn job(&mut self, work: impl FnOnce()) {
        if self.enabled {
            let t0 = std::time::Instant::now();
            work();
            self.busy += t0.elapsed();
            self.jobs += 1;
        } else {
            work();
        }
    }

    fn finish(self) {
        if self.enabled && self.jobs > 0 {
            edm_trace::counter_add("par.jobs", self.jobs);
            edm_trace::record("par.worker.jobs", self.jobs as f64);
            edm_trace::record("par.worker.busy_ns", self.busy.as_nanos() as f64);
        }
    }
}

/// Minimum element count before [`for_each_row`] / [`for_each_chunk`]
/// spawn threads. Below this, per-element work (a kernel evaluation, a
/// dot-product step) is cheaper than thread startup, so the serial loop
/// wins. [`map_indexed`] is exempt: its units are coarse by convention
/// (a tree, a CV fold, a Q-row fill).
#[cfg(feature = "parallel")]
const PAR_MIN_ELEMS: usize = 4096;

/// Applies `f(row_index, row)` to each `row_len`-sized row of `data`.
///
/// Rows are handed out dynamically to worker threads; each row is
/// visited exactly once. `f` must confine its writes to the row it was
/// given, which the `&mut` row slice enforces. Falls back to a serial
/// loop when the `parallel` feature is off, only one thread is
/// available, or there are fewer than two rows.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len` (with
/// `row_len == 0` requiring `data` to be empty). A panic inside `f` on
/// any thread propagates to the caller.
pub fn for_each_row<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if row_len == 0 {
        assert!(data.is_empty(), "row_len is 0 but data is non-empty");
        return;
    }
    assert_eq!(data.len() % row_len, 0, "data length not a multiple of row_len");

    #[cfg(feature = "parallel")]
    {
        let rows = data.len() / row_len;
        let workers = num_threads().min(rows);
        if workers > 1 && data.len() >= PAR_MIN_ELEMS {
            let jobs = Mutex::new(data.chunks_mut(row_len).enumerate());
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (jobs, f) = (&jobs, &f);
                    s.spawn(move || {
                        let mut probe = WorkerProbe::start();
                        probe.name(w);
                        loop {
                            let job = jobs.lock().expect("worker panicked holding job lock").next();
                            match job {
                                Some((i, row)) => probe.job(|| f(i, row)),
                                None => break,
                            }
                        }
                        probe.finish();
                    });
                }
            });
            return;
        }
    }

    for (i, row) in data.chunks_mut(row_len).enumerate() {
        f(i, row);
    }
}

/// Applies `f(chunk_index, chunk)` to consecutive `chunk_len`-sized
/// pieces of `data` (the final chunk may be shorter). Chunk `c` starts
/// at flat offset `c * chunk_len`.
///
/// Unlike [`for_each_row`] the buffer need not divide evenly, which
/// suits 1-D outputs such as kernel score rows.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty. A panic
/// inside `f` on any thread propagates to the caller.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");

    #[cfg(feature = "parallel")]
    {
        let chunks = data.len().div_ceil(chunk_len);
        let workers = num_threads().min(chunks);
        if workers > 1 && data.len() >= PAR_MIN_ELEMS {
            let jobs = Mutex::new(data.chunks_mut(chunk_len).enumerate());
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (jobs, f) = (&jobs, &f);
                    s.spawn(move || {
                        let mut probe = WorkerProbe::start();
                        probe.name(w);
                        loop {
                            let job = jobs.lock().expect("worker panicked holding job lock").next();
                            match job {
                                Some((i, chunk)) => probe.job(|| f(i, chunk)),
                                None => break,
                            }
                        }
                        probe.finish();
                    });
                }
            });
            return;
        }
    }

    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        f(i, chunk);
    }
}

/// Applies `f(band_index, band)` to consecutive bands of `band_rows`
/// whole `row_len`-sized rows of `data` (the final band may hold fewer
/// rows). Band `b` starts at row `b * band_rows`.
///
/// This is the coarse-grained counterpart of [`for_each_row`] for
/// cache-blocked kernels: handing a worker a *band* of rows instead of
/// one row amortizes dispatch over `band_rows` rows of work and lets
/// the closure reuse whatever inputs it streams across the whole band.
/// Each band is visited exactly once by exactly one thread, so the
/// determinism guarantee of [`for_each_row`] carries over unchanged.
///
/// # Panics
///
/// Panics if `band_rows == 0`, or if `data.len()` is not a multiple of
/// `row_len` (with `row_len == 0` requiring `data` to be empty). A
/// panic inside `f` on any thread propagates to the caller.
pub fn for_each_band<T, F>(data: &mut [T], row_len: usize, band_rows: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(band_rows > 0, "band_rows must be positive");
    if row_len == 0 {
        assert!(data.is_empty(), "row_len is 0 but data is non-empty");
        return;
    }
    assert_eq!(data.len() % row_len, 0, "data length not a multiple of row_len");
    for_each_chunk(data, row_len * band_rows, f);
}

/// Builds a `Vec` whose `i`-th element is `f(i)`, computing the slots
/// in parallel but returning them in index order.
///
/// Falls back to a serial loop under the same conditions as
/// [`for_each_row`].
///
/// # Panics
///
/// A panic inside `f` on any thread propagates to the caller.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(n);
        if workers > 1 {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            let jobs = Mutex::new(out.chunks_mut(1).enumerate());
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (jobs, f) = (&jobs, &f);
                    s.spawn(move || {
                        let mut probe = WorkerProbe::start();
                        probe.name(w);
                        loop {
                            let job = jobs.lock().expect("worker panicked holding job lock").next();
                            match job {
                                Some((i, slot)) => probe.job(|| slot[0] = Some(f(i))),
                                None => break,
                            }
                        }
                        probe.finish();
                    });
                }
            });
            return out
                .into_iter()
                .map(|v| v.expect("every slot filled by exactly one worker"))
                .collect();
        }
    }

    (0..n).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_serial_exactly() {
        // Big enough to clear PAR_MIN_ELEMS so the threaded path runs.
        let cols = 65;
        let rows = 80;
        let mut par = vec![0.0; rows * cols];
        for_each_row(&mut par, cols, |i, row| {
            for (j, v) in row.iter_mut().enumerate() {
                // Non-associative accumulation: order inside the row matters.
                let mut acc = 0.0f64;
                for k in 0..16 {
                    acc += ((i * 31 + j * 7 + k) as f64).sin() * 1e-3;
                }
                *v = acc;
            }
        });
        let mut ser = vec![0.0; rows * cols];
        for (i, row) in ser.chunks_mut(cols).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for k in 0..16 {
                    acc += ((i * 31 + j * 7 + k) as f64).sin() * 1e-3;
                }
                *v = acc;
            }
        }
        assert_eq!(
            par.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            ser.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ragged_chunks_cover_everything_once() {
        let mut data = vec![0.0; 5003];
        for_each_chunk(&mut data, 512, |c, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v += (c * 512 + off) as f64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn bands_cover_every_row_once_with_ragged_tail() {
        // 11 rows of 512 in bands of 4: bands of 4, 4, 3 rows.
        let cols = 512;
        let rows = 11;
        let mut data = vec![0.0; rows * cols];
        for_each_band(&mut data, cols, 4, |b, band| {
            assert_eq!(band.len() % cols, 0);
            let first_row = b * 4;
            for (dr, row) in band.chunks_mut(cols).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v += ((first_row + dr) * cols + j) as f64;
                }
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    #[should_panic(expected = "band_rows must be positive")]
    fn zero_band_rows_rejected() {
        let mut data = vec![0.0; 8];
        for_each_band(&mut data, 4, 0, |_, _| {});
    }

    #[test]
    fn map_indexed_preserves_order() {
        let out = map_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<f64> = vec![];
        for_each_row(&mut empty, 0, |_, _| unreachable!());
        for_each_row(&mut empty, 5, |_, _| unreachable!());
        assert!(map_indexed(0, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_rows_rejected() {
        let mut data = vec![0.0; 7];
        for_each_row(&mut data, 3, |_, _| {});
    }

    /// Sequential single test: `EDM_NUM_THREADS` is process-global, so
    /// the cases must not interleave with each other.
    #[test]
    #[cfg(feature = "parallel")]
    fn env_thread_override_parsing() {
        std::env::set_var("EDM_NUM_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("EDM_NUM_THREADS", " 8 ");
        assert_eq!(num_threads(), 8, "surrounding whitespace is tolerated");
        std::env::set_var("EDM_NUM_THREADS", "0");
        assert_eq!(num_threads(), 1, "zero is clamped to one thread, not silently ignored");
        std::env::remove_var("EDM_NUM_THREADS");
        let host = num_threads();
        assert!(host >= 1);
        for bad in ["lots", "-2", "1.5", ""] {
            std::env::set_var("EDM_NUM_THREADS", bad);
            assert_eq!(num_threads(), host, "non-numeric {bad:?} falls back to host parallelism");
        }
        std::env::remove_var("EDM_NUM_THREADS");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
