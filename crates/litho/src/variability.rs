//! Process-window variability analysis — the "golden lithography
//! simulation" that labels training data in the paper's Fig. 8 flow.
//!
//! The printed pattern is a threshold resist model applied to the aerial
//! image. Variability is measured by printing the clip at the corners of
//! a dose/focus process window and counting pixels whose printed state
//! flips anywhere in the window, normalized by the printed contour
//! length. Clips whose score exceeds a threshold are *bad* (hotspot-
//! prone): their geometry prints differently depending on where in the
//! window the exposure lands.

use serde::{Deserialize, Serialize};

use crate::layout::LayoutClip;
use crate::optics::{OpticsModel, ProcessCorner};
use crate::raster::{rasterize, Grid};

/// Golden label for a clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariabilityLabel {
    /// Prints stably across the process window.
    Good,
    /// High print variability (hotspot-prone).
    Bad,
}

/// Result of analyzing one clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityReport {
    /// Combined variability score: (window flips + nominal fidelity
    /// error) per contour pixel.
    pub score: f64,
    /// Thresholded label.
    pub label: VariabilityLabel,
    /// Number of pixels whose printed state flips across the window.
    pub flipped_pixels: usize,
    /// Number of pixels where the nominal print disagrees with the
    /// drawn geometry (catches sub-resolution collapse).
    pub fidelity_error_pixels: usize,
    /// Number of printed-contour pixels at nominal.
    pub contour_pixels: usize,
}

/// The golden analyzer: optics + resist threshold + process window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityAnalyzer {
    /// Optical model.
    pub optics: OpticsModel,
    /// Resist print threshold on aerial intensity.
    pub resist_threshold: f64,
    /// Raster resolution (pixels per clip edge).
    pub grid_n: usize,
    /// Process-window corners evaluated against nominal.
    pub corners: Vec<ProcessCorner>,
    /// Score above which a clip is labeled [`VariabilityLabel::Bad`].
    pub bad_threshold: f64,
}

impl Default for VariabilityAnalyzer {
    fn default() -> Self {
        VariabilityAnalyzer {
            optics: OpticsModel::default(),
            // Threshold at 50 %: a straight edge prints exactly on the
            // drawn contour and its 50 %-point is defocus-invariant, so
            // stable geometry really scores near zero.
            resist_threshold: 0.5,
            grid_n: 64,
            corners: vec![
                ProcessCorner { dose: 0.96, defocus: 0.0 },
                ProcessCorner { dose: 1.04, defocus: 0.0 },
                ProcessCorner { dose: 0.98, defocus: 1.0 },
                ProcessCorner { dose: 1.02, defocus: 1.0 },
            ],
            bad_threshold: 1.2,
        }
    }
}

impl VariabilityAnalyzer {
    /// Prints the clip at a corner: `true` pixels receive enough
    /// intensity to clear the resist threshold.
    pub fn print_at(&self, clip: &LayoutClip, corner: &ProcessCorner) -> Vec<bool> {
        let mask = rasterize(clip, self.grid_n);
        let img = self.optics.aerial_image(&mask, corner);
        img.as_slice().iter().map(|&v| v >= self.resist_threshold).collect()
    }

    /// Runs the full process-window analysis on one clip.
    ///
    /// This is the *slow* golden reference the Fig. 9 model replaces:
    /// one blur per corner, versus one histogram per clip for the model.
    pub fn analyze(&self, clip: &LayoutClip) -> VariabilityReport {
        let mask = rasterize(clip, self.grid_n);
        let nominal_img = self.optics.aerial_image(&mask, &ProcessCorner::nominal());
        let nominal: Vec<bool> =
            nominal_img.as_slice().iter().map(|&v| v >= self.resist_threshold).collect();
        let mut flipped = vec![false; nominal.len()];
        for corner in &self.corners {
            let printed = self.print_at(clip, corner);
            for (f, (&a, &b)) in flipped.iter_mut().zip(nominal.iter().zip(&printed)) {
                *f |= a != b;
            }
        }
        // Fidelity: compare the nominal print with the drawn geometry.
        let intended: Vec<bool> = mask.as_slice().iter().map(|&v| v >= 0.5).collect();
        let fidelity_error_pixels =
            intended.iter().zip(&nominal).filter(|&(&i, &p)| i != p).count();
        // Normalize by the drawn contour length so the score reads as
        // "EPE-like pixels of trouble per edge pixel".
        let contour =
            contour_pixels(&intended, self.grid_n).max(contour_pixels(&nominal, self.grid_n));
        let flipped_pixels = flipped.iter().filter(|&&f| f).count();
        let contour_pixels = contour.max(1);
        let score = (flipped_pixels + fidelity_error_pixels) as f64 / contour_pixels as f64;
        let label =
            if score > self.bad_threshold { VariabilityLabel::Bad } else { VariabilityLabel::Good };
        VariabilityReport { score, label, flipped_pixels, fidelity_error_pixels, contour_pixels }
    }

    /// The aerial image at nominal (diagnostic / visualization helper).
    pub fn nominal_image(&self, clip: &LayoutClip) -> Grid {
        let mask = rasterize(clip, self.grid_n);
        self.optics.aerial_image(&mask, &ProcessCorner::nominal())
    }
}

/// Counts printed pixels with at least one unprinted 4-neighbor.
fn contour_pixels(printed: &[bool], n: usize) -> usize {
    let mut count = 0;
    for r in 0..n {
        for c in 0..n {
            if !printed[r * n + c] {
                continue;
            }
            let boundary = (r > 0 && !printed[(r - 1) * n + c])
                || (r + 1 < n && !printed[(r + 1) * n + c])
                || (c > 0 && !printed[r * n + c - 1])
                || (c + 1 < n && !printed[r * n + c + 1]);
            if boundary {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::layout::{ClipStyle, LayoutGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wide_pattern_prints_and_is_stable() {
        // One fat line, far above resolution: prints, and barely varies.
        let clip = LayoutClip::new(1024, vec![Rect::new(256, 0, 768, 1024)]);
        let a = VariabilityAnalyzer::default();
        let printed = a.print_at(&clip, &ProcessCorner::nominal());
        assert!(printed.iter().any(|&p| p), "fat line must print");
        let report = a.analyze(&clip);
        assert_eq!(report.label, VariabilityLabel::Good, "score {}", report.score);
    }

    #[test]
    fn aggressive_pitch_is_more_variable_than_relaxed() {
        let a = VariabilityAnalyzer::default();
        let tight = {
            // 48 nm lines at 96 nm pitch — at the resolution limit.
            let mut rects = Vec::new();
            let mut x = 0;
            while x < 1024 {
                rects.push(Rect::new(x, 0, x + 48, 1024));
                x += 96;
            }
            LayoutClip::new(1024, rects)
        };
        let relaxed = {
            let mut rects = Vec::new();
            let mut x = 0;
            while x < 1024 {
                rects.push(Rect::new(x, 0, x + 160, 1024));
                x += 320;
            }
            LayoutClip::new(1024, rects)
        };
        let tight_score = a.analyze(&tight).score;
        let relaxed_score = a.analyze(&relaxed).score;
        assert!(
            tight_score > relaxed_score,
            "tight {tight_score} should vary more than relaxed {relaxed_score}"
        );
    }

    #[test]
    fn empty_clip_has_zero_score() {
        let clip = LayoutClip::new(1024, vec![]);
        let report = VariabilityAnalyzer::default().analyze(&clip);
        assert_eq!(report.flipped_pixels, 0);
        assert_eq!(report.label, VariabilityLabel::Good);
    }

    #[test]
    fn generated_population_contains_both_labels() {
        let g = LayoutGenerator::default();
        let a = VariabilityAnalyzer::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut good = 0;
        let mut bad = 0;
        for _ in 0..40 {
            let (_, clip) = g.generate_random(&mut rng);
            match a.analyze(&clip).label {
                VariabilityLabel::Good => good += 1,
                VariabilityLabel::Bad => bad += 1,
            }
        }
        assert!(good > 0, "population should contain good clips");
        assert!(bad > 0, "population should contain bad clips");
    }

    #[test]
    fn contour_count_of_square_block() {
        // 4x4 printed block inside 8x8 grid: boundary = 12 pixels.
        let n = 8;
        let mut printed = vec![false; n * n];
        for r in 2..6 {
            for c in 2..6 {
                printed[r * n + c] = true;
            }
        }
        assert_eq!(contour_pixels(&printed, n), 12);
    }

    #[test]
    fn line_end_gaps_are_hotspot_prone() {
        // Line-end gaps (a classic hotspot family) score well above a
        // stable wide straight line.
        let g = LayoutGenerator::default();
        let a = VariabilityAnalyzer::default();
        let mut rng = StdRng::seed_from_u64(21);
        let wide = LayoutClip::new(1024, vec![Rect::new(256, 0, 768, 1024)]);
        let wide_score = a.analyze(&wide).score;
        let mut gap_scores = Vec::new();
        for _ in 0..15 {
            gap_scores.push(a.analyze(&g.generate(ClipStyle::LineEndGap, &mut rng)).score);
        }
        let mean_gap = edm_linalg::mean(&gap_scores);
        assert!(
            mean_gap > 2.0 * wide_score,
            "line-end gaps {mean_gap:.3} should vary much more than a wide line {wide_score:.3}"
        );
    }
}
