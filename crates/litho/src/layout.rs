//! Layout clips and parametrized pattern generators.
//!
//! The generator produces the pattern families lithographers actually
//! fight: line/space gratings (with pitch pushing resolution), contact
//! arrays, random logic-like rectangles, dense-to-isolated transitions,
//! and line-end gaps. Hotspot propensity comes from the same physics the
//! aerial-image model captures — tight pitches, small isolated features,
//! and abrupt density transitions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geometry::Rect;

/// A square layout window holding Manhattan polygons (as rectangles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutClip {
    /// Window edge length in nm.
    size: i32,
    rects: Vec<Rect>,
}

impl LayoutClip {
    /// Creates a clip; rectangles are clipped to the window and empty
    /// ones dropped.
    ///
    /// # Panics
    ///
    /// Panics if `size <= 0`.
    pub fn new(size: i32, rects: Vec<Rect>) -> Self {
        assert!(size > 0, "clip size must be positive");
        let window = Rect::new(0, 0, size, size);
        let rects = rects
            .into_iter()
            .filter_map(|r| r.clipped(&window))
            .filter(|r| !r.is_empty())
            .collect();
        LayoutClip { size, rects }
    }

    /// Window edge length in nm.
    pub fn size(&self) -> i32 {
        self.size
    }

    /// The rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Total drawn area (overlaps double-counted; generators avoid
    /// overlaps) over window area.
    pub fn density(&self) -> f64 {
        let drawn: i64 = self.rects.iter().map(Rect::area).sum();
        drawn as f64 / (self.size as i64 * self.size as i64) as f64
    }
}

/// The pattern families the generator can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClipStyle {
    /// Parallel lines at a random (possibly aggressive) pitch.
    LinesAndSpaces,
    /// A grid of small square contacts.
    ContactArray,
    /// Random non-overlapping logic-like rectangles.
    RandomLogic,
    /// A dense grating on one side, an isolated line on the other.
    DenseIso,
    /// Two collinear lines separated by a small line-end gap.
    LineEndGap,
}

impl ClipStyle {
    /// All styles.
    pub const ALL: [ClipStyle; 5] = [
        ClipStyle::LinesAndSpaces,
        ClipStyle::ContactArray,
        ClipStyle::RandomLogic,
        ClipStyle::DenseIso,
        ClipStyle::LineEndGap,
    ];
}

/// Parametrized random clip generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayoutGenerator {
    /// Window edge length in nm.
    pub clip_size: i32,
    /// Minimum feature size (critical dimension) in nm.
    pub min_feature: i32,
    /// Maximum feature size in nm.
    pub max_feature: i32,
}

impl Default for LayoutGenerator {
    fn default() -> Self {
        LayoutGenerator { clip_size: 1024, min_feature: 64, max_feature: 192 }
    }
}

impl LayoutGenerator {
    /// Generates one clip of the given style.
    pub fn generate<R: Rng + ?Sized>(&self, style: ClipStyle, rng: &mut R) -> LayoutClip {
        let s = self.clip_size;
        let mut rects = Vec::new();
        match style {
            ClipStyle::LinesAndSpaces => {
                let line = rng.gen_range(self.min_feature..=self.max_feature);
                let space = rng.gen_range(self.min_feature..=self.max_feature);
                let pitch = line + space;
                let vertical: bool = rng.gen();
                let mut pos = rng.gen_range(0..pitch);
                while pos < s {
                    if vertical {
                        rects.push(Rect::new(pos, 0, pos + line, s));
                    } else {
                        rects.push(Rect::new(0, pos, s, pos + line));
                    }
                    pos += pitch;
                }
            }
            ClipStyle::ContactArray => {
                let side = rng.gen_range(self.min_feature..=self.min_feature * 2);
                let pitch = side + rng.gen_range(self.min_feature..=self.max_feature);
                let jitter = rng.gen_range(0..pitch);
                let mut y = jitter;
                while y + side <= s {
                    let mut x = jitter;
                    while x + side <= s {
                        rects.push(Rect::new(x, y, x + side, y + side));
                        x += pitch;
                    }
                    y += pitch;
                }
            }
            ClipStyle::RandomLogic => {
                let n = rng.gen_range(6..20);
                for _ in 0..n {
                    let w = rng.gen_range(self.min_feature..=self.max_feature * 2);
                    let h = rng.gen_range(self.min_feature..=self.max_feature * 2);
                    let x = rng.gen_range(0..(s - w).max(1));
                    let y = rng.gen_range(0..(s - h).max(1));
                    let cand = Rect::new(x, y, x + w, y + h);
                    if !rects.iter().any(|r: &Rect| r.intersects(&cand)) {
                        rects.push(cand);
                    }
                }
            }
            ClipStyle::DenseIso => {
                // Dense grating on the left half…
                let line = rng.gen_range(self.min_feature..=self.min_feature * 2);
                let pitch = 2 * line;
                let mut x = 0;
                while x + line < s / 2 {
                    rects.push(Rect::new(x, 0, x + line, s));
                    x += pitch;
                }
                // …one isolated line on the right.
                let iso_x = rng.gen_range(3 * s / 4..s - line);
                rects.push(Rect::new(iso_x, 0, iso_x + line, s));
            }
            ClipStyle::LineEndGap => {
                let line = rng.gen_range(self.min_feature..=self.max_feature);
                let gap = rng.gen_range(self.min_feature / 2..=self.max_feature);
                let y = rng.gen_range(s / 4..3 * s / 4);
                let split = rng.gen_range(s / 3..2 * s / 3);
                rects.push(Rect::new(0, y, split - gap / 2, y + line));
                rects.push(Rect::new(split + gap / 2, y, s, y + line));
                // context lines above and below
                let pitch = 2 * line + gap;
                if y >= pitch {
                    rects.push(Rect::new(0, y - pitch, s, y - pitch + line));
                }
                if y + pitch + line < s {
                    rects.push(Rect::new(0, y + pitch, s, y + pitch + line));
                }
            }
        }
        LayoutClip::new(s, rects)
    }

    /// Generates a clip of a uniformly random style.
    pub fn generate_random<R: Rng + ?Sized>(&self, rng: &mut R) -> (ClipStyle, LayoutClip) {
        let style = ClipStyle::ALL[rng.gen_range(0..ClipStyle::ALL.len())];
        (style, self.generate(style, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clip_clips_to_window() {
        let c =
            LayoutClip::new(100, vec![Rect::new(-50, 0, 50, 200), Rect::new(500, 500, 600, 600)]);
        assert_eq!(c.rects().len(), 1);
        assert_eq!(c.rects()[0], Rect::new(0, 0, 50, 100));
    }

    #[test]
    fn all_styles_generate_nonempty_clips() {
        let g = LayoutGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        for style in ClipStyle::ALL {
            let c = g.generate(style, &mut rng);
            assert!(!c.rects().is_empty(), "{style:?} produced an empty clip");
            assert!(c.density() > 0.0 && c.density() < 1.0, "{style:?} density {}", c.density());
        }
    }

    #[test]
    fn random_logic_rects_do_not_overlap() {
        let g = LayoutGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        let c = g.generate(ClipStyle::RandomLogic, &mut rng);
        for i in 0..c.rects().len() {
            for j in (i + 1)..c.rects().len() {
                assert!(!c.rects()[i].intersects(&c.rects()[j]));
            }
        }
    }

    #[test]
    fn lines_and_spaces_covers_full_height_or_width() {
        let g = LayoutGenerator::default();
        let mut rng = StdRng::seed_from_u64(3);
        let c = g.generate(ClipStyle::LinesAndSpaces, &mut rng);
        let full = c.rects().iter().all(|r| r.height() == c.size() || r.width() == c.size());
        assert!(full);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = LayoutGenerator::default();
        let a = g.generate(ClipStyle::ContactArray, &mut StdRng::seed_from_u64(9));
        let b = g.generate(ClipStyle::ContactArray, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
