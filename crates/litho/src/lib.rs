//! # edm-litho — a lithography-simulation substrate
//!
//! A synthetic stand-in for the golden lithography simulator of the
//! paper's Fig. 8 setup (ref \[13\]): Manhattan layout clips
//! ([`layout`]), a rasterizer ([`raster`]), a Gaussian-optics aerial-image
//! model ([`optics`]), and a process-window variability analysis
//! ([`variability`]) that labels clips *good* or *bad* the way the
//! paper's flow used lithography simulation as the golden reference.
//!
//! The ML side of Fig. 9 then learns a fast predictor: density-histogram
//! features ([`features`]) under the histogram-intersection kernel, so a
//! trained SVM screens layouts orders of magnitude faster than the
//! process-window simulation it imitates.
//!
//! Physics note: the real simulator is a Hopkins partially-coherent
//! imaging model; we use an incoherent Gaussian point-spread
//! approximation with dose/defocus corners. That preserves what the
//! experiment needs — variability is a smooth optics-driven function of
//! local pattern geometry with dense/iso interaction and corner
//! sensitivity — at a cost of absolute accuracy nobody measures here.
//!
//! # Example
//!
//! ```
//! use edm_litho::layout::{ClipStyle, LayoutGenerator};
//! use edm_litho::variability::{VariabilityAnalyzer, VariabilityLabel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let clip = LayoutGenerator::default().generate(ClipStyle::LinesAndSpaces, &mut rng);
//! let analyzer = VariabilityAnalyzer::default();
//! let report = analyzer.analyze(&clip);
//! assert!(report.score >= 0.0);
//! assert!(matches!(report.label, VariabilityLabel::Good | VariabilityLabel::Bad));
//! ```

#![forbid(unsafe_code)]

pub mod features;
pub mod geometry;
pub mod layout;
pub mod optics;
pub mod raster;
pub mod variability;
