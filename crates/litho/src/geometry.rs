//! Manhattan geometry: axis-aligned rectangles in integer nanometres.

use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)` in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i32,
    /// Bottom edge (inclusive).
    pub y0: i32,
    /// Right edge (exclusive).
    pub x1: i32,
    /// Top edge (exclusive).
    pub y1: i32,
}

impl Rect {
    /// Creates a rectangle; coordinates are normalized so `x0 <= x1`,
    /// `y0 <= y1`.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Rect { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// Width in nm.
    pub fn width(&self) -> i32 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> i32 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        self.width() as i64 * self.height() as i64
    }

    /// Whether the rectangle encloses zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Whether two rectangles overlap (shared boundary does not count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The overlap region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// Clips this rectangle to a window, if anything remains.
    pub fn clipped(&self, window: &Rect) -> Option<Rect> {
        self.intersection(window)
    }

    /// Translates by `(dx, dy)`.
    pub fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect { x0: self.x0 + dx, y0: self.y0 + dy, x1: self.x1 + dx, y1: self.y1 + dy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_dimensions() {
        let r = Rect::new(10, 20, 0, 0);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0, 0, 10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 20);
        assert_eq!(r.area(), 200);
        assert!(!r.is_empty());
        assert!(Rect::new(5, 5, 5, 9).is_empty());
    }

    #[test]
    fn intersection_logic() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        let c = Rect::new(10, 0, 20, 10); // touches a at x = 10
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(5, 5, 10, 10));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn clip_to_window() {
        let w = Rect::new(0, 0, 100, 100);
        let inside = Rect::new(10, 10, 20, 20);
        let spanning = Rect::new(-50, 50, 50, 150);
        let outside = Rect::new(200, 200, 300, 300);
        assert_eq!(inside.clipped(&w), Some(inside));
        assert_eq!(spanning.clipped(&w), Some(Rect::new(0, 50, 50, 100)));
        assert_eq!(outside.clipped(&w), None);
    }

    #[test]
    fn translation() {
        let r = Rect::new(0, 0, 4, 4).translated(10, -2);
        assert_eq!(r, Rect::new(10, -2, 14, 2));
    }
}
