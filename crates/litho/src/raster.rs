//! Rasterization of layout clips onto a pixel grid.

use serde::{Deserialize, Serialize};

use crate::layout::LayoutClip;

/// A square pixel grid of `f64` intensities/coverages in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    n: usize,
    /// Pixel edge in nm.
    pixel_nm: i32,
    data: Vec<f64>,
}

impl Grid {
    /// Creates an `n × n` zero grid.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `pixel_nm <= 0`.
    pub fn zeros(n: usize, pixel_nm: i32) -> Self {
        assert!(n > 0, "grid needs at least one pixel");
        assert!(pixel_nm > 0, "pixel size must be positive");
        Grid { n, pixel_nm, data: vec![0.0; n * n] }
    }

    /// Grid edge length in pixels.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pixel edge in nm.
    pub fn pixel_nm(&self) -> i32 {
        self.pixel_nm
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "pixel index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        assert!(row < self.n && col < self.n, "pixel index out of bounds");
        self.data[row * self.n + col] = v;
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        edm_linalg::mean(&self.data)
    }

    /// Maximum pixel value.
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }
}

/// Rasterizes a clip onto an `n × n` grid with exact area weighting:
/// each pixel holds the fraction of its area covered by drawn geometry.
///
/// # Panics
///
/// Panics if the clip size is not divisible by `n`.
pub fn rasterize(clip: &LayoutClip, n: usize) -> Grid {
    assert!(
        (clip.size() as usize).is_multiple_of(n),
        "grid size {n} must divide clip size {}",
        clip.size()
    );
    let pixel = clip.size() / n as i32;
    let mut grid = Grid::zeros(n, pixel);
    let pixel_area = (pixel as i64 * pixel as i64) as f64;
    for r in clip.rects() {
        // Pixel range touched by this rectangle.
        let c0 = (r.x0 / pixel).max(0) as usize;
        let c1 = (((r.x1 + pixel - 1) / pixel) as usize).min(n);
        let r0 = (r.y0 / pixel).max(0) as usize;
        let r1 = (((r.y1 + pixel - 1) / pixel) as usize).min(n);
        for row in r0..r1 {
            let py0 = row as i32 * pixel;
            let py1 = py0 + pixel;
            let overlap_y = (r.y1.min(py1) - r.y0.max(py0)).max(0) as f64;
            for col in c0..c1 {
                let px0 = col as i32 * pixel;
                let px1 = px0 + pixel;
                let overlap_x = (r.x1.min(px1) - r.x0.max(px0)).max(0) as f64;
                let add = overlap_x * overlap_y / pixel_area;
                let v = (grid.get(row, col) + add).min(1.0);
                grid.set(row, col, v);
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    #[test]
    fn full_coverage_pixel_is_one() {
        let clip = LayoutClip::new(64, vec![Rect::new(0, 0, 32, 32)]);
        let g = rasterize(&clip, 4); // 16 nm pixels
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(1, 1), 1.0);
        assert_eq!(g.get(2, 2), 0.0);
    }

    #[test]
    fn partial_coverage_is_fractional() {
        // Rect covers left half of pixel (0,0).
        let clip = LayoutClip::new(64, vec![Rect::new(0, 0, 8, 16)]);
        let g = rasterize(&clip, 4);
        assert!((g.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_mass_conserved() {
        let clip = LayoutClip::new(128, vec![Rect::new(3, 5, 77, 40), Rect::new(90, 90, 120, 128)]);
        let g = rasterize(&clip, 16);
        let mass: f64 =
            g.as_slice().iter().sum::<f64>() * (g.pixel_nm() as f64 * g.pixel_nm() as f64);
        let drawn: i64 = clip.rects().iter().map(Rect::area).sum();
        assert!((mass - drawn as f64).abs() < 1e-6);
    }

    #[test]
    fn density_matches_grid_mean() {
        let clip = LayoutClip::new(256, vec![Rect::new(0, 0, 128, 256)]);
        let g = rasterize(&clip, 32);
        assert!((g.mean() - clip.density()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_grid_rejected() {
        let clip = LayoutClip::new(100, vec![]);
        let _ = rasterize(&clip, 3);
    }
}
