//! Feature extraction for the fast variability predictor.
//!
//! The paper's layout work (\[13\]) represented a clip by density
//! histograms and compared clips with the histogram-intersection kernel.
//! [`density_histogram`] reproduces that: slide a window over the
//! rasterized clip, collect local pattern densities, histogram them.
//! Two clips with similar local-density *distributions* image similarly
//! under a low-pass optical system — which is exactly why the HI kernel
//! works here.

use serde::{Deserialize, Serialize};

use crate::layout::LayoutClip;
use crate::raster::rasterize;

/// Parameters for [`density_histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSpec {
    /// Raster resolution (pixels per clip edge).
    pub grid_n: usize,
    /// Sliding-window edge in pixels.
    pub window: usize,
    /// Number of histogram bins over density `[0, 1]`.
    pub bins: usize,
}

impl Default for HistogramSpec {
    fn default() -> Self {
        HistogramSpec { grid_n: 64, window: 8, bins: 16 }
    }
}

/// Computes the local-density histogram of a clip, normalized to sum
/// to 1 (so histogram-intersection self-similarity is 1).
///
/// # Panics
///
/// Panics if `window` is zero, larger than `grid_n`, or `bins == 0`.
pub fn density_histogram(clip: &LayoutClip, spec: &HistogramSpec) -> Vec<f64> {
    assert!(spec.window > 0 && spec.window <= spec.grid_n, "bad window size");
    assert!(spec.bins > 0, "need at least one bin");
    let grid = rasterize(clip, spec.grid_n);
    let n = spec.grid_n;
    let w = spec.window;
    // Summed-area table for O(1) window sums.
    let mut sat = vec![0.0; (n + 1) * (n + 1)];
    for r in 0..n {
        for c in 0..n {
            sat[(r + 1) * (n + 1) + c + 1] =
                grid.get(r, c) + sat[r * (n + 1) + c + 1] + sat[(r + 1) * (n + 1) + c]
                    - sat[r * (n + 1) + c];
        }
    }
    let window_area = (w * w) as f64;
    let mut hist = vec![0.0; spec.bins];
    let step = (w / 2).max(1); // half-overlapping windows
    let mut count = 0.0;
    let mut r = 0;
    while r + w <= n {
        let mut c = 0;
        while c + w <= n {
            let sum = sat[(r + w) * (n + 1) + c + w]
                - sat[r * (n + 1) + c + w]
                - sat[(r + w) * (n + 1) + c]
                + sat[r * (n + 1) + c];
            let density = (sum / window_area).clamp(0.0, 1.0);
            let bin = ((density * spec.bins as f64) as usize).min(spec.bins - 1);
            hist[bin] += 1.0;
            count += 1.0;
            c += step;
        }
        r += step;
    }
    if count > 0.0 {
        for h in &mut hist {
            *h /= count;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::layout::{ClipStyle, LayoutGenerator};
    use edm_kernels::{HistogramIntersectionKernel, Kernel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_sums_to_one() {
        let clip = LayoutClip::new(1024, vec![Rect::new(0, 0, 512, 1024)]);
        let h = density_histogram(&clip, &HistogramSpec::default());
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_clip_mass_in_zero_bin() {
        let clip = LayoutClip::new(1024, vec![]);
        let h = density_histogram(&clip, &HistogramSpec::default());
        assert!((h[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_clip_mass_in_top_bin() {
        let clip = LayoutClip::new(1024, vec![Rect::new(0, 0, 1024, 1024)]);
        let h = density_histogram(&clip, &HistogramSpec::default());
        assert!((h.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hi_kernel_self_similarity_is_one() {
        let g = LayoutGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        let clip = g.generate(ClipStyle::ContactArray, &mut rng);
        let h = density_histogram(&clip, &HistogramSpec::default());
        let k = HistogramIntersectionKernel::new();
        assert!((k.eval(&h, &h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_style_clips_more_similar_than_cross_style() {
        let g = LayoutGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        let spec = HistogramSpec::default();
        let k = HistogramIntersectionKernel::new();
        // Average over many draws to avoid single-sample flukes.
        let mut same = 0.0;
        let mut cross = 0.0;
        let n = 40;
        for _ in 0..n {
            let a = density_histogram(&g.generate(ClipStyle::LinesAndSpaces, &mut rng), &spec);
            let b = density_histogram(&g.generate(ClipStyle::LinesAndSpaces, &mut rng), &spec);
            let c = density_histogram(&g.generate(ClipStyle::ContactArray, &mut rng), &spec);
            same += k.eval(&a, &b);
            cross += k.eval(&a, &c);
        }
        assert!(same > cross, "same-style {same} vs cross-style {cross}");
    }
}
