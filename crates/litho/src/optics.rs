//! Aerial-image simulation: separable Gaussian point-spread convolution
//! with dose/defocus process corners.
//!
//! The point-spread width models λ/NA blur; defocus widens it, dose
//! scales the delivered intensity. The Gaussian-incoherent approximation
//! keeps the qualitative optics the variability labels depend on
//! (proximity between dense features, contrast loss on small isolated
//! ones) at a fraction of a Hopkins model's cost.

use serde::{Deserialize, Serialize};

use crate::raster::Grid;

/// Optical model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticsModel {
    /// Nominal point-spread sigma in nm (≈ 0.4 λ/NA).
    pub sigma_nm: f64,
    /// Extra sigma added (in quadrature) per 100 nm of defocus.
    pub defocus_blur_nm: f64,
}

impl Default for OpticsModel {
    fn default() -> Self {
        // 193 nm immersion-ish: λ/NA ≈ 143 nm → σ ≈ 57 nm.
        OpticsModel { sigma_nm: 55.0, defocus_blur_nm: 30.0 }
    }
}

/// One exposure condition in the process window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessCorner {
    /// Dose multiplier (1.0 = nominal).
    pub dose: f64,
    /// Defocus in units of 100 nm (0.0 = best focus).
    pub defocus: f64,
}

impl ProcessCorner {
    /// The nominal condition.
    pub fn nominal() -> Self {
        ProcessCorner { dose: 1.0, defocus: 0.0 }
    }
}

impl OpticsModel {
    /// Effective blur sigma at a corner (defocus adds in quadrature).
    pub fn sigma_at(&self, corner: &ProcessCorner) -> f64 {
        let d = corner.defocus * self.defocus_blur_nm;
        (self.sigma_nm * self.sigma_nm + d * d).sqrt()
    }

    /// Computes the aerial image of a rasterized mask at a process
    /// corner.
    ///
    /// # Panics
    ///
    /// Panics if the blur sigma is not positive (bad model parameters).
    pub fn aerial_image(&self, mask: &Grid, corner: &ProcessCorner) -> Grid {
        let sigma_px = self.sigma_at(corner) / mask.pixel_nm() as f64;
        assert!(sigma_px > 0.0, "blur sigma must be positive");
        let kernel = gaussian_kernel(sigma_px);
        let blurred = convolve_separable(mask, &kernel);
        // Dose scales intensity.
        let n = blurred.n();
        let mut out = Grid::zeros(n, blurred.pixel_nm());
        for r in 0..n {
            for c in 0..n {
                out.set(r, c, blurred.get(r, c) * corner.dose);
            }
        }
        out
    }
}

/// A normalized 1-D Gaussian kernel truncated at ±3σ.
fn gaussian_kernel(sigma_px: f64) -> Vec<f64> {
    let radius = (3.0 * sigma_px).ceil() as usize;
    let mut k = Vec::with_capacity(2 * radius + 1);
    for i in 0..=(2 * radius) {
        let x = i as f64 - radius as f64;
        k.push((-0.5 * (x / sigma_px) * (x / sigma_px)).exp());
    }
    let total: f64 = k.iter().sum();
    for v in &mut k {
        *v /= total;
    }
    k
}

/// Separable 2-D convolution with edge clamping (replicate-border),
/// which models geometry continuing beyond the clip window.
fn convolve_separable(grid: &Grid, kernel: &[f64]) -> Grid {
    let n = grid.n();
    let radius = kernel.len() / 2;
    let mut tmp = Grid::zeros(n, grid.pixel_nm());
    // Horizontal pass.
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                let cc = (c + i).saturating_sub(radius).min(n - 1);
                acc += kv * grid.get(r, cc);
            }
            tmp.set(r, c, acc);
        }
    }
    // Vertical pass.
    let mut out = Grid::zeros(n, grid.pixel_nm());
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                let rr = (r + i).saturating_sub(radius).min(n - 1);
                acc += kv * tmp.get(rr, c);
            }
            out.set(r, c, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::layout::LayoutClip;
    use crate::raster::rasterize;

    fn half_plane() -> Grid {
        let clip = LayoutClip::new(1024, vec![Rect::new(0, 0, 512, 1024)]);
        rasterize(&clip, 64)
    }

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(2.5);
        assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn blur_preserves_mean_intensity() {
        let mask = half_plane();
        let img = OpticsModel::default().aerial_image(&mask, &ProcessCorner::nominal());
        assert!((img.mean() - mask.mean()).abs() < 0.02);
    }

    #[test]
    fn edge_becomes_smooth_ramp() {
        let mask = half_plane();
        let img = OpticsModel::default().aerial_image(&mask, &ProcessCorner::nominal());
        let mid = img.n() / 2;
        // Intensity decreases monotonically across the mask edge.
        let row = mid;
        let profile: Vec<f64> = (20..44).map(|c| img.get(row, c)).collect();
        for w in profile.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        // At the geometric edge the intensity is ≈ 0.5 (half the plane).
        assert!((img.get(row, 31) - 0.5).abs() < 0.1);
    }

    #[test]
    fn defocus_reduces_edge_slope() {
        let mask = half_plane();
        let model = OpticsModel::default();
        let focused = model.aerial_image(&mask, &ProcessCorner::nominal());
        let defocused = model.aerial_image(&mask, &ProcessCorner { dose: 1.0, defocus: 3.0 });
        let slope = |img: &Grid| {
            let r = img.n() / 2;
            (img.get(r, 28) - img.get(r, 36)).abs()
        };
        assert!(slope(&defocused) < slope(&focused));
    }

    #[test]
    fn dose_scales_intensity() {
        let mask = half_plane();
        let model = OpticsModel::default();
        let nominal = model.aerial_image(&mask, &ProcessCorner::nominal());
        let hot = model.aerial_image(&mask, &ProcessCorner { dose: 1.2, defocus: 0.0 });
        assert!((hot.get(10, 10) - 1.2 * nominal.get(10, 10)).abs() < 1e-9);
    }
}
