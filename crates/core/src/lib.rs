//! # edm-core — the paper's data-mining methodology flows
//!
//! The paper's actual contribution is not an algorithm but a set of
//! *problem formulations*: ways of inserting learning into an EDA flow
//! such that (1) no guaranteed result is required, (2) the data is
//! already there, (3) the flow adds value to the existing tool, and
//! (4) the engineer does less work, not more (§1's four principles).
//! This crate implements those formulations, one module per application
//! study:
//!
//! | Module | Paper result | Flow |
//! |---|---|---|
//! | [`noveltest`] | Fig. 7 | one-class-SVM novelty filter between randomizer and simulator |
//! | [`template_refine`] | Table 1 | CN2-SD rules on covering tests → template knob updates |
//! | [`variability`] | Fig. 9 | HI-kernel SVM trained against the golden litho simulation |
//! | [`dstc`] | Fig. 10 | cluster (predicted, measured) delays, rule-learn the slow cluster |
//! | [`returns`] | Fig. 11 | feature-selected 3-test outlier model for customer returns |
//! | [`testcost`] | Fig. 12 | the *negative* case: correlation-driven test dropping and its escapes |
//!
//! Domain knowledge enters in exactly the two places the paper's §5
//! allows: the kernel (spectrum kernel over instruction streams, HI
//! kernel over density histograms) and the feature definitions (template
//! knobs, path structure, robust test z-scores). Everything else is a
//! stock learner from `edm-svm`/`edm-learn`.

#![forbid(unsafe_code)]

pub mod dstc;
pub mod noveltest;
pub mod returns;
pub mod template_refine;
pub mod testcost;
pub mod variability;
