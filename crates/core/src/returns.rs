//! Customer-return screening (paper Fig. 11, refs \[16\]\[32\]).
//!
//! With a handful of returns against hundreds of thousands of passing
//! parts, this is not a classification problem (paper §2.4): the flow
//! instead (1) *selects* a small test subspace in which the known
//! returns stand out — ranking tests by how outlying the returns are,
//! then de-correlating — and (2) builds an outlier model of the passing
//! population in that subspace. The model is then applied forward in
//! time (a return manufactured months later) and sideways (a sister
//! product a year later), reproducing the three plots of Fig. 11.
//!
//! Scores are computed on robust z-scores (median/MAD per population),
//! which is what lets one model transfer across drifted lots and a
//! mean-shifted sister product.

use edm_linalg::stats;
use edm_mfgtest::product::{Device, ProductModel};
use edm_mfgtest::returns::FieldModel;
use edm_mfgtest::testflow::TestFlow;
use edm_novelty::{MahalanobisDetector, NoveltyDetector, NoveltyError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the return-screening experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReturnScreeningConfig {
    /// Devices per lot.
    pub lot_size: usize,
    /// Lots in the baseline production window.
    pub n_lots: u32,
    /// Latent defect rate (scaled up from automotive ppm so a laptop-
    /// sized population contains a few returns).
    pub defect_rate: f64,
    /// Tests selected for the outlier space (the paper shows 3-D).
    pub n_selected: usize,
    /// Outlier threshold quantile on the passing population.
    pub threshold_quantile: f64,
}

impl Default for ReturnScreeningConfig {
    fn default() -> Self {
        ReturnScreeningConfig {
            lot_size: 5_000,
            n_lots: 10,
            defect_rate: 4e-4,
            n_selected: 3,
            threshold_quantile: 0.999,
        }
    }
}

/// A trained return screen: selected tests + outlier model on robust
/// z-scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReturnScreen {
    /// Indices of the selected tests.
    pub selected_tests: Vec<usize>,
    /// Names of the selected tests.
    pub selected_names: Vec<String>,
    detector: MahalanobisDetector,
    threshold: f64,
}

impl ReturnScreen {
    /// Robust z-scores of a device in the selected subspace, given the
    /// population's per-test medians and MADs.
    fn project(&self, device: &Device, center: &[f64], spread: &[f64]) -> Vec<f64> {
        self.selected_tests
            .iter()
            .enumerate()
            .map(|(k, &t)| (device.measurements[t] - center[k]) / spread[k].max(1e-12))
            .collect()
    }

    /// Outlier score of a device against a reference population
    /// (higher = more outlying).
    pub fn score(&self, device: &Device, population: &[&Device]) -> f64 {
        let (center, spread) = robust_stats(population, &self.selected_tests);
        self.detector.score(&self.project(device, &center, &spread))
    }

    /// Scores a whole population at once (shared robust statistics).
    pub fn score_population(&self, population: &[&Device]) -> Vec<f64> {
        let (center, spread) = robust_stats(population, &self.selected_tests);
        population.iter().map(|d| self.detector.score(&self.project(d, &center, &spread))).collect()
    }

    /// Whether a device would be screened out as a suspected latent
    /// defect.
    pub fn flags(&self, device: &Device, population: &[&Device]) -> bool {
        self.score(device, population) > self.threshold
    }

    /// The calibrated score threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

fn robust_stats(population: &[&Device], tests: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let mut center = Vec::with_capacity(tests.len());
    let mut spread = Vec::with_capacity(tests.len());
    for &t in tests {
        let col: Vec<f64> = population.iter().map(|d| d.measurements[t]).collect();
        center.push(stats::median(&col).unwrap_or(0.0));
        spread.push(stats::mad(&col).unwrap_or(1.0).max(1e-9));
    }
    (center, spread)
}

/// Result of the three-plot Fig. 11 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReturnScreeningResult {
    /// Returns observed in the baseline window.
    pub n_baseline_returns: usize,
    /// Baseline returns' score percentile vs the passing population
    /// (plot 1: the return is an extreme outlier).
    pub baseline_return_percentiles: Vec<f64>,
    /// Later-production returns caught by the model (plot 2).
    pub later_caught: usize,
    /// Later-production returns total.
    pub later_total: usize,
    /// Sister-product returns caught (plot 3).
    pub sister_caught: usize,
    /// Sister-product returns total.
    pub sister_total: usize,
    /// Overkill: fraction of healthy shipped devices the screen would
    /// reject.
    pub overkill_rate: f64,
    /// The trained screen.
    pub screen: ReturnScreen,
}

/// Ranks tests by how outlying the known returns are (mean |robust z|
/// of the returns per test), then de-correlates on the passing
/// population and keeps the top `n_selected`.
pub fn select_test_space(
    passing: &[&Device],
    returns: &[&Device],
    n_tests: usize,
    n_selected: usize,
) -> Vec<usize> {
    let all: Vec<usize> = (0..n_tests).collect();
    let (center, spread) = robust_stats(passing, &all);
    let mut scored: Vec<(usize, f64)> = (0..n_tests)
        .map(|t| {
            let z: f64 = returns
                .iter()
                .map(|d| ((d.measurements[t] - center[t]) / spread[t]).abs())
                .sum::<f64>()
                / returns.len().max(1) as f64;
            (t, z)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    // De-correlate: drop tests correlated > 0.9 with an already-kept one.
    let mut kept: Vec<usize> = Vec::new();
    for (t, _) in scored {
        let col_t: Vec<f64> = passing.iter().map(|d| d.measurements[t]).collect();
        let redundant = kept.iter().any(|&k| {
            let col_k: Vec<f64> = passing.iter().map(|d| d.measurements[k]).collect();
            stats::pearson(&col_t, &col_k).abs() > 0.9
        });
        if !redundant {
            kept.push(t);
            if kept.len() == n_selected {
                break;
            }
        }
    }
    kept
}

/// Runs the full Fig. 11 experiment.
///
/// # Errors
///
/// Returns an error if the baseline window produced no returns (raise
/// `defect_rate` or the population size) or detector fitting fails.
pub fn run<R: Rng + ?Sized>(
    config: &ReturnScreeningConfig,
    rng: &mut R,
) -> Result<ReturnScreeningResult, NoveltyError> {
    let _span = edm_trace::span("core.returns.run");
    let product = ProductModel::automotive().with_defect_rate(config.defect_rate);
    let flow = TestFlow::new(product.spec_limits().to_vec());
    let field = FieldModel::default();

    // Baseline production window.
    let mut devices = Vec::new();
    for lot in 0..config.n_lots {
        devices.extend(product.generate_lot(lot, config.lot_size, rng));
    }
    let (shipped, _) = flow.screen(&devices);
    let (returns, survivors) = field.field_exposure(&shipped, rng);
    if returns.is_empty() {
        return Err(NoveltyError::InvalidInput(
            "baseline window produced no customer returns; raise defect_rate".into(),
        ));
    }

    // Select the test space where the returns stand out.
    let selected = select_test_space(&survivors, &returns, product.n_tests(), config.n_selected);
    let selected_names: Vec<String> =
        selected.iter().map(|&t| product.test_names()[t].clone()).collect();

    // Outlier model on robust z-scores of the passing population.
    let all_idx: Vec<usize> = selected.clone();
    let (center, spread) = robust_stats(&survivors, &all_idx);
    let z_pop: Vec<Vec<f64>> = survivors
        .iter()
        .map(|d| {
            all_idx
                .iter()
                .enumerate()
                .map(|(k, &t)| (d.measurements[t] - center[k]) / spread[k].max(1e-12))
                .collect()
        })
        .collect();
    let detector = MahalanobisDetector::fit(&z_pop, config.threshold_quantile)?;
    let threshold = detector.threshold();
    let screen = ReturnScreen { selected_tests: selected, selected_names, detector, threshold };

    // Plot 1: percentile of each baseline return among survivors.
    let survivor_scores = screen.score_population(&survivors);
    let mut sorted_scores = survivor_scores.clone();
    sorted_scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let percentile = |s: f64| -> f64 {
        let below = sorted_scores.partition_point(|&v| v < s);
        below as f64 / sorted_scores.len().max(1) as f64
    };
    let baseline_return_percentiles: Vec<f64> =
        returns.iter().map(|d| percentile(screen.score(d, &survivors))).collect();

    // Plot 2: a later production window (months later = more drift).
    let mut later_devices = Vec::new();
    for lot in config.n_lots..(config.n_lots + 4) {
        later_devices.extend(product.generate_lot(lot + 20, config.lot_size, rng));
    }
    let (later_shipped, _) = flow.screen(&later_devices);
    let (later_returns, later_survivors) = field.field_exposure(&later_shipped, rng);
    let later_caught = later_returns.iter().filter(|d| screen.flags(d, &later_survivors)).count();

    // Plot 3: the sister product a year later.
    let sister = product.sister_product();
    let sister_flow = TestFlow::new(sister.spec_limits().to_vec());
    let mut sister_devices = Vec::new();
    for lot in 0..4 {
        sister_devices.extend(sister.generate_lot(lot + 50, config.lot_size, rng));
    }
    let (sister_shipped, _) = sister_flow.screen(&sister_devices);
    let (sister_returns, sister_survivors) = field.field_exposure(&sister_shipped, rng);
    let sister_caught =
        sister_returns.iter().filter(|d| screen.flags(d, &sister_survivors)).count();

    // Overkill on the healthy later population.
    let later_scores = screen.score_population(&later_survivors);
    let overkill = later_scores.iter().filter(|&&s| s > screen.threshold()).count() as f64
        / later_scores.len().max(1) as f64;

    Ok(ReturnScreeningResult {
        n_baseline_returns: returns.len(),
        baseline_return_percentiles,
        later_caught,
        later_total: later_returns.len(),
        sister_caught,
        sister_total: sister_returns.len(),
        overkill_rate: overkill,
        screen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn returns_are_extreme_outliers_and_model_transfers() {
        let mut rng = StdRng::seed_from_u64(101);
        let config = ReturnScreeningConfig {
            lot_size: 2_000,
            n_lots: 8,
            defect_rate: 2e-3,
            ..Default::default()
        };
        let result = run(&config, &mut rng).unwrap();
        assert!(result.n_baseline_returns >= 3);
        // Plot 1: returns sit at the extreme tail of the population.
        for &p in &result.baseline_return_percentiles {
            assert!(p > 0.95, "return percentile {p} not extreme");
        }
        // Plot 2: the model catches most later returns.
        assert!(
            result.later_caught * 3 >= result.later_total * 2,
            "later: {}/{}",
            result.later_caught,
            result.later_total
        );
        // Plot 3: and transfers to the sister product.
        assert!(
            result.sister_caught * 2 >= result.sister_total,
            "sister: {}/{}",
            result.sister_caught,
            result.sister_total
        );
        // Overkill stays small.
        assert!(result.overkill_rate < 0.02, "overkill {}", result.overkill_rate);
        // The screen selected the defect-bearing tests.
        assert!(
            result.screen.selected_names.iter().any(|n| n == "iddq" || n == "vmin"),
            "selected {:?}",
            result.screen.selected_names
        );
    }

    #[test]
    fn no_returns_is_an_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = ReturnScreeningConfig {
            lot_size: 100,
            n_lots: 1,
            defect_rate: 0.0,
            ..Default::default()
        };
        assert!(run(&config, &mut rng).is_err());
    }
}
