//! Rule-driven test-template refinement (paper Table 1, ref \[28\]).
//!
//! The loop the paper describes: simulate the tests the engineer's
//! template produces; for each interesting coverage point, *learn the
//! properties of the tests that hit it* (CN2-SD rules over named program
//! features); translate those properties back into template-knob
//! adjustments; instantiate a smaller batch from the improved template;
//! repeat. Knowledge flows to the engineer as readable rules, and to the
//! randomizer as constraint updates — the two usage-model outputs the
//! paper's §1 demands.

use edm_learn::rules::cn2sd::{learn_rules, Cn2SdParams};
use edm_learn::rules::{Op, Rule};
use edm_learn::LearnError;
use edm_verif::coverage::{CoverageMap, CoveragePoint, NUM_POINTS};
use edm_verif::lsu::LsuSimulator;
use edm_verif::program::Program;
use edm_verif::template::TestTemplate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of one refinement stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageResult {
    /// Stage name (`"original"`, `"1st learning"`, …).
    pub name: String,
    /// Tests instantiated in this stage.
    pub n_tests: usize,
    /// Per-point hit counts from this stage's tests (the Table 1 row).
    pub counts: [u64; NUM_POINTS],
    /// Rules learned *from* this stage (they shaped the next stage).
    pub rules: Vec<String>,
    /// The template used in this stage.
    pub template: TestTemplate,
}

/// Configuration of the refinement experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinementConfig {
    /// Tests per stage (the paper used 400 / 100 / 50).
    pub tests_per_stage: Vec<usize>,
    /// Knob delta applied per matched rule condition.
    pub knob_delta: f64,
    /// CN2-SD parameters.
    pub rule_params: Cn2SdParams,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            tests_per_stage: vec![400, 100, 50],
            knob_delta: 0.18,
            rule_params: Cn2SdParams { max_rules: 2, max_conditions: 2, ..Default::default() },
        }
    }
}

/// Maps one learned rule condition back onto template knobs — the
/// domain-knowledge table that closes the loop. This is deliberately a
/// readable, engineer-auditable mapping: each program feature corresponds
/// to a knob the randomizer actually has.
pub fn apply_condition_to_template(
    template: &mut TestTemplate,
    feature_name: &str,
    op: Op,
    delta: f64,
) {
    match (feature_name, op) {
        ("store_frac", Op::Gt) | ("max_consec_stores", Op::Gt) => template.boost_stores(delta),
        ("load_frac", Op::Gt) => template.boost_loads(delta),
        ("base_reuse_frac", Op::Gt) | ("near_addr_frac", Op::Gt) => template.boost_reuse(delta),
        ("near_addr_frac", Op::Le) | ("base_reuse_frac", Op::Le) => template.reduce_locality(delta),
        ("subword_frac", Op::Gt) => template.boost_subword(delta),
        ("unaligned_frac", Op::Gt) => template.boost_unaligned(delta),
        ("max_consec_mem", Op::Gt) => template.boost_mem_burst(delta),
        ("alu_frac", Op::Le) => {
            // fewer ALU ops = denser memory traffic
            template.boost_mem_burst(delta / 2.0);
        }
        _ => {} // conditions on length/fence/etc. carry no knob
    }
}

/// Runs the multi-stage refinement experiment and returns one
/// [`StageResult`] per stage (the rows of Table 1).
///
/// Stage k: instantiate `tests_per_stage[k]` tests from the current
/// template, simulate, report per-point counts; then, for every point
/// hit by at least one but at most 30 % of the tests (the "special
/// tests"), learn rules and fold their conditions into the template for
/// stage k + 1.
///
/// # Errors
///
/// Propagates rule-learning failures.
pub fn run<R: Rng + ?Sized>(
    simulator: &LsuSimulator,
    config: &RefinementConfig,
    rng: &mut R,
) -> Result<Vec<StageResult>, LearnError> {
    let _span = edm_trace::span("core.template_refine.run");
    let mut template = TestTemplate::default();
    let mut stages = Vec::new();
    let feature_names = Program::feature_names();
    for (stage_idx, &n_tests) in config.tests_per_stage.iter().enumerate() {
        let tests: Vec<Program> = (0..n_tests).map(|_| template.generate(rng)).collect();
        let outcomes: Vec<_> = tests.iter().map(|t| simulator.simulate(t)).collect();
        let mut counts = [0u64; NUM_POINTS];
        let mut total = CoverageMap::new();
        for out in &outcomes {
            total.merge(&out.coverage);
        }
        for (i, c) in counts.iter_mut().enumerate() {
            *c = total.count(CoveragePoint::ALL[i]);
        }

        // Learn from the "special tests": points hit rarely but not never.
        let features: Vec<Vec<f64>> = tests.iter().map(Program::features).collect();
        let mut next_template = template.clone();
        let mut rule_strings = Vec::new();
        let is_last = stage_idx + 1 == config.tests_per_stage.len();
        if !is_last {
            for point in CoveragePoint::ALL {
                let labels: Vec<i32> =
                    outcomes.iter().map(|o| i32::from(o.coverage.covered(point))).collect();
                let hits = labels.iter().filter(|&&l| l == 1).count();
                if hits == 0 || hits * 10 > n_tests * 3 {
                    continue; // unhit or already common
                }
                let rules: Vec<Rule> = match learn_rules(&features, &labels, 1, config.rule_params)
                {
                    Ok(r) => r,
                    Err(LearnError::InvalidInput(_)) => continue,
                    Err(e) => return Err(e),
                };
                for rule in &rules {
                    rule_strings.push(format!(
                        "{}: {}",
                        point.short_name(),
                        rule.display_with(&feature_names)
                    ));
                    for cond in &rule.conditions {
                        apply_condition_to_template(
                            &mut next_template,
                            &feature_names[cond.feature],
                            cond.op,
                            config.knob_delta,
                        );
                    }
                }
            }
        }
        rule_strings.dedup();
        let name = match stage_idx {
            0 => "original".to_string(),
            1 => "1st learning".to_string(),
            2 => "2nd learning".to_string(),
            k => format!("{k}th learning"),
        };
        stages.push(StageResult {
            name,
            n_tests,
            counts,
            rules: rule_strings,
            template: template.clone(),
        });
        template = next_template;
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn condition_mapping_moves_the_right_knob() {
        let mut t = TestTemplate::default();
        let before = t.reuse_addr_prob;
        apply_condition_to_template(&mut t, "near_addr_frac", Op::Gt, 0.2);
        assert!(t.reuse_addr_prob > before);
        let stores = t.w_store;
        apply_condition_to_template(&mut t, "max_consec_stores", Op::Gt, 0.2);
        assert!(t.w_store > stores);
        let aligned = t.aligned_prob;
        apply_condition_to_template(&mut t, "unaligned_frac", Op::Gt, 0.2);
        assert!(t.aligned_prob < aligned);
        // unmapped feature is a no-op
        let snapshot = t.clone();
        apply_condition_to_template(&mut t, "length", Op::Gt, 0.2);
        assert_eq!(t, snapshot);
    }

    #[test]
    fn refinement_raises_rare_point_hit_rate() {
        let sim = LsuSimulator::default_config();
        let config = RefinementConfig { tests_per_stage: vec![200, 80, 40], ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2024);
        let stages = run(&sim, &config, &mut rng).unwrap();
        assert_eq!(stages.len(), 3);
        // Table 1's claim is "covered with high frequencies": per-test
        // hit rate on the rare points A2..A7 grows by a large factor.
        let rare_rate =
            |s: &StageResult| s.counts[2..].iter().sum::<u64>() as f64 / s.n_tests as f64;
        let first = rare_rate(&stages[0]);
        let last = rare_rate(&stages[2]);
        assert!(
            last > 3.0 * first.max(0.05),
            "rare-point rate should grow: {first:.3} -> {last:.3} \
             (rules: {:?})",
            stages[0].rules
        );
        // learning stages actually produced rules
        assert!(!stages[0].rules.is_empty() || !stages[1].rules.is_empty());
    }

    #[test]
    fn stage_names_follow_paper() {
        let sim = LsuSimulator::default_config();
        let config = RefinementConfig { tests_per_stage: vec![50, 20, 10], ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let stages = run(&sim, &config, &mut rng).unwrap();
        assert_eq!(stages[0].name, "original");
        assert_eq!(stages[1].name, "1st learning");
        assert_eq!(stages[2].name, "2nd learning");
        assert_eq!(stages[0].n_tests, 50);
    }
}
