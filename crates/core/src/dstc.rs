//! Design-silicon timing correlation diagnosis (paper Fig. 10,
//! refs \[29\]\[31\]).
//!
//! Silicon path delays are plotted against signoff predictions; two
//! clusters appear — paths the silicon runs *fast* and paths it runs
//! *slow* relative to prediction. CN2-SD rule learning over named path
//! features then explains the slow cluster. In the paper the recovered
//! rule was "many layer-4-5 and layer-5-6 vias ⇒ slow", later confirmed
//! as a metal-5 via issue; here the silicon model injects exactly that
//! effect, so rule recovery can be scored against ground truth.

use edm_cluster::kmeans::kmeans;
use edm_learn::rules::cn2sd::{learn_rules, Cn2SdParams};
use edm_learn::rules::Rule;
use edm_learn::LearnError;
use edm_timing::path::{PathGenerator, TimingPath};
use edm_timing::silicon::SiliconModel;
use edm_timing::sta::Timer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the DSTC experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DstcConfig {
    /// Paths in the analyzed design block.
    pub n_paths: usize,
    /// CN2-SD parameters for explaining the slow cluster.
    pub rule_params: Cn2SdParams,
}

impl Default for DstcConfig {
    fn default() -> Self {
        DstcConfig {
            n_paths: 600,
            rule_params: Cn2SdParams {
                max_rules: 3,
                max_conditions: 2,
                n_thresholds: 10,
                ..Default::default()
            },
        }
    }
}

/// One path's entry in the correlation plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPoint {
    /// Path id.
    pub id: usize,
    /// Signoff-predicted delay, ps.
    pub predicted: f64,
    /// Measured silicon delay, ps.
    pub measured: f64,
    /// Cluster assignment (0 = fast-ish, 1 = slow).
    pub cluster: usize,
}

/// Result of the DSTC diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DstcResult {
    /// All analyzed paths with cluster labels.
    pub points: Vec<PathPoint>,
    /// Mean mismatch (measured − predicted) of the fast cluster, ps.
    pub fast_cluster_mismatch: f64,
    /// Mean mismatch of the slow cluster, ps.
    pub slow_cluster_mismatch: f64,
    /// Learned rules (rendered with feature names).
    pub rules: Vec<String>,
    /// The raw learned rules, for programmatic inspection.
    pub raw_rules: Vec<Rule>,
    /// Names of features appearing in the learned rules.
    pub implicated_features: Vec<String>,
}

impl DstcResult {
    /// Whether the diagnosis implicates a given feature (e.g. `"via45"`).
    pub fn implicates(&self, feature: &str) -> bool {
        self.implicated_features.iter().any(|f| f == feature)
    }
}

/// Runs the Fig. 10 flow: measure, cluster in mismatch space, rule-learn
/// the slow cluster over path features.
///
/// # Errors
///
/// Propagates clustering and rule-learning failures.
pub fn run<R: Rng + ?Sized>(
    generator: &PathGenerator,
    timer: &Timer,
    silicon: &SiliconModel,
    config: &DstcConfig,
    rng: &mut R,
) -> Result<DstcResult, LearnError> {
    let _span = edm_trace::span("core.dstc.run");
    let paths: Vec<TimingPath> = generator.generate_population(config.n_paths, rng);
    let predicted: Vec<f64> = paths.iter().map(|p| timer.path_delay(p)).collect();
    let measured: Vec<f64> = paths.iter().map(|p| silicon.measure(p, rng)).collect();

    // Cluster on relative mismatch — the quantity whose bimodality the
    // engineer sees in the scatter plot.
    let rel_mismatch: Vec<Vec<f64>> =
        predicted.iter().zip(&measured).map(|(&p, &m)| vec![(m - p) / p.max(1.0)]).collect();
    let clustering =
        kmeans(&rel_mismatch, 2, 200, rng).map_err(|e| LearnError::InvalidInput(e.to_string()))?;
    // Identify which cluster is the slow one.
    let mean_of = |c: usize| -> f64 {
        let vals: Vec<f64> = clustering
            .labels
            .iter()
            .zip(&predicted)
            .zip(&measured)
            .filter(|((&l, _), _)| l == c)
            .map(|((_, &p), &m)| m - p)
            .collect();
        edm_linalg::mean(&vals)
    };
    let (m0, m1) = (mean_of(0), mean_of(1));
    let slow_cluster = if m1 >= m0 { 1 } else { 0 };
    let (fast_mismatch, slow_mismatch) = if slow_cluster == 1 { (m0, m1) } else { (m1, m0) };

    let points: Vec<PathPoint> = paths
        .iter()
        .zip(&predicted)
        .zip(&measured)
        .zip(&clustering.labels)
        .map(|(((path, &p), &m), &l)| PathPoint {
            id: path.id,
            predicted: p,
            measured: m,
            cluster: usize::from(l == slow_cluster),
        })
        .collect();

    // Rule-learn the slow cluster over named path features.
    let n_layers = timer.interconnect.n_layers();
    let features: Vec<Vec<f64>> = paths.iter().map(|p| p.features(n_layers)).collect();
    let labels: Vec<i32> = points.iter().map(|pt| pt.cluster as i32).collect();
    let names = TimingPath::feature_names(n_layers);
    let raw_rules = learn_rules(&features, &labels, 1, config.rule_params)?;
    let rules: Vec<String> = raw_rules.iter().map(|r| r.display_with(&names)).collect();
    let mut implicated: Vec<String> = raw_rules
        .iter()
        .flat_map(|r| r.conditions.iter().map(|c| names[c.feature].clone()))
        .collect();
    implicated.sort();
    implicated.dedup();

    Ok(DstcResult {
        points,
        fast_cluster_mismatch: fast_mismatch,
        slow_cluster_mismatch: slow_mismatch,
        rules,
        raw_rules,
        implicated_features: implicated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_timing::silicon::SystematicEffect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn injected_silicon() -> SiliconModel {
        SiliconModel::default()
            .with_effect(SystematicEffect::ViaResistance { lower_layer: 4, extra_ps: 7.0 })
            .with_effect(SystematicEffect::ViaResistance { lower_layer: 5, extra_ps: 7.0 })
    }

    #[test]
    fn recovers_the_injected_via_story() {
        let mut rng = StdRng::seed_from_u64(17);
        let result = run(
            &PathGenerator::default(),
            &Timer::default(),
            &injected_silicon(),
            &DstcConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(
            result.slow_cluster_mismatch > result.fast_cluster_mismatch + 5.0,
            "clusters should separate: fast {} slow {}",
            result.fast_cluster_mismatch,
            result.slow_cluster_mismatch
        );
        assert!(!result.rules.is_empty(), "diagnosis should produce rules");
        assert!(
            result.implicates("via45") || result.implicates("via56"),
            "rules should implicate the injected vias, got {:?}",
            result.rules
        );
    }

    #[test]
    fn clean_silicon_produces_small_cluster_gap() {
        let mut rng = StdRng::seed_from_u64(18);
        let result = run(
            &PathGenerator::default(),
            &Timer::default(),
            &SiliconModel::default(),
            &DstcConfig::default(),
            &mut rng,
        )
        .unwrap();
        // Without a systematic effect, the two "clusters" are just noise
        // halves; the separation is a tiny fraction of typical delay.
        let gap = result.slow_cluster_mismatch - result.fast_cluster_mismatch;
        assert!(gap < 45.0, "noise-only gap was {gap} ps");
    }

    #[test]
    fn cluster_labels_cover_population() {
        let mut rng = StdRng::seed_from_u64(19);
        let config = DstcConfig { n_paths: 100, ..Default::default() };
        let result = run(
            &PathGenerator::default(),
            &Timer::default(),
            &injected_silicon(),
            &config,
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.points.len(), 100);
        assert!(result.points.iter().any(|p| p.cluster == 0));
        assert!(result.points.iter().any(|p| p.cluster == 1));
    }
}
