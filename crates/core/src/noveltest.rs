//! Novel test selection (paper Fig. 6/7, refs \[14\]\[27\]).
//!
//! The constrained-random generator emits a stream of tests; most of
//! them exercise behaviour the simulator has already seen. The flow
//! inserts a one-class SVM between the randomizer and the simulator:
//! tests that look *familiar* — under a normalized spectrum kernel on
//! the instruction stream — are filtered out, and only novel tests are
//! simulated. The paper's result: the same maximum coverage with ~5 %
//! of the simulations.
//!
//! Per the paper, the learner never sees a feature vector: the kernel
//! module (instruction-class n-grams) *is* the domain knowledge.

use edm_kernels::{SpectrumKernel, SpectrumProfile};
use edm_linalg::Matrix;
use edm_svm::{solve_one_class, OneClassParams, SvmError};
use edm_verif::coverage::CoverageMap;
use edm_verif::lsu::LsuSimulator;
use edm_verif::program::Program;
use edm_verif::template::TestTemplate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the novelty-selection flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NovelSelectionConfig {
    /// Tests drawn from the randomizer.
    pub n_tests: usize,
    /// Spectrum-kernel gram size (n-gram length).
    pub ngram: usize,
    /// One-class SVM ν.
    pub nu: f64,
    /// Tests accepted unconditionally before the model starts filtering.
    pub warmup: usize,
    /// Retrain the model after this many new acceptances.
    pub retrain_every: usize,
    /// Novelty margin: accept when the decision value is below this
    /// (0.0 = strict support boundary; small positive = keep slightly
    /// familiar tests too).
    pub margin: f64,
    /// Spectrum-kernel length weighting (> 1 emphasizes long shared
    /// instruction runs, which is what makes rare dependency bursts —
    /// e.g. deep store chains — look novel).
    pub length_weight: f64,
}

impl Default for NovelSelectionConfig {
    fn default() -> Self {
        NovelSelectionConfig {
            n_tests: 2000,
            ngram: 3,
            nu: 0.3,
            warmup: 12,
            retrain_every: 8,
            margin: 0.0,
            length_weight: 2.0,
        }
    }
}

/// One point of a coverage-vs-cost curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Tests simulated so far.
    pub simulated: usize,
    /// Coverage points hit so far.
    pub covered: usize,
    /// Simulated cycles spent so far.
    pub cycles: u64,
}

/// Result of running baseline and filtered flows on the same stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NovelSelectionResult {
    /// Baseline (simulate everything) curve.
    pub baseline: Vec<CurvePoint>,
    /// Novelty-filtered curve.
    pub filtered: Vec<CurvePoint>,
    /// Maximum coverage reached by the baseline.
    pub max_coverage: usize,
    /// Tests the baseline needed to first reach `max_coverage`.
    pub baseline_tests_to_max: usize,
    /// Tests the filtered flow *simulated* to reach `max_coverage`
    /// (`None` if it never did).
    pub filtered_tests_to_max: Option<usize>,
    /// Cycles the baseline spent reaching max coverage.
    pub baseline_cycles_to_max: u64,
    /// Cycles the filtered flow spent reaching max coverage.
    pub filtered_cycles_to_max: Option<u64>,
}

impl NovelSelectionResult {
    /// Fraction of baseline simulation cost saved at equal coverage
    /// (the Fig. 7 "95 % saving"); `None` if the filtered flow fell
    /// short of max coverage.
    pub fn simulation_saving(&self) -> Option<f64> {
        let filtered = self.filtered_cycles_to_max? as f64;
        let baseline = self.baseline_cycles_to_max.max(1) as f64;
        Some(1.0 - filtered / baseline)
    }
}

/// The incremental one-class novelty filter over token sequences.
///
/// Maintains the accepted set, its Gram matrix, and the trained α/ρ;
/// exposed so other flows (and the benches) can reuse it directly.
pub struct NoveltyFilter {
    kernel: SpectrumKernel,
    accepted: Vec<SpectrumProfile>,
    gram: Matrix,
    alpha: Vec<f64>,
    rho: f64,
    params: OneClassParams,
    stale: usize,
    retrain_every: usize,
}

impl NoveltyFilter {
    /// Creates an empty filter with flat gram weighting.
    pub fn new(ngram: usize, nu: f64, retrain_every: usize) -> Self {
        Self::weighted(ngram, 1.0, nu, retrain_every)
    }

    /// Creates an empty filter with length-weighted grams.
    pub fn weighted(ngram: usize, length_weight: f64, nu: f64, retrain_every: usize) -> Self {
        NoveltyFilter {
            kernel: SpectrumKernel::weighted(ngram, length_weight),
            accepted: Vec::new(),
            gram: Matrix::zeros(0, 0),
            alpha: Vec::new(),
            rho: 0.0,
            params: OneClassParams::default().with_nu(nu),
            stale: 0,
            retrain_every: retrain_every.max(1),
        }
    }

    /// Number of accepted (training) sequences.
    pub fn n_accepted(&self) -> usize {
        self.accepted.len()
    }

    /// Decision value for a candidate: negative = novel.
    ///
    /// Scores against the most recent trained model (acceptances since
    /// the last retrain participate in the kernel but not in α).
    pub fn decision(&self, tokens: &[u8]) -> f64 {
        if self.alpha.is_empty() {
            return -1.0; // nothing learned: everything is novel
        }
        let profile = SpectrumProfile::build(tokens, &self.kernel);
        let mut acc = 0.0;
        for (p, &a) in self.accepted[..self.alpha.len()].iter().zip(&self.alpha) {
            if a != 0.0 {
                acc += a * profile.cosine(p);
            }
        }
        acc - self.rho
    }

    /// Accepts a sequence into the model; retrains when due.
    ///
    /// # Errors
    ///
    /// Propagates SMO errors from retraining.
    pub fn accept(&mut self, tokens: Vec<u8>) -> Result<(), SvmError> {
        let profile = SpectrumProfile::build(&tokens, &self.kernel);
        // Grow the Gram matrix by one row/column.
        let n = self.accepted.len();
        let mut g = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                g[(i, j)] = self.gram[(i, j)];
            }
        }
        for (i, item) in self.accepted.iter().enumerate() {
            let v = profile.cosine(item);
            g[(i, n)] = v;
            g[(n, i)] = v;
        }
        g[(n, n)] = profile.cosine(&profile);
        self.gram = g;
        self.accepted.push(profile);
        self.stale += 1;
        if self.stale >= self.retrain_every || self.alpha.is_empty() {
            self.retrain()?;
        }
        Ok(())
    }

    fn retrain(&mut self) -> Result<(), SvmError> {
        let (alpha, rho, _) = solve_one_class(&self.gram, &self.params)?;
        self.alpha = alpha;
        self.rho = rho;
        self.stale = 0;
        Ok(())
    }
}

/// Runs the Fig. 7 experiment: one shared random test stream, consumed
/// by (a) the baseline that simulates everything and (b) the filtered
/// flow that only simulates tests the novelty model accepts.
///
/// # Errors
///
/// Propagates SVM training failures from the filter.
pub fn run<R: Rng + ?Sized>(
    template: &TestTemplate,
    simulator: &LsuSimulator,
    config: &NovelSelectionConfig,
    rng: &mut R,
) -> Result<NovelSelectionResult, SvmError> {
    let _span = edm_trace::span("core.noveltest.run");
    let tests: Vec<_> = (0..config.n_tests).map(|_| template.generate(rng)).collect();
    run_stream(&tests, simulator, config)
}

/// Runs the experiment on a pre-generated stream (e.g. one drawn from a
/// [`edm_verif::template::MixtureTemplate`]).
///
/// # Errors
///
/// Propagates SVM training failures from the filter.
pub fn run_stream(
    tests: &[Program],
    simulator: &LsuSimulator,
    config: &NovelSelectionConfig,
) -> Result<NovelSelectionResult, SvmError> {
    let _span = edm_trace::span("core.noveltest.run_stream");
    let outcomes: Vec<_> = tests.iter().map(|t| simulator.simulate(t)).collect();

    // Baseline: simulate in stream order.
    let mut baseline = Vec::with_capacity(tests.len());
    let mut cov = CoverageMap::new();
    let mut cycles = 0u64;
    for (i, out) in outcomes.iter().enumerate() {
        cov.merge(&out.coverage);
        cycles += out.cycles;
        baseline.push(CurvePoint { simulated: i + 1, covered: cov.n_covered(), cycles });
    }
    let max_coverage = cov.n_covered();
    let first_max = baseline
        .iter()
        .position(|p| p.covered == max_coverage)
        .expect("baseline reaches its own max");
    let baseline_tests_to_max = first_max + 1;
    let baseline_cycles_to_max = baseline[first_max].cycles;

    // Filtered flow: only accepted tests get "simulated" (cost charged).
    let mut filter = NoveltyFilter::weighted(
        config.ngram,
        config.length_weight,
        config.nu,
        config.retrain_every,
    );
    let mut filtered = Vec::new();
    let mut fcov = CoverageMap::new();
    let mut fcycles = 0u64;
    let mut simulated = 0usize;
    for (test, out) in tests.iter().zip(&outcomes) {
        let tokens = test.tokens();
        let accept =
            filter.n_accepted() < config.warmup || filter.decision(&tokens) < config.margin;
        if !accept {
            continue;
        }
        filter.accept(tokens)?;
        simulated += 1;
        fcov.merge(&out.coverage);
        fcycles += out.cycles;
        filtered.push(CurvePoint { simulated, covered: fcov.n_covered(), cycles: fcycles });
    }
    let filtered_to_max = filtered.iter().find(|p| p.covered >= max_coverage);
    Ok(NovelSelectionResult {
        baseline,
        filtered: filtered.clone(),
        max_coverage,
        baseline_tests_to_max,
        filtered_tests_to_max: filtered_to_max.map(|p| p.simulated),
        baseline_cycles_to_max,
        filtered_cycles_to_max: filtered_to_max.map(|p| p.cycles),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn filter_scores_duplicates_as_familiar() {
        let mut f = NoveltyFilter::new(2, 0.3, 4);
        let a = vec![1u8, 2, 3, 4, 5, 6, 1, 2, 3, 4];
        let b = vec![9u8, 9, 8, 8, 7, 7, 9, 9, 8, 8];
        for _ in 0..6 {
            f.accept(a.clone()).unwrap();
            f.accept(b.clone()).unwrap();
        }
        // a and b are inside the support; an unseen alphabet is novel.
        assert!(f.decision(&a) >= 0.0, "duplicate of training data is familiar");
        let novel = vec![100u8, 101, 102, 103, 100, 101, 102, 103, 100, 101];
        assert!(f.decision(&novel) < 0.0, "unseen program is novel");
    }

    #[test]
    fn empty_filter_calls_everything_novel() {
        let f = NoveltyFilter::new(3, 0.2, 5);
        assert!(f.decision(&[1, 2, 3]) < 0.0);
    }

    #[test]
    fn flow_reaches_baseline_coverage_with_fewer_simulations() {
        let template = TestTemplate::default();
        let sim = LsuSimulator::default_config();
        let mut rng = StdRng::seed_from_u64(0);
        let config = NovelSelectionConfig { n_tests: 300, ..Default::default() };
        let result = run(&template, &sim, &config, &mut rng).unwrap();
        assert!(result.max_coverage >= 2);
        let reached = result.filtered_tests_to_max.expect("filtered flow reaches max");
        assert!(
            reached <= result.baseline_tests_to_max,
            "filtered needed {reached}, baseline {}",
            result.baseline_tests_to_max
        );
    }

    #[test]
    fn curves_are_monotone() {
        let template = TestTemplate::default();
        let sim = LsuSimulator::default_config();
        let mut rng = StdRng::seed_from_u64(7);
        let config = NovelSelectionConfig { n_tests: 150, ..Default::default() };
        let result = run(&template, &sim, &config, &mut rng).unwrap();
        for curve in [&result.baseline, &result.filtered] {
            for w in curve.windows(2) {
                assert!(w[1].covered >= w[0].covered);
                assert!(w[1].cycles >= w[0].cycles);
            }
        }
    }
}
