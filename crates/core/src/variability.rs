//! Fast layout-variability prediction (paper Figs. 8–9, ref \[13\]).
//!
//! The golden lithography simulation labels a training set of layout
//! clips good/bad; an SVM over the histogram-intersection kernel on
//! local-density histograms then predicts variability for new clips at a
//! tiny fraction of the simulation cost. The paper trained both a binary
//! SVC and a one-class SVM (good-only training); both are provided.

use std::time::Instant;

use edm_kernels::HistogramIntersectionKernel;
use edm_litho::features::{density_histogram, HistogramSpec};
use edm_litho::layout::{LayoutClip, LayoutGenerator};
use edm_litho::variability::{VariabilityAnalyzer, VariabilityLabel};
use edm_svm::{
    OneClassModel, OneClassParams, OneClassSvm, SvcModel, SvcParams, SvcTrainer, SvmError,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the variability-prediction flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariabilityConfig {
    /// Training clips (labeled by the golden simulator).
    pub n_train: usize,
    /// Held-out evaluation clips.
    pub n_test: usize,
    /// Histogram feature spec.
    pub histogram: HistogramSpec,
    /// SVC box constraint.
    pub svc_c: f64,
    /// One-class ν (trained on good clips only).
    pub one_class_nu: f64,
}

impl Default for VariabilityConfig {
    fn default() -> Self {
        VariabilityConfig {
            n_train: 300,
            n_test: 150,
            histogram: HistogramSpec::default(),
            svc_c: 10.0,
            one_class_nu: 0.15,
        }
    }
}

/// Accuracy of one predictor against the golden labels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorQuality {
    /// Overall agreement with the golden simulation.
    pub accuracy: f64,
    /// Fraction of golden-bad clips flagged (hotspot detection rate —
    /// the quantity Fig. 9 emphasizes: "most of the high variability
    /// areas were correctly identified").
    pub bad_recall: f64,
    /// Fraction of golden-good clips wrongly flagged.
    pub false_alarm_rate: f64,
}

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityResult {
    /// Binary SVC quality.
    pub svc: PredictorQuality,
    /// One-class (good-only) quality.
    pub one_class: PredictorQuality,
    /// Golden-bad fraction in the test set (base rate).
    pub bad_fraction: f64,
    /// Golden simulation wall time per clip (µs).
    pub golden_us_per_clip: f64,
    /// Model prediction wall time per clip, including feature
    /// extraction (µs).
    pub model_us_per_clip: f64,
}

impl VariabilityResult {
    /// How many times faster the model is than the golden simulation.
    pub fn speedup(&self) -> f64 {
        self.golden_us_per_clip / self.model_us_per_clip.max(1e-9)
    }
}

/// A trained fast variability predictor (the deployable artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariabilityPredictor {
    spec: HistogramSpec,
    svc: SvcModel<HistogramIntersectionKernel>,
    one_class: OneClassModel<HistogramIntersectionKernel>,
}

impl VariabilityPredictor {
    /// Predicts whether a clip is hotspot-prone, via the binary model.
    pub fn predict_bad(&self, clip: &LayoutClip) -> bool {
        let h = density_histogram(clip, &self.spec);
        self.svc.predict(&h) > 0.0
    }

    /// One-class view: is the clip unlike the good training clips?
    pub fn is_unfamiliar(&self, clip: &LayoutClip) -> bool {
        let h = density_histogram(clip, &self.spec);
        self.one_class.is_novel(&h)
    }
}

/// Runs the full Fig. 9 experiment: generate clips, label with the
/// golden simulator, train SVC + one-class models on HI-kernel
/// histograms, evaluate on held-out clips, and time both paths.
///
/// Returns the result plus the trained predictor.
///
/// # Errors
///
/// Propagates SVM training failures (e.g. a training draw with a single
/// class — enlarge `n_train`).
pub fn run<R: Rng + ?Sized>(
    generator: &LayoutGenerator,
    analyzer: &VariabilityAnalyzer,
    config: &VariabilityConfig,
    rng: &mut R,
) -> Result<(VariabilityResult, VariabilityPredictor), SvmError> {
    let _span = edm_trace::span("core.variability.run");
    // Generate and label.
    let mut clips = Vec::with_capacity(config.n_train + config.n_test);
    for _ in 0..(config.n_train + config.n_test) {
        clips.push(generator.generate_random(rng).1);
    }
    let golden_start = Instant::now();
    let labels: Vec<VariabilityLabel> = clips.iter().map(|c| analyzer.analyze(c).label).collect();
    let golden_us_per_clip = golden_start.elapsed().as_micros() as f64 / clips.len() as f64;

    let histograms: Vec<Vec<f64>> =
        clips.iter().map(|c| density_histogram(c, &config.histogram)).collect();
    let (train_h, test_h) = histograms.split_at(config.n_train);
    let (train_l, test_l) = labels.split_at(config.n_train);

    // Binary SVC on ±1 labels.
    let y: Vec<f64> =
        train_l.iter().map(|&l| if l == VariabilityLabel::Bad { 1.0 } else { -1.0 }).collect();
    let svc = SvcTrainer::new(SvcParams::default().with_c(config.svc_c))
        .kernel(HistogramIntersectionKernel::new())
        .fit(train_h, &y)?;

    // One-class on the good clips only.
    let good_h: Vec<Vec<f64>> = train_h
        .iter()
        .zip(train_l)
        .filter(|&(_, &l)| l == VariabilityLabel::Good)
        .map(|(h, _)| h.clone())
        .collect();
    let one_class = OneClassSvm::new(OneClassParams::default().with_nu(config.one_class_nu))
        .kernel(HistogramIntersectionKernel::new())
        .fit(&good_h)?;

    // Evaluate on the held-out clips (timed).
    let model_start = Instant::now();
    let svc_pred: Vec<bool> = test_h.iter().map(|h| svc.predict(h) > 0.0).collect();
    let oc_pred: Vec<bool> = test_h.iter().map(|h| one_class.is_novel(h)).collect();
    let model_us_per_clip =
        model_start.elapsed().as_micros() as f64 / (2 * test_h.len()).max(1) as f64;

    let quality = |pred: &[bool]| -> PredictorQuality {
        let mut correct = 0usize;
        let mut bad_total = 0usize;
        let mut bad_caught = 0usize;
        let mut good_total = 0usize;
        let mut false_alarms = 0usize;
        for (&p, &l) in pred.iter().zip(test_l) {
            let is_bad = l == VariabilityLabel::Bad;
            if p == is_bad {
                correct += 1;
            }
            if is_bad {
                bad_total += 1;
                if p {
                    bad_caught += 1;
                }
            } else {
                good_total += 1;
                if p {
                    false_alarms += 1;
                }
            }
        }
        PredictorQuality {
            accuracy: correct as f64 / pred.len().max(1) as f64,
            bad_recall: bad_caught as f64 / bad_total.max(1) as f64,
            false_alarm_rate: false_alarms as f64 / good_total.max(1) as f64,
        }
    };

    let bad_fraction = test_l.iter().filter(|&&l| l == VariabilityLabel::Bad).count() as f64
        / test_l.len().max(1) as f64;

    let result = VariabilityResult {
        svc: quality(&svc_pred),
        one_class: quality(&oc_pred),
        bad_fraction,
        golden_us_per_clip,
        model_us_per_clip,
    };
    let predictor = VariabilityPredictor { spec: config.histogram, svc, one_class };
    Ok((result, predictor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn model_tracks_golden_labels_and_is_faster() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = VariabilityConfig { n_train: 120, n_test: 60, ..Default::default() };
        let (result, predictor) =
            run(&LayoutGenerator::default(), &VariabilityAnalyzer::default(), &config, &mut rng)
                .unwrap();
        assert!(result.svc.accuracy > 0.75, "svc accuracy {} too low", result.svc.accuracy);
        assert!(
            result.svc.bad_recall > 0.7,
            "hotspot recall {} too low (bad fraction {})",
            result.svc.bad_recall,
            result.bad_fraction
        );
        assert!(result.speedup() > 3.0, "speedup {}", result.speedup());
        // The deployable predictor agrees with itself.
        let clip = LayoutGenerator::default().generate_random(&mut rng).1;
        let _ = predictor.predict_bad(&clip);
        let _ = predictor.is_unfamiliar(&clip);
    }
}
