//! The difficult case: test-cost reduction with a guarantee demand
//! (paper Fig. 12, §4, ref \[33\]).
//!
//! This flow deliberately reproduces a *negative* result. On the first
//! production window, test A is 0.97/0.96-correlated with tests 1 and 2
//! and every A-fail is also caught by test 1 or 2, so any reasonable
//! mining analysis recommends dropping A. Then production continues, a
//! rare tail mechanism appears, and chips fail A *only* — the escapes
//! (yellow dots) that make "guarantee ≤ 1 escape per 0.5 M" an
//! impossible promise to mine from phase-1 data. The paper's lesson:
//! when the formulation demands a stringent guaranteed result, data
//! mining is the wrong tool.

use edm_linalg::stats;
use edm_mfgtest::product::{Device, ProductModel};
use edm_mfgtest::testflow::TestFlow;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the Fig. 12 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestCostConfig {
    /// Chips in the analysis window (paper: 1 M).
    pub phase1_chips: usize,
    /// Chips produced after the drop decision (paper: 0.5 M).
    pub phase2_chips: usize,
    /// Tail-mechanism rate in phase 2 (ppm-scale).
    pub tail_rate: f64,
    /// Tail shift applied to test A (in units of test-A spread).
    pub tail_shift_sigmas: f64,
    /// Correlation above which a test is deemed redundant.
    pub corr_threshold: f64,
}

impl Default for TestCostConfig {
    fn default() -> Self {
        TestCostConfig {
            phase1_chips: 200_000,
            phase2_chips: 100_000,
            tail_rate: 1e-4,
            tail_shift_sigmas: 6.0,
            corr_threshold: 0.95,
        }
    }
}

/// The mining analysis of one candidate test over phase-1 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropAnalysis {
    /// Candidate test index.
    pub test: usize,
    /// Candidate test name.
    pub test_name: String,
    /// Correlations with the covering tests, `(name, r)`.
    pub correlations: Vec<(String, f64)>,
    /// Phase-1 fails of the candidate test.
    pub fails: usize,
    /// Phase-1 fails caught by the candidate *only* (unique catches).
    pub unique_catches: usize,
    /// The mining recommendation.
    pub recommend_drop: bool,
}

/// Result of the two-phase experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCostResult {
    /// Phase-1 analysis that justified the drop.
    pub analysis: DropAnalysis,
    /// Phase-2 chips produced.
    pub phase2_chips: usize,
    /// Phase-2 escapes: chips that pass the reduced program but fail
    /// the dropped test (the yellow dots).
    pub escapes: usize,
    /// Of those, how many carry the (ground-truth) tail mechanism.
    pub escapes_from_tail_mechanism: usize,
}

/// Runs the Fig. 12 experiment for dropping `test_A`.
///
/// # Panics
///
/// Panics if the product model has fewer than three tests (cannot
/// happen with [`ProductModel::automotive`]).
pub fn run<R: Rng + ?Sized>(config: &TestCostConfig, rng: &mut R) -> TestCostResult {
    let _span = edm_trace::span("core.testcost.run");
    let clean = ProductModel::automotive().with_defect_rate(0.0);
    let test_a = clean.test_index("test_A").expect("model has test_A");
    let covering = [
        clean.test_index("test_1").expect("model has test_1"),
        clean.test_index("test_2").expect("model has test_2"),
    ];

    // Phase 1: the analysis window. No tail mechanism exists yet.
    let phase1: Vec<Device> = (0..config.phase1_chips)
        .map(|i| clean.generate_device(i as u64, (i / 25_000) as u32, rng))
        .collect();
    let flow = TestFlow::new(clean.spec_limits().to_vec());

    // Mining analysis: correlation + unique-catch audit.
    let col = |devices: &[Device], t: usize| -> Vec<f64> {
        devices.iter().map(|d| d.measurements[t]).collect()
    };
    let a_col = col(&phase1, test_a);
    let correlations: Vec<(String, f64)> = covering
        .iter()
        .map(|&t| (clean.test_names()[t].clone(), stats::pearson(&a_col, &col(&phase1, t))))
        .collect();
    let fails = phase1.iter().filter(|d| flow.failing_tests_full(d).contains(&test_a)).count();
    let unique = flow.unique_catches(&phase1, test_a).len();
    let recommend =
        unique == 0 && correlations.iter().all(|&(_, r)| r.abs() >= config.corr_threshold);
    let analysis = DropAnalysis {
        test: test_a,
        test_name: clean.test_names()[test_a].clone(),
        correlations,
        fails,
        unique_catches: unique,
        recommend_drop: recommend,
    };

    // Act on the recommendation.
    let mut reduced = TestFlow::new(clean.spec_limits().to_vec());
    if analysis.recommend_drop {
        reduced.drop_test(test_a);
    }

    // Phase 2: production continues; the tail mechanism appears.
    let spread = {
        // test A marginal sigma from phase 1
        edm_linalg::variance(&a_col).sqrt()
    };
    let tail_product = ProductModel::automotive()
        .with_defect_rate(0.0)
        .with_tail_mechanism(config.tail_rate, config.tail_shift_sigmas * spread);
    let phase2: Vec<Device> = (0..config.phase2_chips)
        .map(|i| {
            tail_product.generate_device(
                (config.phase1_chips + i) as u64,
                (i / 25_000) as u32 + 40,
                rng,
            )
        })
        .collect();

    // Escapes: pass the reduced program, but the dropped test would have
    // failed them.
    let mut escapes = 0usize;
    let mut from_tail = 0usize;
    for d in &phase2 {
        if reduced.passes(d) && flow.failing_tests_full(d).contains(&test_a) {
            escapes += 1;
            if d.tail_mechanism {
                from_tail += 1;
            }
        }
    }
    TestCostResult {
        analysis,
        phase2_chips: config.phase2_chips,
        escapes,
        escapes_from_tail_mechanism: from_tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phase1_data_justifies_the_drop() {
        let mut rng = StdRng::seed_from_u64(33);
        let config = TestCostConfig {
            phase1_chips: 40_000,
            phase2_chips: 20_000,
            tail_rate: 5e-4,
            ..Default::default()
        };
        let result = run(&config, &mut rng);
        assert!(result.analysis.recommend_drop, "{:?}", result.analysis);
        for (name, r) in &result.analysis.correlations {
            assert!(*r > 0.95, "corr with {name} was {r}");
        }
        assert_eq!(result.analysis.unique_catches, 0);
    }

    #[test]
    fn phase2_produces_escapes_anyway() {
        let mut rng = StdRng::seed_from_u64(34);
        let config = TestCostConfig {
            phase1_chips: 40_000,
            phase2_chips: 40_000,
            tail_rate: 1e-3,
            ..Default::default()
        };
        let result = run(&config, &mut rng);
        assert!(
            result.escapes > 0,
            "the tail mechanism must produce escapes (the paper's yellow dots)"
        );
        // The escapes are the new mechanism, not noise.
        assert!(
            result.escapes_from_tail_mechanism * 10 >= result.escapes * 9,
            "escapes {} vs from-tail {}",
            result.escapes,
            result.escapes_from_tail_mechanism
        );
    }

    #[test]
    fn without_tail_mechanism_the_drop_is_safe() {
        let mut rng = StdRng::seed_from_u64(35);
        let config = TestCostConfig {
            phase1_chips: 30_000,
            phase2_chips: 30_000,
            tail_rate: 0.0,
            ..Default::default()
        };
        let result = run(&config, &mut rng);
        // A handful of correlation-tail escapes may occur, but nothing
        // mechanism-driven.
        assert_eq!(result.escapes_from_tail_mechanism, 0);
        assert!(result.escapes <= 3, "unexpected escape count {}", result.escapes);
    }
}
