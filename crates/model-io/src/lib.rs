//! # edm-model-io — the versioned binary container for trained models
//!
//! Defines the on-disk format that lets a model trained in one process
//! be served by any other (the ROADMAP's "train once, serve many"
//! unlock). This crate is deliberately **dependency-free**: it knows
//! nothing about kernels, predictors, or serde — only bytes. The
//! facade crate (`edm::persist`) layers per-family encoders on top.
//!
//! ## Container layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"EDMM"
//! 4       2     schema version (u16, currently 1)
//! 6       2     family tag length F (u16)
//! 8       F     family tag (UTF-8, e.g. "svc")
//! 8+F     4     section count S (u32)
//!               then S sections, each:
//!                 2     name length N (u16)
//!                 N     section name (UTF-8)
//!                 8     payload length P (u64)
//!                 P     payload bytes
//!                 4     CRC-32 of the payload
//! EOF-4   4     file CRC-32 over every preceding byte
//! ```
//!
//! Every section payload carries its own CRC so a flipped byte is
//! pinned to the section it corrupted; the trailing file CRC catches
//! truncation and header damage. Floats are stored via
//! [`f64::to_bits`], so a save → load round trip is bitwise exact —
//! the property the workspace proptests pin for all nine `Predictor`
//! families.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// The four magic bytes opening every model file.
pub const MAGIC: [u8; 4] = *b"EDMM";

/// The schema version this crate writes (and the newest it can read).
pub const SCHEMA_VERSION: u16 = 1;

/// Hard cap on a single section payload (256 MiB) — a corrupted length
/// field must not trigger an enormous allocation.
const MAX_SECTION_BYTES: u64 = 256 * 1024 * 1024;

/// Hard cap on declared element counts inside a payload, used before
/// `Vec::with_capacity` so a corrupted count fails cleanly instead of
/// aborting on an over-large allocation.
const MAX_ELEMS: u64 = 64 * 1024 * 1024;

/// Errors raised while reading or writing a model container.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// The file does not start with [`MAGIC`] — not a model file.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's schema version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build reads ([`SCHEMA_VERSION`]).
        supported: u16,
    },
    /// A section payload failed its CRC-32 check.
    SectionChecksum {
        /// Section whose payload was corrupted.
        section: String,
        /// CRC recorded in the file.
        expected: u32,
        /// CRC recomputed from the payload.
        found: u32,
    },
    /// The trailing whole-file CRC-32 did not match.
    FileChecksum {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC recomputed over the file body.
        found: u32,
    },
    /// The file ended before a declared structure was complete.
    Truncated {
        /// What was being read when bytes ran out.
        context: &'static str,
    },
    /// A decoder asked for a section the file does not contain.
    MissingSection {
        /// The absent section's name.
        section: String,
    },
    /// A payload decoded to something structurally impossible.
    Malformed {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The underlying reader or writer failed.
    Io(std::io::Error),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::BadMagic { found } => {
                write!(f, "not a model file: magic {found:?} != {MAGIC:?}")
            }
            IoError::UnsupportedVersion { found, supported } => {
                write!(f, "model schema version {found} is newer than supported {supported}")
            }
            IoError::SectionChecksum { section, expected, found } => write!(
                f,
                "section {section:?} corrupted: crc {found:#010x} != recorded {expected:#010x}"
            ),
            IoError::FileChecksum { expected, found } => {
                write!(f, "file corrupted: crc {found:#010x} != recorded {expected:#010x}")
            }
            IoError::Truncated { context } => write!(f, "file truncated while reading {context}"),
            IoError::MissingSection { section } => {
                write!(f, "required section {section:?} missing")
            }
            IoError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            IoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Computes the CRC-32 (ISO-HDLC, polynomial `0xEDB88320` reflected —
/// the zlib/PNG checksum) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state ^= u32::from(b);
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

/// An append-only little-endian encode buffer for one section payload.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty payload buffer.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` bitwise ([`f64::to_bits`]), preserving NaN
    /// payloads and signed zeros exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed `i32` slice.
    pub fn put_i32s(&mut self, v: &[i32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_i32(x);
        }
    }

    /// Appends a row-major rectangular (or ragged) `f64` matrix as a
    /// row count followed by each row as a length-prefixed slice.
    pub fn put_rows(&mut self, rows: &[Vec<f64>]) {
        self.put_usize(rows.len());
        for r in rows {
            self.put_f64s(r);
        }
    }
}

/// A cursor decoding one section payload written by [`Enc`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], IoError> {
        let end = self.pos.checked_add(n).ok_or(IoError::Truncated { context })?;
        if end > self.buf.len() {
            return Err(IoError::Truncated { context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole payload was consumed — catches encoder /
    /// decoder drift within a schema version.
    pub fn finish(self) -> Result<(), IoError> {
        if self.remaining() != 0 {
            return Err(IoError::Malformed {
                detail: format!(
                    "section {:?} has {} trailing bytes after decode",
                    self.section,
                    self.remaining()
                ),
            });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, IoError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, IoError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, IoError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| IoError::Malformed {
            detail: format!("length {v} does not fit this platform's usize"),
        })
    }

    fn get_count(&mut self, what: &str) -> Result<usize, IoError> {
        let v = self.get_u64()?;
        if v > MAX_ELEMS {
            return Err(IoError::Malformed { detail: format!("{what} count {v} exceeds cap") });
        }
        Ok(v as usize)
    }

    /// Reads an `i32`.
    pub fn get_i32(&mut self) -> Result<i32, IoError> {
        let b = self.take(4, "i32")?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f64` stored bitwise.
    pub fn get_f64(&mut self) -> Result<f64, IoError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool.
    pub fn get_bool(&mut self) -> Result<bool, IoError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, IoError> {
        let n = self.get_count("string byte")?;
        let b = self.take(n, "string")?;
        String::from_utf8(b.to_vec())
            .map_err(|_| IoError::Malformed { detail: "string is not UTF-8".into() })
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, IoError> {
        let n = self.get_count("f64")?;
        let mut v = Vec::with_capacity(n.min(MAX_ELEMS as usize));
        for _ in 0..n {
            v.push(self.get_f64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `i32` slice.
    pub fn get_i32s(&mut self) -> Result<Vec<i32>, IoError> {
        let n = self.get_count("i32")?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_i32()?);
        }
        Ok(v)
    }

    /// Reads a matrix written by [`Enc::put_rows`].
    pub fn get_rows(&mut self) -> Result<Vec<Vec<f64>>, IoError> {
        let n = self.get_count("row")?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(self.get_f64s()?);
        }
        Ok(rows)
    }
}

/// Builds a model container section by section, then serializes it.
#[derive(Debug)]
pub struct ModelWriter {
    family: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl ModelWriter {
    /// Starts a container for the given family tag (e.g. `"svc"`).
    pub fn new(family: &str) -> Self {
        ModelWriter { family: family.to_string(), sections: Vec::new() }
    }

    /// Appends a named section with the payload encoded in `enc`.
    /// Section order is preserved; names must be unique.
    pub fn add_section(&mut self, name: &str, enc: Enc) {
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section {name:?}"
        );
        self.sections.push((name.to_string(), enc.buf));
    }

    /// Serializes the container to `w` (header, sections with per-payload
    /// CRCs, trailing file CRC).
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] if the writer fails; [`IoError::Malformed`] if a
    /// name or payload exceeds the format's length fields.
    pub fn write_to(&self, w: &mut dyn Write) -> Result<(), IoError> {
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC);
        body.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        let fam_len = u16::try_from(self.family.len())
            .map_err(|_| IoError::Malformed { detail: "family tag too long".into() })?;
        body.extend_from_slice(&fam_len.to_le_bytes());
        body.extend_from_slice(self.family.as_bytes());
        let n_sections = u32::try_from(self.sections.len())
            .map_err(|_| IoError::Malformed { detail: "too many sections".into() })?;
        body.extend_from_slice(&n_sections.to_le_bytes());
        for (name, payload) in &self.sections {
            let name_len = u16::try_from(name.len())
                .map_err(|_| IoError::Malformed { detail: "section name too long".into() })?;
            if payload.len() as u64 > MAX_SECTION_BYTES {
                return Err(IoError::Malformed {
                    detail: format!("section {name:?} exceeds {MAX_SECTION_BYTES} bytes"),
                });
            }
            body.extend_from_slice(&name_len.to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            body.extend_from_slice(payload);
            body.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let file_crc = crc32(&body);
        w.write_all(&body)?;
        w.write_all(&file_crc.to_le_bytes())?;
        Ok(())
    }

    /// Serializes the container to a fresh byte vector.
    ///
    /// # Errors
    ///
    /// As for [`ModelWriter::write_to`].
    pub fn to_bytes(&self) -> Result<Vec<u8>, IoError> {
        let mut out = Vec::new();
        self.write_to(&mut out)?;
        Ok(out)
    }
}

/// A fully parsed, checksum-verified model container.
#[derive(Debug)]
pub struct ModelReader {
    family: String,
    version: u16,
    checksum: u32,
    sections: BTreeMap<String, Vec<u8>>,
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], IoError> {
        let end = self.pos.checked_add(n).ok_or(IoError::Truncated { context })?;
        if end > self.buf.len() {
            return Err(IoError::Truncated { context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn get_u16(&mut self, context: &'static str) -> Result<u16, IoError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u32(&mut self, context: &'static str) -> Result<u32, IoError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self, context: &'static str) -> Result<u64, IoError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

impl ModelReader {
    /// Reads and validates a container from `r` (reads to EOF).
    ///
    /// Validation order: magic → schema version → file CRC → per-section
    /// CRCs, so the most fundamental failure is the one reported.
    ///
    /// # Errors
    ///
    /// Any [`IoError`] variant; see the container layout in the crate
    /// docs for what each protects.
    pub fn from_reader(r: &mut dyn Read) -> Result<Self, IoError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Reads and validates a container from an in-memory byte slice.
    ///
    /// # Errors
    ///
    /// As for [`ModelReader::from_reader`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IoError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        let magic = c.take(4, "magic")?;
        if magic != MAGIC {
            return Err(IoError::BadMagic { found: [magic[0], magic[1], magic[2], magic[3]] });
        }
        let version = c.get_u16("schema version")?;
        if version > SCHEMA_VERSION {
            return Err(IoError::UnsupportedVersion { found: version, supported: SCHEMA_VERSION });
        }
        // Whole-file CRC first: it distinguishes truncation/corruption
        // from structural decode errors in everything below.
        if bytes.len() < 4 + 2 + 4 {
            return Err(IoError::Truncated { context: "file trailer" });
        }
        let body = &bytes[..bytes.len() - 4];
        let tail = &bytes[bytes.len() - 4..];
        let expected = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        let found = crc32(body);
        if expected != found {
            return Err(IoError::FileChecksum { expected, found });
        }
        let fam_len = c.get_u16("family tag length")? as usize;
        let fam = c.take(fam_len, "family tag")?;
        let family = String::from_utf8(fam.to_vec())
            .map_err(|_| IoError::Malformed { detail: "family tag is not UTF-8".into() })?;
        let n_sections = c.get_u32("section count")?;
        let mut sections = BTreeMap::new();
        for _ in 0..n_sections {
            let name_len = c.get_u16("section name length")? as usize;
            let name_bytes = c.take(name_len, "section name")?;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| IoError::Malformed { detail: "section name is not UTF-8".into() })?;
            let payload_len = c.get_u64("section payload length")?;
            if payload_len > MAX_SECTION_BYTES {
                return Err(IoError::Malformed {
                    detail: format!("section {name:?} declares {payload_len} bytes"),
                });
            }
            let payload = c.take(payload_len as usize, "section payload")?.to_vec();
            let recorded = c.get_u32("section crc")?;
            let actual = crc32(&payload);
            if recorded != actual {
                return Err(IoError::SectionChecksum {
                    section: name,
                    expected: recorded,
                    found: actual,
                });
            }
            if sections.insert(name.clone(), payload).is_some() {
                return Err(IoError::Malformed { detail: format!("duplicate section {name:?}") });
            }
        }
        if c.pos != body.len() {
            return Err(IoError::Malformed {
                detail: format!("{} trailing bytes after last section", body.len() - c.pos),
            });
        }
        Ok(ModelReader { family, version, checksum: expected, sections })
    }

    /// The family tag recorded in the header (e.g. `"ridge"`).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The schema version the file was written with.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The whole-file CRC-32 — a stable fingerprint of the saved model,
    /// reported by `edm-serve`'s `/v1/models`.
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// Names of all sections present, in sorted order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// Opens a decoding cursor over the named section.
    ///
    /// # Errors
    ///
    /// [`IoError::MissingSection`] if absent.
    pub fn section(&self, name: &str) -> Result<Dec<'_>, IoError> {
        match self.sections.get_key_value(name) {
            Some((k, payload)) => Ok(Dec { buf: payload, pos: 0, section: k }),
            None => Err(IoError::MissingSection { section: name.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the ISO-HDLC CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_container() -> Vec<u8> {
        let mut w = ModelWriter::new("svc");
        let mut e = Enc::new();
        e.put_f64(1.5);
        e.put_f64(-0.0);
        e.put_f64(f64::NAN);
        e.put_usize(7);
        e.put_str("hello");
        w.add_section("params", e);
        let mut m = Enc::new();
        m.put_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.put_i32s(&[-1, 5]);
        w.add_section("weights", m);
        w.to_bytes().unwrap()
    }

    #[test]
    fn round_trip_is_bitwise() {
        let bytes = sample_container();
        let r = ModelReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.family(), "svc");
        assert_eq!(r.version(), SCHEMA_VERSION);
        let mut d = r.section("params").unwrap();
        assert_eq!(d.get_f64().unwrap(), 1.5);
        let neg_zero = d.get_f64().unwrap();
        assert_eq!(neg_zero.to_bits(), (-0.0f64).to_bits());
        assert!(d.get_f64().unwrap().is_nan());
        assert_eq!(d.get_usize().unwrap(), 7);
        assert_eq!(d.get_str().unwrap(), "hello");
        d.finish().unwrap();
        let mut d = r.section("weights").unwrap();
        assert_eq!(d.get_rows().unwrap(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(d.get_i32s().unwrap(), vec![-1, 5]);
        d.finish().unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_container();
        bytes[0] = b'X';
        assert!(matches!(ModelReader::from_bytes(&bytes), Err(IoError::BadMagic { .. })));
    }

    #[test]
    fn future_version_rejected() {
        let mut w = ModelWriter::new("svc");
        w.add_section("params", Enc::new());
        let mut bytes = w.to_bytes().unwrap();
        // Bump the version field and re-seal the file CRC so only the
        // version check can fire.
        bytes[4] = 0xFF;
        let n = bytes.len();
        let fixed = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            ModelReader::from_bytes(&bytes),
            Err(IoError::UnsupportedVersion { supported: SCHEMA_VERSION, .. })
        ));
    }

    #[test]
    fn flipped_byte_fails_file_crc() {
        let mut bytes = sample_container();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(ModelReader::from_bytes(&bytes), Err(IoError::FileChecksum { .. })));
    }

    #[test]
    fn flipped_payload_with_resealed_file_crc_fails_section_crc() {
        let mut w = ModelWriter::new("f");
        let mut e = Enc::new();
        e.put_f64s(&[1.0, 2.0, 3.0]);
        w.add_section("data", e);
        let mut bytes = w.to_bytes().unwrap();
        // Flip one payload byte, then re-seal the outer CRC so the
        // per-section check is what catches it.
        let flip_at = bytes.len() - 4 - 4 - 8;
        bytes[flip_at] ^= 0x01;
        let n = bytes.len();
        let fixed = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            ModelReader::from_bytes(&bytes),
            Err(IoError::SectionChecksum { .. })
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = sample_container();
        for n in 0..bytes.len() {
            let err = ModelReader::from_bytes(&bytes[..n]);
            assert!(err.is_err(), "prefix of {n} bytes must not parse");
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let r = ModelReader::from_bytes(&sample_container()).unwrap();
        assert!(matches!(
            r.section("nope"),
            Err(IoError::MissingSection { section }) if section == "nope"
        ));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let r = ModelReader::from_bytes(&sample_container()).unwrap();
        let mut d = r.section("params").unwrap();
        let _ = d.get_f64().unwrap();
        assert!(matches!(d.finish(), Err(IoError::Malformed { .. })));
    }

    #[test]
    fn checksum_is_stable_fingerprint() {
        let a = sample_container();
        let b = sample_container();
        assert_eq!(
            ModelReader::from_bytes(&a).unwrap().checksum(),
            ModelReader::from_bytes(&b).unwrap().checksum()
        );
    }
}
