//! Descriptive statistics over sample matrices and paired vectors.
//!
//! These back the paper's data-analysis workflows: Pearson correlation
//! (the 0.97/0.96 correlations of Fig. 12), covariance matrices (for the
//! discriminant-analysis density estimates of Eq. 1, PCA and Mahalanobis
//! outlier screening), and quantiles (for test-limit setting in
//! `edm-mfgtest`).

use crate::Matrix;

/// Pearson correlation coefficient of two paired samples.
///
/// Returns `0.0` when either sample has (near-)zero variance or fewer than
/// two points, rather than NaN, so downstream ranking logic stays total.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = crate::mean(x);
    let my = crate::mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let denom = (sxx * syy).sqrt();
    if denom < 1e-300 {
        0.0
    } else {
        sxy / denom
    }
}

/// Column means of a sample matrix (one row per sample).
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let (n, d) = x.shape();
    let mut means = vec![0.0; d];
    for row in x.iter_rows() {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    if n > 0 {
        for m in &mut means {
            *m /= n as f64;
        }
    }
    means
}

/// Column standard deviations (unbiased), `0.0` for constant columns.
pub fn column_stds(x: &Matrix) -> Vec<f64> {
    let (n, d) = x.shape();
    if n < 2 {
        return vec![0.0; d];
    }
    let means = column_means(x);
    let mut acc = vec![0.0; d];
    for row in x.iter_rows() {
        for ((a, &v), &m) in acc.iter_mut().zip(row).zip(&means) {
            let dvi = v - m;
            *a += dvi * dvi;
        }
    }
    acc.into_iter().map(|s| (s / (n - 1) as f64).sqrt()).collect()
}

/// Unbiased sample covariance matrix of a sample matrix (rows = samples).
///
/// Returns the `d x d` zero matrix when there are fewer than two samples.
pub fn covariance(x: &Matrix) -> Matrix {
    let (n, d) = x.shape();
    if n < 2 {
        return Matrix::zeros(d, d);
    }
    let means = column_means(x);
    let mut cov = Matrix::zeros(d, d);
    for row in x.iter_rows() {
        for i in 0..d {
            let di = row[i] - means[i];
            if di == 0.0 {
                continue;
            }
            for j in i..d {
                cov[(i, j)] += di * (row[j] - means[j]);
            }
        }
    }
    let f = 1.0 / (n - 1) as f64;
    for i in 0..d {
        for j in i..d {
            cov[(i, j)] *= f;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    cov
}

/// Pearson correlation matrix of a sample matrix (rows = samples).
///
/// Constant columns produce zero off-diagonal correlations and a unit
/// diagonal.
pub fn correlation_matrix(x: &Matrix) -> Matrix {
    let cov = covariance(x);
    let d = cov.rows();
    let mut corr = Matrix::identity(d);
    for i in 0..d {
        for j in (i + 1)..d {
            let denom = (cov[(i, i)] * cov[(j, j)]).sqrt();
            let r = if denom < 1e-300 { 0.0 } else { cov[(i, j)] / denom };
            corr[(i, j)] = r;
            corr[(j, i)] = r;
        }
    }
    corr
}

/// Empirical quantile by linear interpolation, `q` in `[0, 1]`.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the data contains NaN.
pub fn quantile(sample: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1], got {q}");
    if sample.is_empty() {
        return None;
    }
    let mut s = sample.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(s[lo] + frac * (s[hi] - s[lo]))
}

/// Median (the 0.5 quantile). `None` for an empty sample.
pub fn median(sample: &[f64]) -> Option<f64> {
    quantile(sample, 0.5)
}

/// Median absolute deviation, scaled by 1.4826 to be a consistent
/// σ-estimator for normal data. `None` for an empty sample.
///
/// The robust spread estimate used for outlier limits in `edm-mfgtest`
/// ("robust limits" are standard practice in part-average testing).
pub fn mad(sample: &[f64]) -> Option<f64> {
    let med = median(sample)?;
    let deviations: Vec<f64> = sample.iter().map(|x| (x - med).abs()).collect();
    median(&deviations).map(|m| 1.4826 * m)
}

/// Histogram of `sample` over `bins` equal-width bins spanning
/// `[lo, hi]`; values outside the range are clamped into the end bins.
///
/// Used to build the density-histogram features behind the paper's
/// histogram-intersection kernel (Fig. 9).
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(sample: &[f64], bins: usize, lo: f64, hi: f64) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut h = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &v in sample {
        let idx = (((v - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize;
        h[idx] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn covariance_known() {
        // Two perfectly correlated columns.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let c = covariance(&x);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        let corr = correlation_matrix(&x);
        assert!((corr[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn column_stats() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(column_means(&x), vec![2.0, 10.0]);
        let s = column_stds(&x);
        assert!((s[0] - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 1.0), Some(4.0));
        assert_eq!(median(&s), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn mad_of_normal_like_sample() {
        // MAD of {1..7} around median 4 is 2 -> scaled 2.9652
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert!((mad(&s).unwrap() - 2.0 * 1.4826).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = histogram(&[-5.0, 0.1, 0.5, 0.9, 99.0], 2, 0.0, 1.0);
        // 0.5 lands exactly on the second bin's lower edge.
        assert_eq!(h, vec![2, 3]);
    }
}
