use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Householder QR factorization `A = Q R` for an `m x n` matrix with
/// `m >= n`.
///
/// Primarily used for least-squares solves in `edm-learn` (the paper's
/// "LSF" baseline regressor family) where the normal equations would lose
/// precision.
///
/// # Example
///
/// ```
/// use edm_linalg::Matrix;
///
/// // Overdetermined system: best fit of y = 2x through (1,2.1), (2,3.9), (3,6.0)
/// let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
/// let coef = a.qr().solve_least_squares(&[2.1, 3.9, 6.0]);
/// assert!((coef[0] - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factorizes `a` using Householder reflections.
    ///
    /// `Q` is returned in its thin `m x n` form and `R` as `n x n`.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() < a.cols()` (underdetermined systems are not
    /// supported).
    pub fn new(a: &Matrix) -> Self {
        let (m, n) = a.shape();
        assert!(m >= n, "QR requires rows >= cols, got {m}x{n}");
        let mut r = a.clone();
        // Accumulate Q as a full m x m product, then thin it.
        let mut q = Matrix::identity(m);
        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            for i in k..m {
                v[i] = r[(i, k)];
            }
            v[k] -= alpha;
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 < 1e-300 {
                continue;
            }
            // Apply H = I - 2 v vᵀ / ‖v‖² to R (columns k..n).
            for c in k..n {
                let mut s = 0.0;
                for i in k..m {
                    s += v[i] * r[(i, c)];
                }
                let f = 2.0 * s / vnorm2;
                for i in k..m {
                    r[(i, c)] -= f * v[i];
                }
            }
            // Accumulate into Q: Q = Q H (apply H on the right).
            for row in 0..m {
                let mut s = 0.0;
                for i in k..m {
                    s += q[(row, i)] * v[i];
                }
                let f = 2.0 * s / vnorm2;
                for i in k..m {
                    q[(row, i)] -= f * v[i];
                }
            }
        }
        // Thin Q to m x n and R to n x n.
        let idx_rows: Vec<usize> = (0..m).collect();
        let idx_cols: Vec<usize> = (0..n).collect();
        let q_thin = q.select(&idx_rows, &idx_cols);
        let r_thin = r.select(&idx_cols, &idx_cols);
        Qr { q: q_thin, r: r_thin }
    }

    /// The thin orthonormal factor `Q` (`m x n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves `min_x ‖A x - b‖₂` via `R x = Qᵀ b`.
    ///
    /// Rank-deficient columns (zero diagonal in `R`) get coefficient 0.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != Q.rows()`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.q.rows(), "rhs length mismatch");
        let qtb = self.q.vec_mat(b);
        let n = self.r.rows();
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let d = self.r[(i, i)];
            if d.abs() < 1e-12 {
                x[i] = 0.0;
                continue;
            }
            let mut s = qtb[i];
            for k in (i + 1)..n {
                s -= self.r[(i, k)] * x[k];
            }
            x[i] = s / d;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_is_orthonormal_and_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![12.0, -51.0, 4.0],
            vec![6.0, 167.0, -68.0],
            vec![-4.0, 24.0, -41.0],
        ]);
        let qr = a.qr();
        let qtq = qr.q().transpose().mat_mul(qr.q());
        assert!((&qtq - &Matrix::identity(3)).max_abs() < 1e-10);
        let recon = qr.q().mat_mul(qr.r());
        assert!((&recon - &a).max_abs() < 1e-9);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0], vec![7.0, 8.5]]);
        let qr = a.qr();
        for i in 0..qr.r().rows() {
            for j in 0..i {
                assert!(qr.r()[(i, j)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // y = 1 + 2x with noise-free data: exact recovery.
        let a =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = a.qr().solve_least_squares(&b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_column_gets_zero() {
        // Second column is all zeros.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]]);
        let x = a.qr().solve_least_squares(&[2.0, 4.0, 6.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert_eq!(x[1], 0.0);
    }
}
