use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, stored as the lower-triangular factor `L`.
///
/// Used throughout the workspace: solving regularized least squares,
/// Gaussian-process posteriors, multivariate-normal sampling, and
/// Mahalanobis distances.
///
/// # Example
///
/// ```
/// use edm_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![25.0, 15.0], vec![15.0, 18.0]]);
/// let chol = a.cholesky()?;
/// assert!((chol.det() - (25.0 * 18.0 - 15.0 * 15.0)).abs() < 1e-9);
/// # Ok::<(), edm_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`.
    ///
    /// Only the lower triangle of `a` is read, so a numerically slightly
    /// asymmetric matrix (for example an accumulated Gram matrix) is fine.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Rebuilds a factorization from a stored lower-triangular factor
    /// `L` (as returned by [`Cholesky::l`]) — used by model persistence
    /// to round-trip fitted posteriors without refactorizing. The
    /// factor is taken verbatim; solves with it are bitwise identical
    /// to the original.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not square.
    pub fn from_factor(l: Matrix) -> Self {
        assert!(l.is_square(), "Cholesky factor must be square");
        Cholesky { l }
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Determinant of `A` (product of squared diagonal of `L`).
    pub fn det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)] * self.l[(i, i)]).product()
    }

    /// Log-determinant of `A`, numerically stable for large dimensions.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }

    /// Inverse of `A` (column-by-column solve).
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let x = self.solve(&e);
            for r in 0..n {
                inv[(r, c)] = x[r];
            }
            e[c] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let recon = c.l().mat_mul(&c.l().transpose());
        assert!((&recon - &a).max_abs() < 1e-9);
    }

    #[test]
    fn known_factor() {
        // Classic textbook example: L = [[2,0,0],[6,1,0],[-8,5,3]]
        let c = spd3().cholesky().unwrap();
        assert!((c.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((c.l()[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((c.l()[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((c.l()[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_round_trip() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let x_true = [1.0, -1.0, 2.0];
        let b = a.mat_vec(&x_true);
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn det_and_log_det_agree() {
        let c = spd3().cholesky().unwrap();
        assert!((c.det().ln() - c.log_det()).abs() < 1e-9);
        assert!((c.det() - 36.0).abs() < 1e-6); // (2*1*3)^2
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(a.cholesky(), Err(LinalgError::NotPositiveDefinite { pivot: 1 })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.cholesky(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn inverse_matches_lu_inverse() {
        let a = spd3();
        let inv_chol = a.cholesky().unwrap().inverse();
        let inv_lu = a.inverse().unwrap();
        assert!((&inv_chol - &inv_lu).max_abs() < 1e-8);
    }
}
