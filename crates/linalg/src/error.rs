use std::fmt;

/// Errors produced by decompositions and solvers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The matrix was not square where a square matrix was required.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Pivot index at which a non-positive diagonal was encountered.
        pivot: usize,
    },
    /// LU factorization hit a (numerically) singular pivot.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, but a square matrix is required")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} sweeps")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
