//! # edm-linalg — dense linear algebra and statistics for the `edm` workspace
//!
//! A small, dependency-light numeric core: a dense row-major [`Matrix`],
//! vector helpers, the matrix decompositions the learning crates need
//! (Cholesky, LU, QR, symmetric eigen via cyclic Jacobi), descriptive
//! statistics, and Gaussian sampling (Box–Muller scalar normals and
//! Cholesky-based multivariate normals).
//!
//! Everything is `f64`; the learning workloads in this workspace are
//! numerically small enough (thousands × hundreds) that a cache-tuned BLAS
//! is unnecessary, and keeping the solver code readable is worth more for
//! a reference reproduction.
//!
//! # Example
//!
//! ```
//! use edm_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
//! let chol = a.cholesky()?;
//! let x = chol.solve(&[2.0, 1.0]);
//! // A x = b
//! let b = a.mat_vec(&x);
//! assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
//! # Ok::<(), edm_linalg::LinalgError>(())
//! ```

#![forbid(unsafe_code)]

mod block;
mod cholesky;
mod eigen;
mod error;
mod lu;
mod matrix;
mod qr;
pub mod sample;
pub mod stats;
mod vector;

pub use block::BlockSpec;
pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use sample::{MultivariateNormal, Normal};
pub use vector::{
    axpy, dot, l1_norm, l2_norm, linf_norm, mean, normalize, scale, sq_dist, sub, sum, variance,
};
