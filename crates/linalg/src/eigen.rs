use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// Eigen-decomposition `A = V Λ Vᵀ` of a real symmetric matrix, computed
/// with cyclic Jacobi rotations.
///
/// Eigenpairs are sorted by descending eigenvalue, which is the order PCA,
/// spectral clustering, and kernel centering all want.
///
/// Jacobi is O(n³) per sweep and typically needs < 10 sweeps; for the
/// matrix sizes in this workspace (covariances and graph Laplacians up to
/// a few hundred) it is both fast enough and highly accurate.
///
/// # Example
///
/// ```
/// use edm_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = a.symmetric_eigen()?;
/// assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-10);
/// # Ok::<(), edm_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Columns are eigenvectors, in the same order as `eigenvalues`.
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Maximum number of Jacobi sweeps before giving up.
    const MAX_SWEEPS: usize = 64;

    /// Decomposes the symmetric matrix `a`.
    ///
    /// Only requires `a` to be symmetric up to roundoff; the strictly
    /// upper triangle is used for rotations.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::NoConvergence`] if off-diagonal mass does not vanish
    /// within the sweep budget (practically unreachable for symmetric
    /// input).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut v = Matrix::identity(n);
        if n <= 1 {
            let eigenvalues = if n == 1 { vec![m[(0, 0)]] } else { vec![] };
            return Ok(SymmetricEigen { eigenvalues, eigenvectors: v });
        }
        let scale = m.max_abs().max(1e-300);
        let tol = 1e-14 * scale;
        let mut converged = false;
        for _sweep in 0..Self::MAX_SWEEPS {
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    off = off.max(m[(p, q)].abs());
                }
            }
            if off <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol * 1e-2 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = 0.5 * (aqq - app) / apq;
                    // Stable computation of tan of the rotation angle.
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Rotate rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged {
            // One final check: the last sweep may have converged.
            let mut off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    off = off.max(m[(p, q)].abs());
                }
            }
            if off > tol {
                return Err(LinalgError::NoConvergence { iterations: Self::MAX_SWEEPS });
            }
        }
        // Sort by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("finite eigenvalues"));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_c, &old_c) in order.iter().enumerate() {
            for r in 0..n {
                eigenvectors[(r, new_c)] = v[(r, old_c)];
            }
        }
        Ok(SymmetricEigen { eigenvalues, eigenvectors })
    }

    /// Eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvector matrix `V`; column `i` pairs with `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Copy of eigenvector `i` (a column of `V`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn eigenvector(&self, i: usize) -> Vec<f64> {
        self.eigenvectors.col(i)
    }

    /// Reconstructs `V Λ Vᵀ` (for testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let lambda = Matrix::from_diag(&self.eigenvalues);
        self.eigenvectors.mat_mul(&lambda).mat_mul(&self.eigenvectors.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_known() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = a.symmetric_eigen().unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-12);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v = e.eigenvector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_error_small() {
        let a =
            Matrix::from_rows(&[vec![4.0, 1.0, -2.0], vec![1.0, 2.0, 0.0], vec![-2.0, 0.0, 3.0]]);
        let e = a.symmetric_eigen().unwrap();
        assert!((&e.reconstruct() - &a).max_abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![5.0, 2.0, 0.0, 1.0],
            vec![2.0, 6.0, 1.0, 0.0],
            vec![0.0, 1.0, 7.0, 3.0],
            vec![1.0, 0.0, 3.0, 8.0],
        ]);
        let e = a.symmetric_eigen().unwrap();
        let vtv = e.eigenvectors().transpose().mat_mul(e.eigenvectors());
        assert!((&vtv - &Matrix::identity(4)).max_abs() < 1e-10);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Matrix::from_rows(&[vec![1.0, 0.5, 0.2], vec![0.5, 2.0, -0.3], vec![0.2, -0.3, 3.0]]);
        let e = a.symmetric_eigen().unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = a.symmetric_eigen().unwrap();
        assert_eq!(e.eigenvalues(), &[5.0, 3.0, 1.0]);
    }

    #[test]
    fn handles_empty_and_single() {
        let e = Matrix::zeros(0, 0).symmetric_eigen().unwrap();
        assert!(e.eigenvalues().is_empty());
        let e1 = Matrix::from_diag(&[7.0]).symmetric_eigen().unwrap();
        assert_eq!(e1.eigenvalues(), &[7.0]);
    }
}
