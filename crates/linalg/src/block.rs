//! Cache-blocking parameters and the register-blocked micro-kernel
//! shared by the tiled dense routines ([`Matrix::mat_mul`],
//! [`Matrix::gram`], [`Matrix::transpose`] and the kernel-Gram builder
//! in `edm-kernels`).
//!
//! The tiling strategy is deliberately one-knob: a [`BlockSpec`] names
//! a *band* height (rows of output handed to one worker in a single
//! dispatch) and a *column tile* width (the contiguous output run the
//! inner loops sweep while their inputs stay cache-resident). Both
//! routines walk tiles in a fixed order and keep every element's
//! reduction loop full-range ascending, so the blocked results are
//! bitwise identical to the naive loops — blocking only reorders
//! *which elements* are touched when, never the summation order
//! *within* an element.
//!
//! [`Matrix::mat_mul`]: crate::Matrix::mat_mul
//! [`Matrix::gram`]: crate::Matrix::gram
//! [`Matrix::transpose`]: crate::Matrix::transpose

/// Width of the fixed-size chunks the micro-kernel processes.
///
/// Eight `f64` lanes = one cache line = two AVX2 registers (or one
/// AVX-512 register); a compile-time-known trip count with no bounds
/// checks is what lets the autovectorizer emit packed SIMD for the
/// chunk body.
const LANES: usize = 8;

/// Tile sizes for the cache-blocked dense routines.
///
/// * `band_rows` — output rows per parallel band. One band is one
///   dispatch unit in [`edm_par::for_each_band`], and the tiled loops
///   reuse whatever input panel they stream across all rows of the
///   band.
/// * `col_tile` — output columns per inner tile. Sized so the input
///   panel a tile consumes (`col_tile` columns × the reduction depth)
///   stays L1/L2-resident while every row of the band sweeps it.
///
/// The defaults (64 × 128) keep a 64-row × 256-byte sample band and a
/// 128-column × 256-byte input panel — 16 KiB + 32 KiB at the
/// workspace's typical feature depth of 32 — comfortably inside a
/// 64 KiB L1d, with plenty of headroom before L2 even at depth 256.
///
/// Tuning is env-overridable without recompiling: `EDM_BLOCK=B` sets
/// the band height, `EDM_BLOCK=BxC` (or `B,C`) sets both. Invalid
/// values warn once on stderr and fall back to the defaults, matching
/// the `EDM_NUM_THREADS` convention in `edm-par`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Output rows per parallel band (dispatch granule).
    pub band_rows: usize,
    /// Output columns per inner tile (cache-residency granule).
    pub col_tile: usize,
}

impl Default for BlockSpec {
    fn default() -> Self {
        BlockSpec { band_rows: 64, col_tile: 128 }
    }
}

impl BlockSpec {
    /// A spec with explicit tile sizes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(band_rows: usize, col_tile: usize) -> Self {
        assert!(band_rows > 0 && col_tile > 0, "BlockSpec dimensions must be positive");
        BlockSpec { band_rows, col_tile }
    }

    /// The spec in effect for this call: `EDM_BLOCK` if set and valid,
    /// otherwise the defaults.
    ///
    /// Re-reads the environment on every call (like `EDM_NUM_THREADS`)
    /// so benchmarks can sweep tile sizes in-process. An unparsable or
    /// zero value warns once on stderr and falls back to the defaults
    /// rather than silently misconfiguring the kernels.
    pub fn from_env() -> Self {
        match std::env::var("EDM_BLOCK") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "edm-linalg: ignoring invalid EDM_BLOCK value {v:?} \
                         (expected \"BAND\" or \"BANDxTILE\"); using defaults"
                    );
                });
                BlockSpec::default()
            }),
            Err(_) => BlockSpec::default(),
        }
    }

    /// Parses `"64"`, `"64x128"`, or `"64,128"`. `None` on anything
    /// else (including zeros, which would make the tiled loops spin).
    fn parse(v: &str) -> Option<Self> {
        let v = v.trim();
        let (band, tile) = match v.split_once(['x', 'X', ',']) {
            Some((b, t)) => (b.trim().parse().ok()?, t.trim().parse().ok()?),
            None => (v.parse().ok()?, BlockSpec::default().col_tile),
        };
        if band == 0 || tile == 0 {
            return None;
        }
        Some(BlockSpec { band_rows: band, col_tile: tile })
    }
}

/// `acc[t] += a * b[t]` over a contiguous run.
///
/// The body is the register-blocked micro-kernel: fixed [`LANES`]-wide
/// chunks with a compile-time trip count (so LLVM emits packed
/// mul/add), plus a scalar tail. Each output element still receives
/// exactly one `+= a * b` — identical operation, identical rounding —
/// so this is bitwise interchangeable with the plain zip loop.
///
/// # Panics
///
/// Panics if the run lengths differ.
#[inline]
pub(crate) fn axpy_run(a: f64, b: &[f64], acc: &mut [f64]) {
    assert_eq!(b.len(), acc.len(), "axpy_run length mismatch");
    let mut bc = b.chunks_exact(LANES);
    let mut ac = acc.chunks_exact_mut(LANES);
    for (av, bv) in (&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            av[l] += a * bv[l];
        }
    }
    for (av, bv) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
        *av += a * bv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_documented_forms() {
        assert_eq!(BlockSpec::parse("64"), Some(BlockSpec { band_rows: 64, col_tile: 128 }));
        assert_eq!(BlockSpec::parse("32x256"), Some(BlockSpec::new(32, 256)));
        assert_eq!(BlockSpec::parse(" 16 , 48 "), Some(BlockSpec::new(16, 48)));
        assert_eq!(BlockSpec::parse("8X8"), Some(BlockSpec::new(8, 8)));
        for bad in ["", "zero", "0", "64x0", "0x64", "-4", "4x-4", "1.5"] {
            assert_eq!(BlockSpec::parse(bad), None, "{bad:?} should be rejected");
        }
    }

    #[test]
    fn axpy_run_matches_plain_loop_bitwise() {
        // 19 elements: two full 8-lane chunks plus a 3-wide tail.
        let b: Vec<f64> = (0..19).map(|i| (i as f64 * 0.7).sin()).collect();
        let a = 0.123456789;
        let mut blocked: Vec<f64> = (0..19).map(|i| (i as f64).cos()).collect();
        let mut plain = blocked.clone();
        axpy_run(a, &b, &mut blocked);
        for (y, x) in plain.iter_mut().zip(&b) {
            *y += a * x;
        }
        assert_eq!(
            blocked.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            plain.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
