//! Free functions on `&[f64]` vectors.
//!
//! These are deliberately plain functions rather than a wrapper type:
//! every crate in the workspace stores samples as `Vec<f64>` rows, and the
//! learners want to call straight into the arithmetic.

/// Dot product `⟨a, b⟩`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum of elements.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Unbiased sample variance (divides by `n - 1`); `0.0` when `n < 2`.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Euclidean norm `‖a‖₂`.
pub fn l2_norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Manhattan norm `‖a‖₁`.
pub fn l1_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Max norm `‖a‖∞`.
pub fn linf_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector subtraction length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales a vector by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Returns `a / ‖a‖₂`, or a copy of `a` when its norm is (near) zero.
pub fn normalize(a: &[f64]) -> Vec<f64> {
    let n = l2_norm(a);
    if n < 1e-300 {
        a.to_vec()
    } else {
        scale(a, 1.0 / n)
    }
}

/// Squared Euclidean distance `‖a - b‖₂²`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l1_norm(&[3.0, -4.0]), 7.0);
        assert_eq!(linf_norm(&[3.0, -4.0]), 4.0);
    }

    #[test]
    fn mean_variance_basics() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_has_unit_norm() {
        let n = normalize(&[3.0, 4.0]);
        assert!((l2_norm(&n) - 1.0).abs() < 1e-15);
        // zero vector passes through unchanged
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn sq_dist_matches_norm_of_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, -2.0, 5.0];
        let d = sub(&a, &b);
        assert!((sq_dist(&a, &b) - dot(&d, &d)).abs() < 1e-12);
    }
}
