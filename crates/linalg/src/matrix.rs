use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{Cholesky, LinalgError, Lu, Qr, SymmetricEigen};

/// A dense, row-major `f64` matrix.
///
/// This is the one matrix type shared by every crate in the workspace.
/// It intentionally keeps a small API surface: construction, element and
/// row access, the arithmetic the learners need, and entry points into the
/// decompositions ([`Matrix::cholesky`], [`Matrix::lu`], [`Matrix::qr`],
/// [`Matrix::symmetric_eigen`]).
///
/// # Example
///
/// ```
/// use edm_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = a.transpose();
/// let c = a.mat_mul(&b);
/// assert_eq!(c[(0, 0)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {}, expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index {c} out of bounds ({})", self.cols);
        if self.rows == 0 {
            return Vec::new();
        }
        // One strided pass over the buffer; the iterator form avoids the
        // per-element index arithmetic and bounds check of `self[(r, c)]`.
        self.data[c..].iter().step_by(self.cols).copied().collect()
    }

    /// Iterator over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The transpose `Aᵀ`.
    ///
    /// Tile-blocked: workers take bands of output rows and copy the
    /// input in square-ish tiles, so the strided side of the copy
    /// revisits each cache line while it is still resident instead of
    /// streaming the whole matrix once per output row. Each element is
    /// a single copy, so blocked, serial, and parallel results are all
    /// identical.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return t;
        }
        let spec = crate::BlockSpec::from_env();
        let (rows, cols) = (self.rows, self.cols);
        let data = &self.data;
        edm_par::for_each_band(&mut t.data, rows, spec.band_rows, |b, band| {
            let c0 = b * spec.band_rows;
            for r0 in (0..rows).step_by(spec.col_tile) {
                let rend = (r0 + spec.col_tile).min(rows);
                for (dc, trow) in band.chunks_mut(rows).enumerate() {
                    let c = c0 + dc;
                    for (slot, r) in trow[r0..rend].iter_mut().zip(r0..) {
                        *slot = data[r * cols + c];
                    }
                }
            }
        });
        t
    }

    /// Matrix–vector product `A v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length {} != cols {}", v.len(), self.cols);
        self.iter_rows().map(|row| crate::dot(row, v)).collect()
    }

    /// Vector–matrix product `vᵀ A` (returned as a plain vector).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn vec_mat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length {} != rows {}", v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, row) in self.iter_rows().enumerate() {
            let s = v[r];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += s * x;
            }
        }
        out
    }

    /// Matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mat_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions disagree: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if self.rows == 0 || other.cols == 0 {
            return out;
        }
        // Cache-blocked i-k-j: workers take bands of output rows, and
        // within a band the columns are swept one `col_tile`-wide panel
        // of B at a time, so the panel stays cache-resident while every
        // row of the band streams over it. Each C element still
        // accumulates in k-ascending order with the same zero skip as
        // the naive loop, so the product is bitwise identical to the
        // serial i-k-j path.
        let spec = crate::BlockSpec::from_env();
        let n = other.cols;
        edm_par::for_each_band(&mut out.data, n, spec.band_rows, |bi, band| {
            let i0 = bi * spec.band_rows;
            for j0 in (0..n).step_by(spec.col_tile) {
                let jend = (j0 + spec.col_tile).min(n);
                for (di, crow) in band.chunks_mut(n).enumerate() {
                    let arow = self.row(i0 + di);
                    let ctile = &mut crow[j0..jend];
                    for (k, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        crate::block::axpy_run(a, &other.data[k * n + j0..k * n + jend], ctile);
                    }
                }
            }
        });
        out
    }

    /// The Gram product `AᵀA` (always symmetric positive semidefinite).
    ///
    /// Only the upper triangle is computed (in parallel bands of rows,
    /// streaming `A` once per band instead of once per row), then
    /// mirrored tile-by-tile. Every element accumulates its sample
    /// terms in the same ascending sample order as the serial loop (and
    /// with the same skip of zero factors), so the result is bitwise
    /// identical either way.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        if d == 0 {
            return g;
        }
        let spec = crate::BlockSpec::from_env();
        edm_par::for_each_band(&mut g.data, d, spec.band_rows, |b, band| {
            let i0 = b * spec.band_rows;
            for row in self.data.chunks_exact(d) {
                for (di, grow) in band.chunks_mut(d).enumerate() {
                    let i = i0 + di;
                    let ri = row[i];
                    if ri == 0.0 {
                        continue;
                    }
                    crate::block::axpy_run(ri, &row[i..], &mut grow[i..]);
                }
            }
        });
        g.mirror_upper_to_lower();
        g
    }

    /// Copies the strict upper triangle onto the lower one, making the
    /// matrix exactly symmetric: `a[(i, j)] = a[(j, i)]` for `j < i`.
    ///
    /// The copy walks square tiles so the column-strided read side
    /// stays cache-resident; used by the symmetric builders here and in
    /// `edm-kernels` after filling only one triangle.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn mirror_upper_to_lower(&mut self) {
        assert!(self.is_square(), "mirror requires a square matrix");
        const TILE: usize = 64;
        let n = self.rows;
        for i0 in (0..n).step_by(TILE) {
            let iend = (i0 + TILE).min(n);
            for j0 in (0..=i0).step_by(TILE) {
                let jend = (j0 + TILE).min(n);
                for i in i0..iend {
                    for j in j0..jend.min(i) {
                        self.data[i * n + j] = self.data[j * n + i];
                    }
                }
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Scales every element by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Whether `|aᵢⱼ - aⱼᵢ| <= tol` everywhere.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the sub-matrix of the given rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (i, &r) in row_idx.iter().enumerate() {
            for (j, &c) in col_idx.iter().enumerate() {
                out[(i, j)] = self[(r, c)];
            }
        }
        out
    }

    /// Appends a column of ones on the left (bias/intercept column).
    pub fn with_bias_column(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out[(r, 0)] = 1.0;
            out.row_mut(r)[1..].copy_from_slice(self.row(r));
        }
        out
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or
    /// [`LinalgError::NotPositiveDefinite`].
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::new(self)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }

    /// Householder QR factorization.
    pub fn qr(&self) -> Qr {
        Qr::new(self)
    }

    /// Eigen-decomposition of a symmetric matrix by cyclic Jacobi sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NoConvergence`].
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen, LinalgError> {
        SymmetricEigen::new(self)
    }

    /// Solves `A x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`Matrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Ok(self.lu()?.solve(b))
    }

    /// Inverse via LU.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.lu().map(|lu| lu.inverse())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mat_mul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.mat_mul(&i), a);
        assert_eq!(i.mat_mul(&a), a);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mat_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn vec_mat_is_transpose_mat_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let v = [2.0, -1.0];
        assert_eq!(a.vec_mat(&v), a.transpose().mat_vec(&v));
    }

    #[test]
    fn gram_is_symmetric_and_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().mat_mul(&a);
        assert!(g.is_symmetric(0.0));
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x_true = [1.0, -2.0];
        let b = a.mat_vec(&x_true);
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.mat_mul(&inv);
        let i = Matrix::identity(2);
        assert!((&prod - &i).max_abs() < 1e-12);
    }

    #[test]
    fn select_extracts_submatrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
        let s = a.select(&[0, 2], &[1]);
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(1, 0)], 8.0);
    }

    #[test]
    fn with_bias_column_prepends_ones() {
        let a = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let b = a.with_bias_column();
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.row(0), &[1.0, 5.0]);
        assert_eq!(b.row(1), &[1.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mat_mul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mat_mul(&b);
    }

    #[test]
    fn trace_and_norms() {
        let a = Matrix::from_rows(&[vec![3.0, -4.0], vec![0.0, 1.0]]);
        assert_eq!(a.trace(), 4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - (9.0_f64 + 16.0 + 1.0).sqrt()).abs() < 1e-15);
    }
}
