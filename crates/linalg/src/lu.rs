use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// LU factorization with partial pivoting: `P A = L U`.
///
/// `L` (unit lower triangular) and `U` (upper triangular) are packed into
/// a single matrix; `perm` records the row permutation.
///
/// # Example
///
/// ```
/// use edm_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
/// let x = a.lu()?.solve(&[3.0, 4.0]);
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), edm_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lu {
    packed: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factorizes `a` with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::Singular`] if no usable pivot exists in some column.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot: largest |value| in column k at or below the diagonal.
            let mut p = k;
            let mut best = m[(k, k)].abs();
            for i in (k + 1)..n {
                let v = m[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 || !best.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    let t = m[(k, c)];
                    m[(k, c)] = m[(p, c)];
                    m[(p, c)] = t;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let f = m[(i, k)] / pivot;
                m[(i, k)] = f;
                for c in (k + 1)..n {
                    let u = m[(k, c)];
                    m[(i, c)] -= f * u;
                }
            }
        }
        Ok(Lu { packed: m, perm, sign })
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.packed[(i, k)] * x[k];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.packed[(i, k)] * x[k];
            }
            x[i] = s / self.packed[(i, i)];
        }
        x
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        self.sign * (0..self.dim()).map(|i| self.packed[(i, i)]).product::<f64>()
    }

    /// Inverse of `A` (column-by-column solve).
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let x = self.solve(&e);
            for r in 0..n {
                inv[(r, c)] = x[r];
            }
            e[c] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_with_pivoting() {
        // Leading zero forces a pivot swap.
        let a =
            Matrix::from_rows(&[vec![0.0, 2.0, 1.0], vec![1.0, 1.0, 1.0], vec![2.0, 0.0, -1.0]]);
        let x_true = [1.0, 2.0, 3.0];
        let b = a.mat_vec(&x_true);
        let x = a.lu().unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[vec![3.0, 8.0], vec![4.0, 6.0]]);
        assert!((a.lu().unwrap().det() + 14.0).abs() < 1e-12);
        assert!((Matrix::identity(4).lu().unwrap().det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        // A row swap of the identity has determinant -1.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((a.lu().unwrap().det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn inverse_round_trip() {
        let a =
            Matrix::from_rows(&[vec![2.0, -1.0, 0.0], vec![-1.0, 2.0, -1.0], vec![0.0, -1.0, 2.0]]);
        let inv = a.lu().unwrap().inverse();
        assert!((&a.mat_mul(&inv) - &Matrix::identity(3)).max_abs() < 1e-12);
    }
}
