//! Gaussian sampling without external distribution crates.
//!
//! [`Normal`] is a Box–Muller standard-normal transformer with location
//! and scale; [`MultivariateNormal`] draws correlated vectors through a
//! Cholesky factor. These power every stochastic substrate in the
//! workspace — parametric test data, silicon delay variation, litho dose
//! and focus corners — so that the only random dependency is `rand`
//! itself.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// A univariate normal distribution `N(mean, std²)` sampled with the
/// Box–Muller transform.
///
/// # Example
///
/// ```
/// use edm_linalg::Normal;
/// use rand::SeedableRng;
///
/// let n = Normal::new(10.0, 2.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let xs: Vec<f64> = (0..2000).map(|_| n.sample(&mut rng)).collect();
/// let mean = edm_linalg::mean(&xs);
/// assert!((mean - 10.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std < 0` or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite() && std.is_finite(), "normal parameters must be finite");
        assert!(std >= 0.0, "standard deviation must be non-negative, got {std}");
        Normal { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, std: 1.0 }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// One standard-normal draw via Box–Muller.
///
/// Uses the polar-free basic form; the log argument is guarded away from
/// zero so the result is always finite.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A multivariate normal `N(μ, Σ)` sampled as `μ + L z` with `Σ = L Lᵀ`.
///
/// # Example
///
/// ```
/// use edm_linalg::{Matrix, MultivariateNormal};
/// use rand::SeedableRng;
///
/// let cov = Matrix::from_rows(&[vec![1.0, 0.8], vec![0.8, 1.0]]);
/// let mvn = MultivariateNormal::new(vec![0.0, 0.0], &cov)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = mvn.sample(&mut rng);
/// assert_eq!(x.len(), 2);
/// # Ok::<(), edm_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol_l: Matrix,
}

impl MultivariateNormal {
    /// Creates `N(mean, cov)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `mean` and `cov`
    /// disagree, or a Cholesky error if `cov` is not positive definite
    /// (add a small diagonal jitter for semidefinite covariances).
    pub fn new(mean: Vec<f64>, cov: &Matrix) -> Result<Self, LinalgError> {
        if cov.rows() != mean.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: mean.len(),
                actual: cov.rows(),
            });
        }
        let chol = cov.cholesky()?;
        Ok(MultivariateNormal { mean, chol_l: chol.l().clone() })
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Distribution mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Draws one vector sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.dim();
        let z: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        let mut x = self.mean.clone();
        for i in 0..d {
            for k in 0..=i {
                x[i] += self.chol_l[(i, k)] * z[k];
            }
        }
        x
    }

    /// Draws `n` samples as the rows of a matrix.
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n).map(|_| self.sample(rng)).collect();
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(crate::mean(&xs).abs() < 0.03);
        assert!((crate::variance(&xs) - 1.0).abs() < 0.05);
    }

    #[test]
    fn normal_location_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = Normal::new(-3.0, 0.5);
        let xs = n.sample_n(&mut rng, 20_000);
        assert!((crate::mean(&xs) + 3.0).abs() < 0.02);
        assert!((crate::variance(&xs).sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn mvn_reproduces_covariance() {
        let cov = Matrix::from_rows(&[vec![2.0, 1.2], vec![1.2, 1.0]]);
        let mvn = MultivariateNormal::new(vec![5.0, -5.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = mvn.sample_matrix(&mut rng, 30_000);
        let means = stats::column_means(&x);
        assert!((means[0] - 5.0).abs() < 0.05);
        assert!((means[1] + 5.0).abs() < 0.05);
        let c = stats::covariance(&x);
        assert!((c[(0, 0)] - 2.0).abs() < 0.1);
        assert!((c[(0, 1)] - 1.2).abs() < 0.1);
        assert!((c[(1, 1)] - 1.0).abs() < 0.05);
    }

    #[test]
    fn mvn_dimension_mismatch() {
        let cov = Matrix::identity(3);
        assert!(matches!(
            MultivariateNormal::new(vec![0.0; 2], &cov),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
