//! Property tests pinning the determinism guarantee of the parallel
//! matrix kernels: `mat_mul`, `gram` (AᵀA), and `transpose` must be
//! **bitwise** identical to their serial reference loops, for any input.
//!
//! Shapes are chosen so the outputs clear the threading threshold in
//! `edm-par` — these runs actually exercise the worker-thread path
//! (under the default `parallel` feature).

use edm_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic SplitMix64 fill so `(seed, dims)` fully describes a
/// case; every `zero_every`-th element is exactly 0.0 to exercise the
/// zero-skip branches.
fn fill(seed: u64, len: usize, zero_every: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
            }
        })
        .collect()
}

fn matrix(seed: u64, rows: usize, cols: usize, zero_every: usize) -> Matrix {
    let data = fill(seed, rows * cols, zero_every);
    Matrix::from_rows(&data.chunks(cols).map(<[f64]>::to_vec).collect::<Vec<_>>())
}

fn bits(m: &Matrix) -> Vec<u64> {
    (0..m.rows()).flat_map(|i| m.row(i).iter().map(|v| v.to_bits())).collect()
}

/// Serial i-k-j product with the same zero-skip as the implementation.
fn mat_mul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Serial AᵀA: upper triangle in ascending sample order (with the same
/// zero-skip), then mirrored.
fn gram_serial(a: &Matrix) -> Matrix {
    let c = a.cols();
    let mut g = Matrix::zeros(c, c);
    for i in 0..c {
        for r in 0..a.rows() {
            let ri = a[(r, i)];
            if ri == 0.0 {
                continue;
            }
            for j in i..c {
                g[(i, j)] += ri * a[(r, j)];
            }
        }
    }
    for i in 1..c {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

fn transpose_serial(a: &Matrix) -> Matrix {
    let mut t = Matrix::zeros(a.cols(), a.rows());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            t[(c, r)] = a[(r, c)];
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_mat_mul_is_bitwise_serial(
        seed in 0u64..1_000_000,
        rows in 64usize..80,
        inner in 1usize..24,
        cols in 64usize..80,
    ) {
        let a = matrix(seed, rows, inner, 3);
        let b = matrix(seed ^ 0xABCD, inner, cols, 5);
        prop_assert_eq!(bits(&a.mat_mul(&b)), bits(&mat_mul_serial(&a, &b)));
    }

    #[test]
    fn parallel_gram_is_bitwise_serial(
        seed in 0u64..1_000_000,
        rows in 1usize..40,
        cols in 64usize..80,
    ) {
        let a = matrix(seed, rows, cols, 4);
        prop_assert_eq!(bits(&a.gram()), bits(&gram_serial(&a)));
    }

    #[test]
    fn parallel_transpose_is_bitwise_serial(
        seed in 0u64..1_000_000,
        rows in 64usize..80,
        cols in 64usize..80,
    ) {
        let a = matrix(seed, rows, cols, 7);
        prop_assert_eq!(bits(&a.transpose()), bits(&transpose_serial(&a)));
    }

    #[test]
    fn tiled_kernels_handle_ragged_shapes(
        seed in 0u64..1_000_000,
        rows in 1usize..72,
        cols in 1usize..72,
    ) {
        // Small and awkward dims: below the default tile, not a
        // multiple of it, single row/column. These fall back to the
        // serial dispatch path, but still go through the blocked loops.
        let a = matrix(seed, rows, cols, 3);
        let b = matrix(seed ^ 0xF00D, cols, rows, 5);
        prop_assert_eq!(bits(&a.mat_mul(&b)), bits(&mat_mul_serial(&a, &b)));
        prop_assert_eq!(bits(&a.gram()), bits(&gram_serial(&a)));
        prop_assert_eq!(bits(&a.transpose()), bits(&transpose_serial(&a)));
    }
}

/// The exact boundary cases named in the blocked-compute contract:
/// dims below one tile, one past a tile boundary, not a multiple of
/// either block dimension, and the degenerate d = 1.
#[test]
fn tiled_kernels_cover_tile_boundary_shapes() {
    // (rows, cols) pairs straddling the default 64×128 BlockSpec.
    let shapes = [(1, 1), (1, 130), (63, 64), (64, 65), (65, 127), (128, 129), (129, 1), (200, 3)];
    for (seed, &(rows, cols)) in shapes.iter().enumerate() {
        let a = matrix(seed as u64 * 31 + 7, rows, cols, 4);
        let b = matrix(seed as u64 * 37 + 11, cols, rows, 6);
        assert_eq!(bits(&a.mat_mul(&b)), bits(&mat_mul_serial(&a, &b)), "mat_mul {rows}x{cols}");
        assert_eq!(bits(&a.gram()), bits(&gram_serial(&a)), "gram {rows}x{cols}");
        assert_eq!(bits(&a.transpose()), bits(&transpose_serial(&a)), "transpose {rows}x{cols}");
    }
}
