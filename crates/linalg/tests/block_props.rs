//! Environment-sweep tests for the blocked matrix kernels: results
//! must be **bitwise** invariant under every `EDM_BLOCK` tile shape
//! and every `EDM_NUM_THREADS` worker count. Blocking only reorders
//! *which* output cells are touched when — never the summation order
//! within a cell — so any tile geometry and any thread count must
//! reproduce the serial reference exactly.
//!
//! Environment variables are process-global, so each sweep lives in a
//! single `#[test]` that sets and restores its variable itself (the
//! same discipline as `env_thread_override_parsing` in `edm-par`).
//! This file is its own integration-test binary, i.e. its own process:
//! the sweeps here cannot leak into the other linalg test binaries.

use edm_linalg::Matrix;

/// Deterministic SplitMix64 fill; every `zero_every`-th element is
/// exactly 0.0 to exercise the zero-skip branches.
fn fill(seed: u64, len: usize, zero_every: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|i| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
            }
        })
        .collect()
}

fn matrix(seed: u64, rows: usize, cols: usize, zero_every: usize) -> Matrix {
    let data = fill(seed, rows * cols, zero_every);
    Matrix::from_rows(&data.chunks(cols).map(<[f64]>::to_vec).collect::<Vec<_>>())
}

fn bits(m: &Matrix) -> Vec<u64> {
    (0..m.rows()).flat_map(|i| m.row(i).iter().map(|v| v.to_bits())).collect()
}

/// Serial i-k-j product with the same zero-skip as the implementation.
fn mat_mul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Serial AᵀA: upper triangle in ascending sample order (with the same
/// zero-skip), then mirrored.
fn gram_serial(a: &Matrix) -> Matrix {
    let c = a.cols();
    let mut g = Matrix::zeros(c, c);
    for i in 0..c {
        for r in 0..a.rows() {
            let ri = a[(r, i)];
            if ri == 0.0 {
                continue;
            }
            for j in i..c {
                g[(i, j)] += ri * a[(r, j)];
            }
        }
    }
    for i in 1..c {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

fn transpose_serial(a: &Matrix) -> Matrix {
    let mut t = Matrix::zeros(a.cols(), a.rows());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            t[(c, r)] = a[(r, c)];
        }
    }
    t
}

/// Runs all three kernels on shapes that straddle the given tile
/// geometry and asserts bitwise agreement with the serial references.
fn assert_all_kernels_serial(tag: &str) {
    let shapes = [(1usize, 1usize), (7, 70), (63, 64), (66, 129), (130, 5), (96, 96)];
    for (seed, &(rows, cols)) in shapes.iter().enumerate() {
        let a = matrix(seed as u64 * 101 + 13, rows, cols, 3);
        let b = matrix(seed as u64 * 103 + 17, cols, rows, 5);
        assert_eq!(
            bits(&a.mat_mul(&b)),
            bits(&mat_mul_serial(&a, &b)),
            "mat_mul {rows}x{cols} under {tag}"
        );
        assert_eq!(bits(&a.gram()), bits(&gram_serial(&a)), "gram {rows}x{cols} under {tag}");
        assert_eq!(
            bits(&a.transpose()),
            bits(&transpose_serial(&a)),
            "transpose {rows}x{cols} under {tag}"
        );
    }
}

/// One sequential sweep over `EDM_BLOCK` tile geometries, including
/// degenerate 1×1 tiles, tiles larger than every matrix, non-square
/// tiles in both accepted spellings, and the unset default.
#[test]
fn block_env_sweep_is_bitwise_invariant() {
    for spec in ["1", "1x1", "3x5", "8,16", "64x128", "200x200", "512"] {
        std::env::set_var("EDM_BLOCK", spec);
        assert_all_kernels_serial(&format!("EDM_BLOCK={spec}"));
    }
    std::env::remove_var("EDM_BLOCK");
    assert_all_kernels_serial("EDM_BLOCK unset");
}

/// One sequential sweep over worker counts 1..=8: the parallel
/// dispatch must reproduce the serial references bitwise at every
/// width (band ownership is disjoint; nothing is ever re-summed).
#[test]
fn thread_env_sweep_is_bitwise_invariant() {
    for threads in 1..=8 {
        std::env::set_var("EDM_NUM_THREADS", threads.to_string());
        assert_all_kernels_serial(&format!("EDM_NUM_THREADS={threads}"));
    }
    std::env::remove_var("EDM_NUM_THREADS");
}
