//! The signoff timer: nominal static timing analysis over a path.
//!
//! Deliberately ignorant of silicon reality — its model is exactly the
//! cell library plus nominal interconnect parameters, so any systematic
//! silicon effect (resistive vias, layer RC shift) shows up as
//! *unexplained* design-silicon mismatch, which is the raw signal of the
//! Fig. 10 diagnosis.

use serde::{Deserialize, Serialize};

use crate::library::InterconnectParams;
use crate::path::TimingPath;

/// The static timing analyzer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timer {
    /// Interconnect parameters assumed by the timer.
    pub interconnect: InterconnectParams,
}

impl Timer {
    /// Predicted path delay in ps: Σ cell delays + Σ wire delay +
    /// Σ via delay.
    pub fn path_delay(&self, path: &TimingPath) -> f64 {
        let mut delay = 0.0;
        for stage in &path.stages {
            delay += stage.cell.nominal_delay_ps();
            delay += stage.length_um * self.interconnect.wire_ps_per_um(stage.layer);
        }
        let n_vias: usize = path.via_counts(self.interconnect.n_layers()).iter().sum();
        delay += n_vias as f64 * self.interconnect.via_ps;
        delay
    }

    /// Predicted delays for a population.
    pub fn analyze_population(&self, paths: &[TimingPath]) -> Vec<f64> {
        paths.iter().map(|p| self.path_delay(p)).collect()
    }

    /// The `n` slowest paths by predicted delay — the timer's "critical
    /// path report" (paths *not* in this report yet slow on silicon are
    /// the Fig. 10 surprises).
    pub fn critical_paths<'a>(&self, paths: &'a [TimingPath], n: usize) -> Vec<&'a TimingPath> {
        let mut ranked: Vec<(&TimingPath, f64)> =
            paths.iter().map(|p| (p, self.path_delay(p))).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite delays"));
        ranked.into_iter().take(n).map(|(p, _)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;
    use crate::path::{PathGenerator, Stage};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn delay_is_additive_over_stages() {
        let one = TimingPath {
            id: 0,
            stages: vec![Stage { cell: CellKind::Inv, layer: 1, length_um: 10.0 }],
        };
        let two = TimingPath {
            id: 1,
            stages: vec![
                Stage { cell: CellKind::Inv, layer: 1, length_um: 10.0 },
                Stage { cell: CellKind::Inv, layer: 1, length_um: 10.0 },
            ],
        };
        let t = Timer::default();
        // Second stage adds the same cell+wire (no extra vias: both M1).
        let d1 = t.path_delay(&one);
        let d2 = t.path_delay(&two);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn hand_computed_delay() {
        let p = TimingPath {
            id: 0,
            stages: vec![Stage { cell: CellKind::Buf, layer: 2, length_um: 20.0 }],
        };
        let t = Timer::default();
        // BUF 18 + 20 um * 1.5 ps/um + 1 via (1->2) * 2 ps = 50 ps.
        assert!((t.path_delay(&p) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn upper_layer_wire_is_faster() {
        let mk = |layer| TimingPath {
            id: 0,
            stages: vec![Stage { cell: CellKind::Inv, layer, length_um: 50.0 }],
        };
        let t = Timer::default();
        // M6 wire is faster even after paying 5 stacked vias.
        assert!(t.path_delay(&mk(6)) < t.path_delay(&mk(1)));
    }

    #[test]
    fn critical_report_is_sorted_prefix() {
        let g = PathGenerator::default();
        let mut rng = StdRng::seed_from_u64(5);
        let pop = g.generate_population(100, &mut rng);
        let t = Timer::default();
        let top = t.critical_paths(&pop, 10);
        assert_eq!(top.len(), 10);
        let worst_in_top = top.iter().map(|p| t.path_delay(p)).fold(f64::INFINITY, f64::min);
        for p in &pop {
            if !top.iter().any(|q| q.id == p.id) {
                assert!(t.path_delay(p) <= worst_in_top + 1e-9);
            }
        }
    }
}
