//! Timing paths: alternating cells and routed wire segments with
//! stacked vias at layer transitions, plus named feature extraction for
//! rule learning.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::library::CellKind;

/// One stage of a path: a driving cell and the wire it drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The driving cell.
    pub cell: CellKind,
    /// Metal layer of the stage's wire (1-based).
    pub layer: u8,
    /// Routed length in µm.
    pub length_um: f64,
}

/// A timing path: an ordered list of stages. Vias are implied by layer
/// transitions between consecutive stages (a route from M2 to M5
/// contributes vias 2-3, 3-4, 4-5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPath {
    /// Path id (unique within a generated population).
    pub id: usize,
    /// The stages, launch to capture.
    pub stages: Vec<Stage>,
}

impl TimingPath {
    /// Number of stages (logic depth).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Via count per layer pair `(l, l+1)`, indexed by `l - 1`.
    ///
    /// Stage transitions contribute a stacked via for every layer
    /// crossed; the first stage starts at layer 1 (cell pins).
    pub fn via_counts(&self, n_layers: u8) -> Vec<usize> {
        let mut counts = vec![0usize; (n_layers - 1) as usize];
        let mut current = 1u8;
        for stage in &self.stages {
            let (lo, hi) = if current <= stage.layer {
                (current, stage.layer)
            } else {
                (stage.layer, current)
            };
            for l in lo..hi {
                counts[(l - 1) as usize] += 1;
            }
            // After driving the wire, the signal returns to layer 1 pins
            // only when the next stage is on a different layer; we track
            // the wire layer as the current position.
            current = stage.layer;
        }
        counts
    }

    /// Total wirelength per layer (µm), indexed by `layer - 1`.
    pub fn wirelength_per_layer(&self, n_layers: u8) -> Vec<f64> {
        let mut lens = vec![0.0; n_layers as usize];
        for s in &self.stages {
            lens[(s.layer - 1) as usize] += s.length_um;
        }
        lens
    }

    /// Count of each cell kind, in [`CellKind::ALL`] order.
    pub fn cell_counts(&self) -> Vec<usize> {
        CellKind::ALL.iter().map(|&k| self.stages.iter().filter(|s| s.cell == k).count()).collect()
    }

    /// Named features for rule learning: logic depth, per-cell counts,
    /// per-layer wirelength, per-pair via counts, total wirelength.
    pub fn features(&self, n_layers: u8) -> Vec<f64> {
        let mut f = vec![self.depth() as f64];
        f.extend(self.cell_counts().into_iter().map(|c| c as f64));
        let wl = self.wirelength_per_layer(n_layers);
        f.extend(wl.iter().copied());
        f.extend(self.via_counts(n_layers).into_iter().map(|c| c as f64));
        f.push(wl.iter().sum());
        f
    }

    /// Names for [`TimingPath::features`], in order.
    pub fn feature_names(n_layers: u8) -> Vec<String> {
        let mut names = vec!["depth".to_string()];
        names.extend(CellKind::ALL.iter().map(|k| format!("n_{}", k.name().to_lowercase())));
        names.extend((1..=n_layers).map(|l| format!("wl_m{l}")));
        names.extend((1..n_layers).map(|l| format!("via{l}{}", l + 1)));
        names.push("wl_total".to_string());
        names
    }
}

/// Random path generator for one design block.
///
/// `upper_layer_bias` is the probability that a long wire escapes to the
/// upper layers (M4–M6) through a stacked via — the mechanism that gives
/// some paths many 4-5/5-6 vias and others none, exactly the contrast
/// the Fig. 10 diagnosis keys on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathGenerator {
    /// Stage count range.
    pub depth_range: (usize, usize),
    /// Wire length range per stage, µm.
    pub length_range: (f64, f64),
    /// Probability a stage routes on the upper layers.
    pub upper_layer_bias: f64,
    /// Number of metal layers.
    pub n_layers: u8,
}

impl Default for PathGenerator {
    fn default() -> Self {
        PathGenerator {
            depth_range: (6, 22),
            length_range: (5.0, 80.0),
            upper_layer_bias: 0.35,
            n_layers: 6,
        }
    }
}

impl PathGenerator {
    /// Generates one path with a fresh id.
    pub fn generate_with_id<R: Rng + ?Sized>(&self, id: usize, rng: &mut R) -> TimingPath {
        let depth = rng.gen_range(self.depth_range.0..=self.depth_range.1);
        let mut stages = Vec::with_capacity(depth);
        for _ in 0..depth {
            let cell = *CellKind::ALL.choose(rng).expect("non-empty library");
            let length_um = rng.gen_range(self.length_range.0..self.length_range.1);
            // Long wires want upper layers; short hops stay low.
            let layer = if rng.gen::<f64>() < self.upper_layer_bias {
                rng.gen_range(4..=self.n_layers)
            } else {
                rng.gen_range(1..=3.min(self.n_layers))
            };
            stages.push(Stage { cell, layer, length_um });
        }
        TimingPath { id, stages }
    }

    /// Generates one path with id 0 (convenience for doctests).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TimingPath {
        self.generate_with_id(0, rng)
    }

    /// Generates a population of `n` paths with sequential ids.
    pub fn generate_population<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<TimingPath> {
        (0..n).map(|id| self.generate_with_id(id, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_stage_path() -> TimingPath {
        TimingPath {
            id: 7,
            stages: vec![
                Stage { cell: CellKind::Inv, layer: 2, length_um: 10.0 },
                Stage { cell: CellKind::Nand2, layer: 5, length_um: 40.0 },
            ],
        }
    }

    #[test]
    fn via_counts_follow_layer_transitions() {
        let p = two_stage_path();
        // start at 1 -> 2: via12; 2 -> 5: via23, via34, via45
        let v = p.via_counts(6);
        assert_eq!(v, vec![1, 1, 1, 1, 0]);
    }

    #[test]
    fn wirelength_accumulates_per_layer() {
        let p = two_stage_path();
        let wl = p.wirelength_per_layer(6);
        assert_eq!(wl[1], 10.0);
        assert_eq!(wl[4], 40.0);
        assert_eq!(wl[0], 0.0);
    }

    #[test]
    fn features_match_names() {
        let p = two_stage_path();
        assert_eq!(p.features(6).len(), TimingPath::feature_names(6).len());
        let names = TimingPath::feature_names(6);
        let f = p.features(6);
        let get = |n: &str| f[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("depth"), 2.0);
        assert_eq!(get("n_inv"), 1.0);
        assert_eq!(get("via45"), 1.0);
        assert_eq!(get("wl_total"), 50.0);
    }

    #[test]
    fn generator_respects_ranges() {
        let g = PathGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        for p in g.generate_population(50, &mut rng) {
            assert!(p.depth() >= 6 && p.depth() <= 22);
            for s in &p.stages {
                assert!(s.length_um >= 5.0 && s.length_um < 80.0);
                assert!(s.layer >= 1 && s.layer <= 6);
            }
        }
    }

    #[test]
    fn population_has_via45_contrast() {
        // Some paths have many 4-5 vias, some none — the raw material of
        // the Fig. 10 clusters.
        let g = PathGenerator::default();
        let mut rng = StdRng::seed_from_u64(2);
        let pop = g.generate_population(200, &mut rng);
        let via45: Vec<usize> = pop.iter().map(|p| p.via_counts(6)[3]).collect();
        assert!(via45.contains(&0));
        assert!(via45.iter().any(|&c| c >= 5));
    }

    #[test]
    fn ids_are_sequential() {
        let g = PathGenerator::default();
        let mut rng = StdRng::seed_from_u64(3);
        let pop = g.generate_population(5, &mut rng);
        let ids: Vec<usize> = pop.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
