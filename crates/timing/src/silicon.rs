//! The silicon delay model: what paths *actually* do on the tester.
//!
//! Starts from the same physics as the timer, then applies injectable
//! systematic effects (unknown to the timer) plus global and random
//! variation. The injected effect is the experiment's ground truth: the
//! DSTC flow must rediscover it from data.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::library::InterconnectParams;
use crate::path::TimingPath;
use crate::sta::Timer;

/// A systematic silicon effect the signoff timer does not know about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystematicEffect {
    /// Every via between `lower_layer` and `lower_layer + 1` is
    /// resistive: adds `extra_ps` per via. (The paper's confirmed metal-5
    /// root cause is two of these: lower layers 4 and 5.)
    ViaResistance {
        /// Lower layer of the affected via pair.
        lower_layer: u8,
        /// Added delay per via, ps.
        extra_ps: f64,
    },
    /// Wires on `layer` are slower/faster than modeled by `factor`.
    LayerRcShift {
        /// Affected metal layer (1-based).
        layer: u8,
        /// Multiplier on that layer's wire delay (1.0 = nominal).
        factor: f64,
    },
    /// All cell delays scale by `factor` (global process shift).
    CellSpeedShift {
        /// Multiplier on every cell delay.
        factor: f64,
    },
}

/// The silicon model: nominal physics + systematic effects + variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiliconModel {
    /// True interconnect parameters (same nominal values as the timer).
    pub interconnect: InterconnectParams,
    /// Injected systematic effects.
    pub effects: Vec<SystematicEffect>,
    /// Relative sigma of multiplicative random variation per path.
    pub random_sigma: f64,
}

impl Default for SiliconModel {
    fn default() -> Self {
        SiliconModel {
            interconnect: InterconnectParams::default(),
            effects: Vec::new(),
            random_sigma: 0.02,
        }
    }
}

impl SiliconModel {
    /// Adds a systematic effect (builder-style).
    pub fn with_effect(mut self, effect: SystematicEffect) -> Self {
        self.effects.push(effect);
        self
    }

    /// Sets the random-variation sigma (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_random_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.random_sigma = sigma;
        self
    }

    /// The deterministic (noise-free) silicon delay of a path.
    pub fn systematic_delay(&self, path: &TimingPath) -> f64 {
        let n_layers = self.interconnect.n_layers();
        let mut cell_factor = 1.0;
        let mut layer_factors = vec![1.0; n_layers as usize];
        let mut via_extra = vec![0.0; (n_layers - 1) as usize];
        for e in &self.effects {
            match *e {
                SystematicEffect::ViaResistance { lower_layer, extra_ps } => {
                    if lower_layer >= 1 && lower_layer < n_layers {
                        via_extra[(lower_layer - 1) as usize] += extra_ps;
                    }
                }
                SystematicEffect::LayerRcShift { layer, factor } => {
                    if layer >= 1 && layer <= n_layers {
                        layer_factors[(layer - 1) as usize] *= factor;
                    }
                }
                SystematicEffect::CellSpeedShift { factor } => cell_factor *= factor,
            }
        }
        let mut delay = 0.0;
        for stage in &path.stages {
            delay += stage.cell.nominal_delay_ps() * cell_factor;
            delay += stage.length_um
                * self.interconnect.wire_ps_per_um(stage.layer)
                * layer_factors[(stage.layer - 1) as usize];
        }
        for (i, &count) in path.via_counts(n_layers).iter().enumerate() {
            delay += count as f64 * (self.interconnect.via_ps + via_extra[i]);
        }
        delay
    }

    /// One silicon measurement: systematic delay times a lognormal-ish
    /// random factor.
    pub fn measure<R: Rng + ?Sized>(&self, path: &TimingPath, rng: &mut R) -> f64 {
        let noise = 1.0 + self.random_sigma * edm_linalg::sample::standard_normal(rng);
        self.systematic_delay(path) * noise.max(0.5)
    }

    /// Measures a population (one die).
    pub fn measure_population<R: Rng + ?Sized>(
        &self,
        paths: &[TimingPath],
        rng: &mut R,
    ) -> Vec<f64> {
        paths.iter().map(|p| self.measure(p, rng)).collect()
    }
}

/// Convenience: predicted-vs-measured pairs for a population.
pub fn correlate<R: Rng + ?Sized>(
    timer: &Timer,
    silicon: &SiliconModel,
    paths: &[TimingPath],
    rng: &mut R,
) -> Vec<(f64, f64)> {
    paths.iter().map(|p| (timer.path_delay(p), silicon.measure(p, rng))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;
    use crate::path::{PathGenerator, Stage};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn via_heavy_path() -> TimingPath {
        TimingPath {
            id: 0,
            stages: vec![
                Stage { cell: CellKind::Inv, layer: 6, length_um: 10.0 },
                Stage { cell: CellKind::Inv, layer: 1, length_um: 10.0 },
                Stage { cell: CellKind::Inv, layer: 6, length_um: 10.0 },
            ],
        }
    }

    fn low_path() -> TimingPath {
        TimingPath {
            id: 1,
            stages: vec![
                Stage { cell: CellKind::Inv, layer: 1, length_um: 10.0 },
                Stage { cell: CellKind::Inv, layer: 2, length_um: 10.0 },
                Stage { cell: CellKind::Inv, layer: 1, length_um: 10.0 },
            ],
        }
    }

    #[test]
    fn no_effects_matches_timer() {
        let silicon = SiliconModel::default();
        let timer = Timer::default();
        let p = via_heavy_path();
        assert!((silicon.systematic_delay(&p) - timer.path_delay(&p)).abs() < 1e-9);
    }

    #[test]
    fn via_resistance_hits_only_affected_paths() {
        let silicon = SiliconModel::default()
            .with_effect(SystematicEffect::ViaResistance { lower_layer: 4, extra_ps: 6.0 })
            .with_effect(SystematicEffect::ViaResistance { lower_layer: 5, extra_ps: 6.0 });
        let timer = Timer::default();
        let heavy = via_heavy_path(); // 3 crossings of 4-5 and 5-6 each
        let light = low_path(); // none
        let heavy_mismatch = silicon.systematic_delay(&heavy) - timer.path_delay(&heavy);
        let light_mismatch = silicon.systematic_delay(&light) - timer.path_delay(&light);
        assert!((light_mismatch).abs() < 1e-9);
        // 3 via45 + 3 via56 crossings × 6 ps = 36 ps
        assert!((heavy_mismatch - 36.0).abs() < 1e-9, "got {heavy_mismatch}");
    }

    #[test]
    fn layer_rc_shift_scales_wire_only() {
        let silicon = SiliconModel::default()
            .with_effect(SystematicEffect::LayerRcShift { layer: 1, factor: 2.0 });
        let p = low_path(); // 20 um on M1 at 1.8 ps/um -> +36 ps
        let timer = Timer::default();
        let mismatch = silicon.systematic_delay(&p) - timer.path_delay(&p);
        assert!((mismatch - 36.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_noise_has_requested_scale() {
        let silicon = SiliconModel::default().with_random_sigma(0.05);
        let p = via_heavy_path();
        let mut rng = StdRng::seed_from_u64(4);
        let base = silicon.systematic_delay(&p);
        let samples: Vec<f64> = (0..4000).map(|_| silicon.measure(&p, &mut rng) / base).collect();
        assert!((edm_linalg::mean(&samples) - 1.0).abs() < 0.01);
        assert!((edm_linalg::variance(&samples).sqrt() - 0.05).abs() < 0.01);
    }

    #[test]
    fn correlate_pairs_have_positive_correlation() {
        let g = PathGenerator::default();
        let mut rng = StdRng::seed_from_u64(6);
        let pop = g.generate_population(200, &mut rng);
        let pairs = correlate(&Timer::default(), &SiliconModel::default(), &pop, &mut rng);
        let pred: Vec<f64> = pairs.iter().map(|&(p, _)| p).collect();
        let meas: Vec<f64> = pairs.iter().map(|&(_, m)| m).collect();
        assert!(edm_linalg::stats::pearson(&pred, &meas) > 0.95);
    }
}
