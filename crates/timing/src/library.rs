//! A minimal standard-cell library with nominal delays.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Standard-cell kinds used on timing paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// And-or-invert complex gate.
    Aoi21,
    /// 2:1 multiplexer.
    Mux2,
    /// Exclusive-or.
    Xor2,
}

impl CellKind {
    /// All cell kinds.
    pub const ALL: [CellKind; 7] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Aoi21,
        CellKind::Mux2,
        CellKind::Xor2,
    ];

    /// Nominal cell delay in picoseconds (typical corner, nominal load).
    pub fn nominal_delay_ps(self) -> f64 {
        match self {
            CellKind::Inv => 12.0,
            CellKind::Buf => 18.0,
            CellKind::Nand2 => 16.0,
            CellKind::Nor2 => 20.0,
            CellKind::Aoi21 => 26.0,
            CellKind::Mux2 => 30.0,
            CellKind::Xor2 => 34.0,
        }
    }

    /// Short library name.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Mux2 => "MUX2",
            CellKind::Xor2 => "XOR2",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-layer interconnect parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectParams {
    /// Wire delay per micrometre, per metal layer `1..=n_layers`
    /// (index 0 = layer 1). Upper layers are faster (wider/thicker).
    pub ps_per_um: Vec<f64>,
    /// Nominal delay of one via, ps.
    pub via_ps: f64,
}

impl Default for InterconnectParams {
    fn default() -> Self {
        InterconnectParams {
            // M1..M6: lower layers are thin and slow, top layers fast.
            ps_per_um: vec![1.8, 1.5, 1.1, 0.8, 0.55, 0.35],
            via_ps: 2.0,
        }
    }
}

impl InterconnectParams {
    /// Number of metal layers.
    pub fn n_layers(&self) -> u8 {
        self.ps_per_um.len() as u8
    }

    /// Wire delay per µm on `layer` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or above the layer count.
    pub fn wire_ps_per_um(&self, layer: u8) -> f64 {
        assert!(
            layer >= 1 && layer <= self.n_layers(),
            "layer {layer} out of range 1..={}",
            self.n_layers()
        );
        self.ps_per_um[(layer - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_positive_and_distinct_enough() {
        for c in CellKind::ALL {
            assert!(c.nominal_delay_ps() > 0.0);
        }
        assert!(CellKind::Xor2.nominal_delay_ps() > CellKind::Inv.nominal_delay_ps());
    }

    #[test]
    fn upper_layers_are_faster() {
        let p = InterconnectParams::default();
        for l in 1..p.n_layers() {
            assert!(p.wire_ps_per_um(l) > p.wire_ps_per_um(l + 1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_zero_rejected() {
        let _ = InterconnectParams::default().wire_ps_per_um(0);
    }
}
