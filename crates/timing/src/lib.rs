//! # edm-timing — a design-silicon timing-correlation substrate
//!
//! A synthetic stand-in for the DSTC environment of the paper's Fig. 10
//! (refs \[29\]\[31\]): a small standard-cell [`library`], randomly
//! generated timing [`path`]s with per-layer wires and stacked vias, a
//! signoff [`sta`] timer, and a [`silicon`] delay model into which
//! *systematic effects* can be injected — e.g. the resistive
//! layer-4-5/5-6 vias that turned out to be the paper's confirmed root
//! cause.
//!
//! The DSTC flow in `edm-core` then does what the paper's methodology
//! did: cluster paths in (predicted, measured) space, and rule-learn on
//! named path features to explain the slow cluster — with the injected
//! effect serving as recoverable ground truth.
//!
//! # Example
//!
//! ```
//! use edm_timing::path::PathGenerator;
//! use edm_timing::silicon::{SiliconModel, SystematicEffect};
//! use edm_timing::sta::Timer;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let path = PathGenerator::default().generate(&mut rng);
//! let predicted = Timer::default().path_delay(&path);
//! let silicon = SiliconModel::default()
//!     .with_effect(SystematicEffect::ViaResistance { lower_layer: 4, extra_ps: 6.0 });
//! let measured = silicon.measure(&path, &mut rng);
//! assert!(predicted > 0.0 && measured > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod library;
pub mod path;
pub mod silicon;
pub mod sta;
