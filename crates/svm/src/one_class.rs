use edm_kernels::{gram_row, Kernel, RbfKernel};
use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::qmatrix::{CacheStats, CachedQ, DenseQ, KernelQ, QMatrix, DEFAULT_CACHE_BYTES};
use crate::solver::{solve, DualProblem, SolverOptions, WorkingSet};
use crate::SvmError;

/// Hyperparameters for ν one-class SVM training (Schölkopf et al.).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OneClassParams {
    /// `ν ∈ (0, 1]`: an upper bound on the fraction of training samples
    /// treated as outliers and a lower bound on the fraction of support
    /// vectors.
    pub nu: f64,
    /// KKT stopping tolerance.
    pub tol: f64,
    /// SMO iteration cap.
    pub max_iter: usize,
    /// Byte budget of the Q-row cache used during training
    /// ([`DEFAULT_CACHE_BYTES`] by default; `0` disables caching).
    pub cache_bytes: usize,
    /// SMO shrinking heuristic (on by default; `false` reproduces the
    /// unshrunk solver).
    pub shrinking: bool,
    /// SMO working-set selection rule (second order by default).
    pub working_set: WorkingSet,
}

impl Default for OneClassParams {
    fn default() -> Self {
        OneClassParams {
            nu: 0.1,
            tol: 1e-4,
            max_iter: 100_000,
            cache_bytes: DEFAULT_CACHE_BYTES,
            shrinking: true,
            working_set: WorkingSet::SecondOrder,
        }
    }
}

impl OneClassParams {
    /// Sets ν.
    pub fn with_nu(mut self, nu: f64) -> Self {
        self.nu = nu;
        self
    }

    /// Sets the Q-row cache byte budget (`0` disables caching).
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Enables or disables the SMO shrinking heuristic.
    pub fn with_shrinking(mut self, shrinking: bool) -> Self {
        self.shrinking = shrinking;
        self
    }

    /// Sets the SMO working-set selection rule.
    pub fn with_working_set(mut self, working_set: WorkingSet) -> Self {
        self.working_set = working_set;
        self
    }

    pub(crate) fn solver_opts(&self) -> SolverOptions {
        SolverOptions {
            working_set: self.working_set,
            shrinking: self.shrinking,
            shrink_interval: 0,
        }
    }

    fn validate(&self) -> Result<(), SvmError> {
        if !(self.nu > 0.0 && self.nu <= 1.0) {
            return Err(SvmError::InvalidParameter {
                name: "nu",
                value: self.nu,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(())
    }
}

/// ν one-class SVM trainer — the paper's novelty-detection workhorse.
///
/// Learns the support of the training distribution; new samples scoring
/// negative are *novel*. Used by the novel-test-selection flow (Fig. 7)
/// over a spectrum kernel on assembly programs, and by the layout
/// variability study (Fig. 9) alongside binary SVC.
///
/// # Example
///
/// ```
/// use edm_kernels::RbfKernel;
/// use edm_svm::{OneClassParams, OneClassSvm};
///
/// // A tight cluster near the origin...
/// let x: Vec<Vec<f64>> = (0..20)
///     .map(|i| vec![(i % 5) as f64 * 0.05, (i / 5) as f64 * 0.05])
///     .collect();
/// let m = OneClassSvm::new(OneClassParams::default().with_nu(0.2))
///     .kernel(RbfKernel::new(1.0))
///     .fit(&x)?;
/// // ...flags a far-away point as novel.
/// assert!(m.is_novel(&[5.0, 5.0]));
/// assert!(!m.is_novel(&[0.1, 0.1]));
/// # Ok::<(), edm_svm::SvmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OneClassSvm<K = RbfKernel> {
    params: OneClassParams,
    kernel: K,
}

impl OneClassSvm<RbfKernel> {
    /// Creates a trainer with the default RBF kernel (γ = 1).
    pub fn new(params: OneClassParams) -> Self {
        OneClassSvm { params, kernel: RbfKernel::new(1.0) }
    }
}

impl<K> OneClassSvm<K> {
    /// Replaces the kernel (builder-style).
    pub fn kernel<K2>(self, kernel: K2) -> OneClassSvm<K2> {
        OneClassSvm { params: self.params, kernel }
    }

    /// The training hyperparameters.
    pub fn params(&self) -> &OneClassParams {
        &self.params
    }
}

impl<K: Kernel<[f64]> + Clone> OneClassSvm<K> {
    /// Trains on unlabeled vector samples.
    ///
    /// # Errors
    ///
    /// [`SvmError::InvalidInput`] on empty or ragged input, invalid ν, or
    /// SMO non-convergence.
    pub fn fit(&self, x: &[Vec<f64>]) -> Result<OneClassModel<K>, SvmError> {
        let _span = edm_trace::span("svm.one_class.fit");
        if x.is_empty() {
            return Err(SvmError::InvalidInput("empty training set".into()));
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(SvmError::InvalidInput("ragged sample rows".into()));
        }
        self.params.validate()?;
        // One-class Q is the kernel matrix itself; rows are computed on
        // demand behind the LRU cache, never materializing the Gram.
        let source = KernelQ::<[f64], _, _>::new(&self.kernel, x, None);
        let mut q = CachedQ::new(source, self.params.cache_bytes);
        let (alpha, rho, iterations) = solve_one_class_q(&mut q, x.len(), &self.params)?;
        let cache = q.stats();
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for (i, &a) in alpha.iter().enumerate() {
            if a > 1e-12 {
                support.push(x[i].clone());
                coef.push(a);
            }
        }
        Ok(OneClassModel {
            kernel: self.kernel.clone(),
            n_features: d,
            support,
            coef,
            rho,
            iterations,
            cache,
        })
    }
}

/// Solves the one-class dual over a precomputed Gram matrix; returns
/// `(alpha, rho, iterations)`.
///
/// The kernel-only entry point for non-vector samples (assembly
/// programs, layout clips): callers score a new sample `x` as
/// `Σᵢ αᵢ k(x, xᵢ) − ρ` using [`edm_kernels::gram_row`], negative =
/// novel. This is how the Fig. 7 flow in `edm-core` consumes it.
///
/// # Errors
///
/// [`SvmError::InvalidInput`] if `gram` is empty or not square, or an
/// invalid ν / non-convergence error.
pub fn solve_one_class(
    gram: &Matrix,
    params: &OneClassParams,
) -> Result<(Vec<f64>, f64, usize), SvmError> {
    params.validate()?;
    let n = gram.rows();
    if n == 0 || !gram.is_square() {
        return Err(SvmError::InvalidInput(format!(
            "gram must be square and non-empty, got {}x{}",
            gram.rows(),
            gram.cols()
        )));
    }
    // Q = K exactly, so rows are borrowed zero-copy from the caller's
    // matrix — no cache needed (shrinking swaps switch the view to
    // gathered rows without copying the matrix).
    let mut q = DenseQ::new(gram);
    solve_one_class_q(&mut q, n, params)
}

/// Shared one-class dual assembly over any [`QMatrix`] (`Q = K`).
fn solve_one_class_q(
    q: &mut dyn QMatrix,
    n: usize,
    params: &OneClassParams,
) -> Result<(Vec<f64>, f64, usize), SvmError> {
    // Feasible start: Σα = νn with 0 ≤ α ≤ 1 (LIBSVM's initialization).
    let total = params.nu * n as f64;
    let full = total.floor() as usize;
    let mut alpha0 = vec![0.0; n];
    for a in alpha0.iter_mut().take(full.min(n)) {
        *a = 1.0;
    }
    if full < n {
        alpha0[full] = total - full as f64;
    }
    let problem = DualProblem {
        p: vec![0.0; n],
        y: vec![1.0; n],
        c: vec![1.0; n],
        alpha0,
        tol: params.tol,
        max_iter: params.max_iter,
        opts: params.solver_opts(),
    };
    let sol = solve(q, &problem)?;
    Ok((sol.alpha, sol.rho, sol.iterations))
}

/// A trained one-class model: `f(x) = Σᵢ αᵢ k(x, xᵢ) − ρ`, novel iff
/// `f(x) < 0`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneClassModel<K> {
    kernel: K,
    n_features: usize,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>,
    rho: f64,
    iterations: usize,
    cache: CacheStats,
}

impl<K: Kernel<[f64]>> OneClassModel<K> {
    /// The decision value `f(x)`; negative means novel/outlier.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let row = gram_row(&self.kernel, x, &self.support);
        edm_linalg::dot(&row, &self.coef) - self.rho
    }

    /// Whether `x` lies outside the learned support region.
    pub fn is_novel(&self, x: &[f64]) -> bool {
        self.decision_function(x) < 0.0
    }

    /// Decision values for a batch of samples, one support-vector sweep
    /// per sample distributed across worker threads; bitwise identical
    /// to mapping [`OneClassModel::decision_function`] serially.
    pub fn decision_function_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        edm_par::map_indexed(xs.len(), |i| self.decision_function(&xs[i]))
    }

    /// Novelty flags for a batch of samples (parallel; bitwise
    /// identical to mapping [`OneClassModel::is_novel`]).
    pub fn is_novel_batch(&self, xs: &[Vec<f64>]) -> Vec<bool> {
        edm_par::map_indexed(xs.len(), |i| self.is_novel(&xs[i]))
    }
}

impl<K> OneClassModel<K> {
    /// Reassembles a model from its persisted parts — the inverse of
    /// the accessors below, used by `edm::persist` to reload saved
    /// models.
    pub fn from_parts(
        kernel: K,
        n_features: usize,
        support: Vec<Vec<f64>>,
        coef: Vec<f64>,
        rho: f64,
        iterations: usize,
        cache: CacheStats,
    ) -> Self {
        assert_eq!(support.len(), coef.len(), "one coefficient per support vector");
        OneClassModel { kernel, n_features, support, coef, rho, iterations, cache }
    }

    /// The kernel the model scores with.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The support vectors.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support
    }

    /// The dual coefficients `αᵢ`, aligned with
    /// [`OneClassModel::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// Dimensionality of the training samples; every sample scored by
    /// this model must have exactly this many features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The offset ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// SMO iterations used in training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Q-row cache behaviour during this model's training run.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_kernels::gram_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| vec![rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4]).collect()
    }

    #[test]
    fn far_points_are_novel_near_points_are_not() {
        let x = cluster(60, 1);
        let m = OneClassSvm::new(OneClassParams::default().with_nu(0.1))
            .kernel(RbfKernel::new(2.0))
            .fit(&x)
            .unwrap();
        assert!(m.is_novel(&[3.0, 3.0]));
        assert!(m.is_novel(&[-2.0, 0.2]));
        assert!(!m.is_novel(&[0.2, 0.2]));
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        // ν upper-bounds the fraction of training samples scored novel.
        let x = cluster(100, 2);
        for nu in [0.05, 0.2, 0.5] {
            let m = OneClassSvm::new(OneClassParams::default().with_nu(nu))
                .kernel(RbfKernel::new(1.0))
                .fit(&x)
                .unwrap();
            let outliers = x.iter().filter(|p| m.decision_function(p) < -1e-9).count();
            let frac = outliers as f64 / x.len() as f64;
            assert!(frac <= nu + 0.05, "nu = {nu}: training outlier fraction {frac} exceeds bound");
        }
    }

    #[test]
    fn nu_controls_support_vector_count() {
        let x = cluster(100, 3);
        let m = OneClassSvm::new(OneClassParams::default().with_nu(0.5))
            .kernel(RbfKernel::new(1.0))
            .fit(&x)
            .unwrap();
        // ν lower-bounds the SV fraction.
        assert!(m.n_support() as f64 >= 0.5 * x.len() as f64 - 1.0);
    }

    #[test]
    fn invalid_nu_rejected() {
        let t = OneClassSvm::new(OneClassParams::default().with_nu(0.0));
        assert!(matches!(t.fit(&[vec![0.0]]), Err(SvmError::InvalidParameter { name: "nu", .. })));
        let t = OneClassSvm::new(OneClassParams::default().with_nu(1.5));
        assert!(matches!(t.fit(&[vec![0.0]]), Err(SvmError::InvalidParameter { name: "nu", .. })));
    }

    #[test]
    fn gram_only_path_scores_like_model() {
        let x = cluster(40, 4);
        let k = RbfKernel::new(1.5);
        let params = OneClassParams::default().with_nu(0.15);
        let model = OneClassSvm::new(params).kernel(k).fit(&x).unwrap();
        let gram = gram_matrix(&k, &x);
        let (alpha, rho, _) = solve_one_class(&gram, &params).unwrap();
        let probe = vec![0.9, 0.1];
        let row = gram_row(&k, probe.as_slice(), &x);
        let f = edm_linalg::dot(&row, &alpha) - rho;
        assert!((f - model.decision_function(&probe)).abs() < 1e-9);
    }
}
