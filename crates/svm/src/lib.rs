//! # edm-svm — support vector machines over arbitrary kernels
//!
//! The SVM family is the paper's workhorse (§2.3): a learned model of the
//! form
//!
//! ```text
//! M(x) = Σᵢ αᵢ k(x, xᵢ) + b          (paper Eq. 2)
//! ```
//!
//! with model complexity `C = Σᵢ αᵢ` controlled by regularization. This
//! crate provides the three members the paper's applications use:
//!
//! * [`SvcTrainer`] — binary C-SVC classification (layout good/bad,
//!   Fig. 9);
//! * [`SvrTrainer`] — ε-insensitive regression (one of the five Fmax
//!   regressor families of paper ref \[20\]);
//! * [`OneClassSvm`] — Schölkopf ν one-class novelty detection (novel
//!   test selection Fig. 7, customer returns Fig. 11).
//!
//! All three are solved by one sequential-minimal-optimization core
//! ([`solver`]) over the dual problem, in the LIBSVM formulation with
//! second-order (WSS2) working-set selection and the shrinking
//! heuristic, both on by default and switchable per trainer through the
//! `shrinking` / `working_set` params (see [`solver::SolverOptions`]).
//! The solver reads `Q` through the row-oriented [`qmatrix::QMatrix`]
//! trait; the vector `fit` entry points compute kernel rows on demand
//! behind a byte-budgeted LRU row cache ([`qmatrix::CachedQ`],
//! LIBSVM-style) so the n×n Gram matrix is never materialized, while
//! the precomputed-Gram entry points read rows straight from the
//! caller's matrix. The cache budget is the `cache_bytes` knob on each
//! params struct; caching and parallel row fills never change results —
//! rows are bitwise identical however they are produced. Batch
//! prediction (`predict_batch` / `decision_function_batch`) fans
//! samples out across worker threads with the same bitwise-determinism
//! guarantee.
//!
//! Following the paper's Figure 4, the solvers touch training data only
//! through a Gram matrix: every trainer has a `fit_gram` entry point that
//! takes a precomputed kernel matrix, which is how non-vector samples
//! (assembly programs, layout clips) are trained on; the vector `fit`
//! entry points are convenience wrappers that build the Gram from a
//! [`Kernel<[f64]>`](edm_kernels::Kernel).
//!
//! # Example
//!
//! ```
//! use edm_kernels::RbfKernel;
//! use edm_svm::{SvcParams, SvcTrainer};
//!
//! let x = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.2], vec![0.9, 1.0], vec![1.0, 0.8],
//! ];
//! let y = vec![-1.0, -1.0, 1.0, 1.0];
//! let model = SvcTrainer::new(SvcParams::default())
//!     .kernel(RbfKernel::new(1.0))
//!     .fit(&x, &y)?;
//! assert_eq!(model.predict(&[0.05, 0.1]), -1.0);
//! assert_eq!(model.predict(&[0.95, 0.9]), 1.0);
//! # Ok::<(), edm_svm::SvmError>(())
//! ```

#![forbid(unsafe_code)]

mod error;
mod one_class;
pub mod qmatrix;
pub mod solver;
mod svc;
mod svr;

pub use error::SvmError;
pub use one_class::{solve_one_class, OneClassModel, OneClassParams, OneClassSvm};
pub use qmatrix::{CacheStats, CachedQ, DenseQ, GramQ, KernelQ, QMatrix, QRow, QSource, SvrQ};
pub use solver::{SolverOptions, WorkingSet};
pub use svc::{solve_svc, SvcModel, SvcParams, SvcTrainer};
pub use svr::{SvrModel, SvrParams, SvrTrainer};
