//! The `Q` matrix abstraction behind the SMO solver, with a
//! LIBSVM-style LRU row cache.
//!
//! The dual problem's `Q` (`Qᵢⱼ = yᵢyⱼ k(xᵢ, xⱼ)` for SVC, the 2m×2m
//! block form for SVR, plain `K` for one-class) is n×n and often too
//! large to materialize. The solver therefore consumes it through the
//! [`QMatrix`] trait — whole rows at a time, because SMO's gradient
//! update reads `Q(t, i)` for *all* `t` at a fixed `i` — and this module
//! provides the implementations:
//!
//! * [`DenseQ`] — zero-copy rows borrowed from an already-materialized
//!   [`Matrix`] (the precomputed-Gram entry points, tests);
//! * [`CachedQ`] — the workhorse: wraps any [`QSource`] in an LRU row
//!   cache bounded by a byte budget, so the working set of an SMO run
//!   (typically a small fraction of all rows) is computed once.
//!
//! Row *sources* (the `fill_row` strategies) are:
//!
//! * [`GramQ`] — rows read from a materialized Gram matrix, sign-adjusted;
//! * [`KernelQ`] — rows computed on demand from a kernel and the raw
//!   samples, never materializing the n×n matrix (LIBSVM's mode);
//! * [`SvrQ`] — the 2m×2m SVR block structure over m samples, computing
//!   each underlying kernel row once and mirroring it with signs.
//!
//! On a cache miss, [`KernelQ`] and [`SvrQ`] fill rows with worker
//! threads (under the `parallel` feature), and multi-row requests
//! ([`QMatrix::rows_prefix`]) batch all missing rows into *one*
//! sample-major pass over the data ([`QSource::fill_rows`]), so each
//! item is loaded once per batch instead of once per row. Every entry
//! is one independent kernel evaluation, so serial, parallel, and
//! batched fills are bitwise identical, and a cached row is bitwise
//! identical to a recomputed one — caching can change solver timings
//! but never results.

use std::borrow::Borrow;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::ops::Deref;
use std::rc::Rc;

use edm_kernels::Kernel;
use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Default row-cache budget (64 MiB), mirroring LIBSVM's order of
/// magnitude (its `-m` option defaults to 100 MB).
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Chunk size for parallel on-demand row fills: large enough that
/// per-chunk dispatch cost is negligible next to the kernel evaluations.
const Q_ROW_CHUNK: usize = 512;

/// One row of `Q`, either borrowed from backing storage or shared with
/// the row cache.
///
/// Dereferences to `&[f64]`. The `Shared` form keeps the row alive even
/// if the cache evicts it while the solver still holds the handle.
pub enum QRow<'a> {
    /// A row borrowed directly from a materialized matrix.
    Borrowed(&'a [f64]),
    /// A row shared with (or just computed by) a [`CachedQ`].
    Shared(Rc<[f64]>),
}

impl Deref for QRow<'_> {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        match self {
            QRow::Borrowed(r) => r,
            QRow::Shared(r) => r,
        }
    }
}

/// Row-oriented view of the symmetric dual-problem matrix `Q`.
///
/// The solver fetches the two working-set rows once per iteration and
/// streams them through its gradient update; `Q(i, j)` point access is
/// just `row(i)[j]`.
///
/// The shrinking heuristic renumbers variables so the active set is
/// always a prefix `0..active_size`. [`QMatrix::swap_index`] applies
/// that renumbering to the matrix view (and to any resident cache
/// rows), and [`QMatrix::row_prefix`] lets the solver ask for only the
/// active prefix of a row so shrunk iterations never pay for inactive
/// columns.
pub trait QMatrix {
    /// Problem size (Q is `n × n`).
    fn n(&self) -> usize;

    /// The precomputed diagonal `Q(i, i)`.
    fn diag(&self) -> &[f64];

    /// Row `i` of `Q`. The returned slice has at least `self.n()`
    /// valid entries.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n()`.
    fn row(&self, i: usize) -> QRow<'_>;

    /// Row `i` of `Q` with at least the first `len` entries valid; the
    /// returned slice may be shorter than `self.n()` but never shorter
    /// than `len`. The default just returns the full row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n()` or `len > self.n()`.
    fn row_prefix(&self, i: usize, len: usize) -> QRow<'_> {
        assert!(len <= self.n(), "prefix {len} out of bounds for n = {}", self.n());
        self.row(i)
    }

    /// Several row prefixes at once: slot `r` of the result is row
    /// `idxs[r]` with at least the first `len` entries valid.
    ///
    /// The default loops [`QMatrix::row_prefix`]. [`CachedQ`] overrides
    /// it to materialize all rows missing from its cache in *one*
    /// batched pass over the data (the hot case: WSS2's two working-set
    /// rows per iteration, and the solver's gradient-initialization and
    /// reconstruction sweeps). Batching never changes a row's contents
    /// — each returned row is bitwise identical to a lone
    /// `row_prefix` fetch.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= self.n()` or `len > self.n()`.
    fn rows_prefix(&self, idxs: &[usize], len: usize) -> Vec<QRow<'_>> {
        idxs.iter().map(|&i| self.row_prefix(i, len)).collect()
    }

    /// Renumbers variables `a` and `b` (rows *and* columns swap, since
    /// `Q` is symmetric): after the call, `row(a)` is the old `row(b)`
    /// with entries `a`/`b` exchanged, and `diag()` reflects the new
    /// order. Used by the solver's shrinking heuristic to keep the
    /// active set a contiguous prefix.
    ///
    /// Rows handed out *before* the swap keep the old numbering.
    ///
    /// # Panics
    ///
    /// Panics if `a >= self.n()` or `b >= self.n()`.
    fn swap_index(&mut self, a: usize, b: usize);
}

/// A strategy for computing rows of `Q` from scratch — what [`CachedQ`]
/// calls on a cache miss.
pub trait QSource {
    /// Problem size.
    fn n(&self) -> usize;

    /// Computes the diagonal `Q(i, i)` for all `i`.
    fn diag(&self) -> Vec<f64>;

    /// Writes row `i` of `Q` into `out` (`out.len() == self.n()`).
    fn fill_row(&self, i: usize, out: &mut [f64]);

    /// Computes the single entry `Q(i, j)`.
    ///
    /// Must be bitwise identical to what [`QSource::fill_row`] writes
    /// at position `j` — [`CachedQ`] mixes contiguous fills, gathered
    /// fills, and prefix extensions within one row.
    fn entry(&self, i: usize, j: usize) -> f64;

    /// Writes `out[t] = Q(i, idx[t])` — a gathered row fill used by
    /// [`CachedQ`] once shrinking has permuted variables. Each entry is
    /// an independent [`QSource::entry`] evaluation, so gather order
    /// never changes results.
    fn fill_row_gather(&self, i: usize, idx: &[usize], out: &mut [f64]) {
        for (v, &j) in out.iter_mut().zip(idx) {
            *v = self.entry(i, j);
        }
    }

    /// Writes several full rows at once: `outs[r]` receives row
    /// `rows[r]`, exactly as [`QSource::fill_row`] would.
    ///
    /// The default loops `fill_row`. Sources that stream the underlying
    /// data ([`KernelQ`], [`SvrQ`]) override it to compute *all* batch
    /// rows against each sample while it is cache-hot, so a B-row batch
    /// costs one pass over the data instead of B. Every cell is the
    /// same single evaluation either way — batched, looped, serial, and
    /// parallel fills are all bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != outs.len()`.
    fn fill_rows(&self, rows: &[usize], outs: &mut [&mut [f64]]) {
        assert_eq!(rows.len(), outs.len(), "one output slice per batch row");
        for (&i, out) in rows.iter().zip(outs.iter_mut()) {
            self.fill_row(i, out);
        }
    }

    /// Gathered form of [`QSource::fill_rows`]: `outs[r][t] =
    /// Q(rows[r], idx[t])`, exactly as [`QSource::fill_row_gather`]
    /// would produce.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != outs.len()`.
    fn fill_rows_gather(&self, rows: &[usize], idx: &[usize], outs: &mut [&mut [f64]]) {
        assert_eq!(rows.len(), outs.len(), "one output slice per batch row");
        for (&i, out) in rows.iter().zip(outs.iter_mut()) {
            self.fill_row_gather(i, idx, out);
        }
    }
}

// ---------------------------------------------------------------------
// DenseQ: zero-copy rows over a materialized matrix.
// ---------------------------------------------------------------------

/// [`QMatrix`] over an already-materialized symmetric matrix: rows are
/// borrowed, never copied, so no cache is needed.
///
/// Used by solver tests and anywhere a small `Q` already exists in
/// memory. Rows stay zero-copy until the first [`QMatrix::swap_index`];
/// after that, rows are gathered through the permutation (an O(n)
/// copy per fetch, still no O(n²) duplicate of the matrix).
pub struct DenseQ<'a> {
    m: &'a Matrix,
    diag: Vec<f64>,
    /// `perm[view index] = backing-matrix index`.
    perm: Vec<usize>,
    permuted: bool,
}

impl<'a> DenseQ<'a> {
    /// Wraps a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square.
    pub fn new(m: &'a Matrix) -> Self {
        assert!(m.is_square(), "Q must be square, got {}x{}", m.rows(), m.cols());
        let diag = (0..m.rows()).map(|i| m[(i, i)]).collect();
        DenseQ { m, diag, perm: (0..m.rows()).collect(), permuted: false }
    }
}

impl QMatrix for DenseQ<'_> {
    fn n(&self) -> usize {
        self.m.rows()
    }

    fn diag(&self) -> &[f64] {
        &self.diag
    }

    fn row(&self, i: usize) -> QRow<'_> {
        self.row_prefix(i, self.m.rows())
    }

    fn row_prefix(&self, i: usize, len: usize) -> QRow<'_> {
        let n = self.m.rows();
        assert!(i < n, "row {i} out of bounds for n = {n}");
        assert!(len <= n, "prefix {len} out of bounds for n = {n}");
        if !self.permuted {
            return QRow::Borrowed(self.m.row(i));
        }
        let src = self.m.row(self.perm[i]);
        QRow::Shared(self.perm[..len].iter().map(|&t| src[t]).collect())
    }

    fn swap_index(&mut self, a: usize, b: usize) {
        let n = self.m.rows();
        assert!(a < n && b < n, "swap ({a}, {b}) out of bounds for n = {n}");
        if a == b {
            return;
        }
        self.perm.swap(a, b);
        self.diag.swap(a, b);
        self.permuted = true;
    }
}

// ---------------------------------------------------------------------
// GramQ: rows read from a materialized Gram matrix, sign-adjusted.
// ---------------------------------------------------------------------

/// [`QSource`] over a materialized Gram matrix with optional label
/// signs: `Q(i, j) = yᵢ yⱼ K(i, j)` (or plain `K` when `signs` is
/// `None`).
pub struct GramQ<'a> {
    gram: &'a Matrix,
    signs: Option<&'a [f64]>,
}

impl<'a> GramQ<'a> {
    /// Wraps a square Gram matrix; `signs`, when given, must be `±1`
    /// per sample.
    ///
    /// # Panics
    ///
    /// Panics if `gram` is not square or `signs` has the wrong length.
    pub fn new(gram: &'a Matrix, signs: Option<&'a [f64]>) -> Self {
        assert!(gram.is_square(), "gram must be square");
        if let Some(s) = signs {
            assert_eq!(s.len(), gram.rows(), "signs length must match gram");
        }
        GramQ { gram, signs }
    }
}

impl QSource for GramQ<'_> {
    fn n(&self) -> usize {
        self.gram.rows()
    }

    fn diag(&self) -> Vec<f64> {
        // signs are ±1, so yᵢ² = 1 and the diagonal is K's.
        (0..self.gram.rows()).map(|i| self.gram[(i, i)]).collect()
    }

    fn fill_row(&self, i: usize, out: &mut [f64]) {
        let row = self.gram.row(i);
        match self.signs {
            Some(s) => {
                let si = s[i];
                for ((v, &k), &sj) in out.iter_mut().zip(row).zip(s) {
                    *v = si * sj * k;
                }
            }
            None => out.copy_from_slice(row),
        }
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        match self.signs {
            Some(s) => s[i] * s[j] * self.gram[(i, j)],
            None => self.gram[(i, j)],
        }
    }
}

// ---------------------------------------------------------------------
// KernelQ: rows computed on demand from a kernel over the raw samples.
// ---------------------------------------------------------------------

/// [`QSource`] that evaluates the kernel on demand — the Gram matrix is
/// never materialized, so memory stays `O(cache)` instead of `O(n²)`.
///
/// Row fills run on worker threads (with the `parallel` feature); each
/// entry is one independent kernel evaluation, so serial and parallel
/// fills are bitwise identical.
pub struct KernelQ<'a, S: ?Sized, K, I> {
    kernel: &'a K,
    items: &'a [I],
    signs: Option<&'a [f64]>,
    _sample: PhantomData<&'a S>,
}

impl<'a, S, K, I> KernelQ<'a, S, K, I>
where
    S: Sync + ?Sized,
    K: Kernel<S>,
    I: Borrow<S> + Sync,
{
    /// Builds the source; `signs`, when given, must be `±1` per sample.
    ///
    /// # Panics
    ///
    /// Panics if `signs` has the wrong length.
    pub fn new(kernel: &'a K, items: &'a [I], signs: Option<&'a [f64]>) -> Self {
        if let Some(s) = signs {
            assert_eq!(s.len(), items.len(), "signs length must match items");
        }
        KernelQ { kernel, items, signs, _sample: PhantomData }
    }
}

impl<S, K, I> QSource for KernelQ<'_, S, K, I>
where
    S: Sync + ?Sized,
    K: Kernel<S>,
    I: Borrow<S> + Sync,
{
    fn n(&self) -> usize {
        self.items.len()
    }

    fn diag(&self) -> Vec<f64> {
        self.items.iter().map(|x| self.kernel.eval(x.borrow(), x.borrow())).collect()
    }

    fn fill_row(&self, i: usize, out: &mut [f64]) {
        self.fill_rows(&[i], &mut [out]);
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        let k = self.kernel.eval(self.items[i].borrow(), self.items[j].borrow());
        match self.signs {
            // Same expression shape as `fill_rows`'s `*v *= si * sj`
            // (exact either way: sign factors are ±1).
            Some(s) => k * (s[i] * s[j]),
            None => k,
        }
    }

    fn fill_row_gather(&self, i: usize, idx: &[usize], out: &mut [f64]) {
        self.fill_rows_gather(&[i], idx, &mut [out]);
    }

    fn fill_rows(&self, rows: &[usize], outs: &mut [&mut [f64]]) {
        assert_eq!(rows.len(), outs.len(), "one output slice per batch row");
        let b = rows.len();
        if b == 0 {
            return;
        }
        let xs: Vec<&S> = rows.iter().map(|&i| self.items[i].borrow()).collect();
        if b == 1 {
            let out = &mut *outs[0];
            let xi = xs[0];
            edm_par::for_each_chunk(out, Q_ROW_CHUNK, |c, chunk| {
                let start = c * Q_ROW_CHUNK;
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v = self.kernel.eval(xi, self.items[start + off].borrow());
                }
            });
        } else {
            // Sample-major batch: each chunk of items is loaded once and
            // evaluated against every batch row while cache-hot. The
            // interleaved scratch (`scratch[t * b + r]`) keeps a parallel
            // chunk a contiguous run of whole sample-columns.
            let n = self.items.len();
            let mut scratch = vec![0.0; n * b];
            edm_par::for_each_chunk(&mut scratch, Q_ROW_CHUNK * b, |c, chunk| {
                let t0 = c * Q_ROW_CHUNK;
                for (dt, cell) in chunk.chunks_exact_mut(b).enumerate() {
                    let xt = self.items[t0 + dt].borrow();
                    for (v, xi) in cell.iter_mut().zip(&xs) {
                        *v = self.kernel.eval(xi, xt);
                    }
                }
            });
            for (r, out) in outs.iter_mut().enumerate() {
                for (t, v) in out.iter_mut().enumerate() {
                    *v = scratch[t * b + r];
                }
            }
        }
        if let Some(s) = self.signs {
            for (&i, out) in rows.iter().zip(outs.iter_mut()) {
                let si = s[i];
                for (v, &sj) in out.iter_mut().zip(s) {
                    *v *= si * sj;
                }
            }
        }
    }

    fn fill_rows_gather(&self, rows: &[usize], idx: &[usize], outs: &mut [&mut [f64]]) {
        assert_eq!(rows.len(), outs.len(), "one output slice per batch row");
        let b = rows.len();
        if b == 0 {
            return;
        }
        let xs: Vec<&S> = rows.iter().map(|&i| self.items[i].borrow()).collect();
        if b == 1 {
            let out = &mut *outs[0];
            debug_assert_eq!(idx.len(), out.len());
            let xi = xs[0];
            edm_par::for_each_chunk(out, Q_ROW_CHUNK, |c, chunk| {
                let start = c * Q_ROW_CHUNK;
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v = self.kernel.eval(xi, self.items[idx[start + off]].borrow());
                }
            });
        } else {
            let mut scratch = vec![0.0; idx.len() * b];
            edm_par::for_each_chunk(&mut scratch, Q_ROW_CHUNK * b, |c, chunk| {
                let t0 = c * Q_ROW_CHUNK;
                for (dt, cell) in chunk.chunks_exact_mut(b).enumerate() {
                    let xt = self.items[idx[t0 + dt]].borrow();
                    for (v, xi) in cell.iter_mut().zip(&xs) {
                        *v = self.kernel.eval(xi, xt);
                    }
                }
            });
            for (r, out) in outs.iter_mut().enumerate() {
                debug_assert_eq!(idx.len(), out.len());
                for (t, v) in out.iter_mut().enumerate() {
                    *v = scratch[t * b + r];
                }
            }
        }
        if let Some(s) = self.signs {
            for (&i, out) in rows.iter().zip(outs.iter_mut()) {
                let si = s[i];
                for (v, &j) in out.iter_mut().zip(idx) {
                    *v *= si * s[j];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// SvrQ: the 2m×2m block structure of the ε-SVR dual.
// ---------------------------------------------------------------------

/// [`QSource`] for the LIBSVM 2m-variable ε-SVR dual: variables
/// `0..m` are α (sign +1), `m..2m` are α* (sign −1), and
/// `Q(t, u) = s(t) s(u) K(base(t), base(u))` with `base(t) = t mod m`.
///
/// Each row fill performs `m` kernel evaluations (in parallel) and
/// mirrors them with signs into the `2m` slots, so the block structure
/// costs no extra kernel work.
pub struct SvrQ<'a, S: ?Sized, K, I> {
    kernel: &'a K,
    items: &'a [I],
    _sample: PhantomData<&'a S>,
}

impl<'a, S, K, I> SvrQ<'a, S, K, I>
where
    S: Sync + ?Sized,
    K: Kernel<S>,
    I: Borrow<S> + Sync,
{
    /// Builds the source over `m` samples; the dual has `2m` variables.
    pub fn new(kernel: &'a K, items: &'a [I]) -> Self {
        SvrQ { kernel, items, _sample: PhantomData }
    }
}

impl<S, K, I> QSource for SvrQ<'_, S, K, I>
where
    S: Sync + ?Sized,
    K: Kernel<S>,
    I: Borrow<S> + Sync,
{
    fn n(&self) -> usize {
        2 * self.items.len()
    }

    fn diag(&self) -> Vec<f64> {
        let m = self.items.len();
        let mut d = Vec::with_capacity(2 * m);
        for x in self.items {
            d.push(self.kernel.eval(x.borrow(), x.borrow()));
        }
        for t in 0..m {
            let v = d[t];
            d.push(v);
        }
        d
    }

    fn fill_row(&self, t: usize, out: &mut [f64]) {
        self.fill_rows(&[t], &mut [out]);
    }

    fn entry(&self, t: usize, u: usize) -> f64 {
        let m = self.items.len();
        let (bt, st) = if t < m { (t, 1.0) } else { (t - m, -1.0) };
        let (bu, su) = if u < m { (u, 1.0) } else { (u - m, -1.0) };
        // Bitwise identical to `fill_rows`'s mirror path: IEEE negation
        // commutes exactly through multiplication by ±1.
        st * su * self.kernel.eval(self.items[bt].borrow(), self.items[bu].borrow())
    }

    fn fill_row_gather(&self, t: usize, idx: &[usize], out: &mut [f64]) {
        self.fill_rows_gather(&[t], idx, &mut [out]);
    }

    fn fill_rows(&self, rows: &[usize], outs: &mut [&mut [f64]]) {
        assert_eq!(rows.len(), outs.len(), "one output slice per batch row");
        let b = rows.len();
        if b == 0 {
            return;
        }
        let m = self.items.len();
        let decoded: Vec<(usize, f64)> =
            rows.iter().map(|&t| if t < m { (t, 1.0) } else { (t - m, -1.0) }).collect();
        if b == 1 {
            let out = &mut *outs[0];
            let (bt, st) = decoded[0];
            let xt = self.items[bt].borrow();
            let (first, second) = out.split_at_mut(m);
            edm_par::for_each_chunk(first, Q_ROW_CHUNK, |c, chunk| {
                let start = c * Q_ROW_CHUNK;
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v = self.kernel.eval(xt, self.items[start + off].borrow());
                }
            });
            for (u, fu) in first.iter_mut().enumerate() {
                let v = st * *fu;
                *fu = v;
                second[u] = -v;
            }
            return;
        }
        // One batched pass over the m base columns (each underlying
        // kernel value is computed once and mirrored with signs into
        // the 2m slots, as in the single-row fill), sample-major so
        // every item load serves all batch rows.
        let xs: Vec<&S> = decoded.iter().map(|&(bt, _)| self.items[bt].borrow()).collect();
        let mut scratch = vec![0.0; m * b];
        edm_par::for_each_chunk(&mut scratch, Q_ROW_CHUNK * b, |c, chunk| {
            let u0 = c * Q_ROW_CHUNK;
            for (du, cell) in chunk.chunks_exact_mut(b).enumerate() {
                let xu = self.items[u0 + du].borrow();
                for (v, xt) in cell.iter_mut().zip(&xs) {
                    *v = self.kernel.eval(xt, xu);
                }
            }
        });
        for (r, out) in outs.iter_mut().enumerate() {
            let st = decoded[r].1;
            let (first, second) = out.split_at_mut(m);
            for (u, (fu, su)) in first.iter_mut().zip(second.iter_mut()).enumerate() {
                let v = st * scratch[u * b + r];
                *fu = v;
                *su = -v;
            }
        }
    }

    fn fill_rows_gather(&self, rows: &[usize], idx: &[usize], outs: &mut [&mut [f64]]) {
        assert_eq!(rows.len(), outs.len(), "one output slice per batch row");
        let b = rows.len();
        if b == 0 {
            return;
        }
        let m = self.items.len();
        let decoded: Vec<(usize, f64)> =
            rows.iter().map(|&t| if t < m { (t, 1.0) } else { (t - m, -1.0) }).collect();
        if b == 1 {
            let out = &mut *outs[0];
            debug_assert_eq!(idx.len(), out.len());
            let (bt, st) = decoded[0];
            let xt = self.items[bt].borrow();
            edm_par::for_each_chunk(out, Q_ROW_CHUNK, |c, chunk| {
                let start = c * Q_ROW_CHUNK;
                for (off, v) in chunk.iter_mut().enumerate() {
                    let u = idx[start + off];
                    let (bu, su) = if u < m { (u, 1.0) } else { (u - m, -1.0) };
                    *v = st * su * self.kernel.eval(xt, self.items[bu].borrow());
                }
            });
            return;
        }
        let xs: Vec<&S> = decoded.iter().map(|&(bt, _)| self.items[bt].borrow()).collect();
        let mut scratch = vec![0.0; idx.len() * b];
        edm_par::for_each_chunk(&mut scratch, Q_ROW_CHUNK * b, |c, chunk| {
            let t0 = c * Q_ROW_CHUNK;
            for (dt, cell) in chunk.chunks_exact_mut(b).enumerate() {
                let u = idx[t0 + dt];
                let (bu, su) = if u < m { (u, 1.0) } else { (u - m, -1.0) };
                let xu = self.items[bu].borrow();
                for ((v, xt), &(_, st)) in cell.iter_mut().zip(&xs).zip(&decoded) {
                    *v = st * su * self.kernel.eval(xt, xu);
                }
            }
        });
        for (r, out) in outs.iter_mut().enumerate() {
            debug_assert_eq!(idx.len(), out.len());
            for (t, v) in out.iter_mut().enumerate() {
                *v = scratch[t * b + r];
            }
        }
    }
}

// ---------------------------------------------------------------------
// CachedQ: the LRU row cache.
// ---------------------------------------------------------------------

/// Hit/miss/eviction counters of a [`CachedQ`].
///
/// Exposed on trained models ([`SvcModel::cache_stats`](crate::SvcModel::cache_stats),
/// [`SvrModel::cache_stats`](crate::SvrModel::cache_stats),
/// [`OneClassModel::cache_stats`](crate::OneClassModel::cache_stats)) so
/// callers can see how the Q-row cache behaved during their training
/// run, and flushed into the `edm-trace` registry
/// (`svm.qcache.{hits,misses,evictions}`) when the cache is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Row requests served from the cache.
    pub hits: u64,
    /// Row requests that had to compute the row.
    pub misses: u64,
    /// Resident rows discarded to make room (always ≤ `misses`).
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of requests served from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    /// The cached row prefix: `data.len()` entries are valid, which may
    /// be fewer than `n` when the row was filled for a shrunk active
    /// set. A request for a longer prefix extends the row in place
    /// (keeping the already-computed entries bit-for-bit).
    data: Rc<[f64]>,
    /// Logical access time; smallest stamp = least recently used.
    stamp: u64,
}

struct CacheState {
    /// Slot per row index; `None` = not resident.
    entries: Vec<Option<CacheEntry>>,
    resident: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// LIBSVM-style LRU row cache over any [`QSource`].
///
/// Holds at most `budget_rows = cache_bytes / (8 n)` rows (at least 2
/// when caching is enabled; `cache_bytes == 0` disables caching
/// entirely). Eviction is exact LRU via access stamps; the O(n)
/// victim scan is negligible next to the O(n·d) row fill it avoids.
///
/// Rows are handed out as [`Rc`]-shared slices, so a row the solver
/// still holds survives its own eviction. Since a cached row is the
/// verbatim output of a single `fill_row` (or of bitwise-identical
/// [`QSource::entry`] evaluations on the gather/extension paths),
/// caching never changes results — only how often rows are recomputed.
///
/// [`QMatrix::swap_index`] mirrors LIBSVM's cache handling: resident
/// rows long enough to cover both swapped columns get the two entries
/// exchanged in place; rows covering only the lower index can no
/// longer be represented and are dropped (counted as evictions).
pub struct CachedQ<S> {
    source: S,
    diag: Vec<f64>,
    budget_rows: usize,
    /// `perm[view index] = source index`.
    perm: Vec<usize>,
    permuted: bool,
    state: RefCell<CacheState>,
}

impl<S: QSource> CachedQ<S> {
    /// Wraps `source` in a cache holding at most `cache_bytes` worth of
    /// rows. `cache_bytes == 0` disables caching (every access
    /// recomputes).
    pub fn new(source: S, cache_bytes: usize) -> Self {
        let n = source.n();
        let diag = source.diag();
        let budget_rows =
            if cache_bytes == 0 || n == 0 { 0 } else { (cache_bytes / (8 * n)).max(2).min(n) };
        CachedQ {
            source,
            diag,
            budget_rows,
            perm: (0..n).collect(),
            permuted: false,
            state: RefCell::new(CacheState {
                entries: (0..n).map(|_| None).collect(),
                resident: 0,
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Computes entries `start..` of (view-space) row `i` into `out`.
    fn fill_range(&self, i: usize, start: usize, out: &mut [f64]) {
        if !self.permuted && start == 0 && out.len() == self.diag.len() {
            // Identity permutation, full row: the source's contiguous
            // (and possibly parallel) fast path.
            self.source.fill_row(i, out);
        } else {
            self.source.fill_row_gather(self.perm[i], &self.perm[start..start + out.len()], out);
        }
    }

    /// Makes `data` the resident entry for (view-space) row `i` with
    /// the given access stamp, evicting the LRU row first if the budget
    /// requires it. No-op when caching is disabled.
    fn insert_row(&self, i: usize, data: &Rc<[f64]>, stamp: u64) {
        if self.budget_rows == 0 {
            return;
        }
        let mut st = self.state.borrow_mut();
        let replacing = st.entries[i].is_some();
        if !replacing && st.resident >= self.budget_rows {
            let victim = st
                .entries
                .iter()
                .enumerate()
                .filter_map(|(k, e)| e.as_ref().map(|e| (k, e.stamp)))
                .min_by_key(|&(_, s)| s)
                .map(|(k, _)| k);
            if let Some(v) = victim {
                st.entries[v] = None;
                st.resident -= 1;
                st.evictions += 1;
            }
        }
        st.entries[i] = Some(CacheEntry { data: Rc::clone(data), stamp });
        if !replacing {
            st.resident += 1;
        }
    }

    /// Maximum number of resident rows (0 = caching disabled).
    pub fn budget_rows(&self) -> usize {
        self.budget_rows
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        let st = self.state.borrow();
        CacheStats { hits: st.hits, misses: st.misses, evictions: st.evictions }
    }

    /// The wrapped source.
    pub fn source(&self) -> &S {
        &self.source
    }
}

impl<S> Drop for CachedQ<S> {
    /// Flushes this cache's lifetime counters into the global trace
    /// registry, so every training run's cache behaviour shows up in
    /// `svm.qcache.{hits,misses,evictions}` without the caller doing
    /// anything.
    fn drop(&mut self) {
        if !edm_trace::enabled() {
            return;
        }
        let st = self.state.borrow();
        if st.hits + st.misses > 0 {
            edm_trace::counter_add("svm.qcache.hits", st.hits);
            edm_trace::counter_add("svm.qcache.misses", st.misses);
            edm_trace::counter_add("svm.qcache.evictions", st.evictions);
        }
    }
}

impl<S: QSource> QMatrix for CachedQ<S> {
    fn n(&self) -> usize {
        self.diag.len()
    }

    fn diag(&self) -> &[f64] {
        &self.diag
    }

    fn row(&self, i: usize) -> QRow<'_> {
        self.row_prefix(i, self.diag.len())
    }

    fn row_prefix(&self, i: usize, len: usize) -> QRow<'_> {
        let n = self.diag.len();
        assert!(i < n, "row {i} out of bounds for n = {n}");
        assert!(len <= n, "prefix {len} out of bounds for n = {n}");
        let mut st = self.state.borrow_mut();
        st.clock += 1;
        let stamp = st.clock;
        let mut extend_from = None;
        if let Some(entry) = st.entries[i].as_mut() {
            entry.stamp = stamp;
            let data = Rc::clone(&entry.data);
            if data.len() >= len {
                st.hits += 1;
                return QRow::Shared(data);
            }
            // Resident but too short: keep the computed prefix and
            // extend it below (counted as a miss — entries are
            // computed either way).
            extend_from = Some(data);
        }
        st.misses += 1;
        // Release the borrow during the (possibly slow, possibly
        // parallel) fill; the solver is single-threaded, so no other
        // access can interleave, but the fill must not observe a live
        // RefCell borrow if a kernel ever routes back through us.
        drop(st);
        let mut buf = vec![0.0; len];
        let start = match &extend_from {
            Some(prev) => {
                buf[..prev.len()].copy_from_slice(prev);
                prev.len()
            }
            None => 0,
        };
        self.fill_range(i, start, &mut buf[start..]);
        let data: Rc<[f64]> = buf.into();
        self.insert_row(i, &data, stamp);
        QRow::Shared(data)
    }

    fn rows_prefix(&self, idxs: &[usize], len: usize) -> Vec<QRow<'_>> {
        let n = self.diag.len();
        assert!(len <= n, "prefix {len} out of bounds for n = {n}");
        // Fast path: every requested row is resident with a long
        // enough prefix. This is the solver's steady state (a warm
        // cache serving the per-iteration working-set pair), so skip
        // the miss-classification machinery entirely; stamps and hit
        // counts advance exactly as the general path would.
        {
            let mut st = self.state.borrow_mut();
            let all_hit = idxs.iter().all(|&i| {
                assert!(i < n, "row {i} out of bounds for n = {n}");
                st.entries[i].as_ref().is_some_and(|e| e.data.len() >= len)
            });
            if all_hit {
                let mut out = Vec::with_capacity(idxs.len());
                for &i in idxs {
                    st.clock += 1;
                    st.hits += 1;
                    let stamp = st.clock;
                    let entry = st.entries[i].as_mut().expect("resident row checked above");
                    entry.stamp = stamp;
                    out.push(QRow::Shared(Rc::clone(&entry.data)));
                }
                return out;
            }
        }
        let mut results: Vec<Option<QRow<'_>>> = (0..idxs.len()).map(|_| None).collect();
        // Pass 1 (one cache borrow): stamp hits, classify misses.
        // `slots` collects every result position wanting the same row,
        // so duplicate indices are computed once.
        struct Miss {
            i: usize,
            stamp: u64,
            prior: Option<Rc<[f64]>>,
            slots: Vec<usize>,
        }
        let mut misses: Vec<Miss> = Vec::new();
        {
            let mut st = self.state.borrow_mut();
            'next: for (slot, &i) in idxs.iter().enumerate() {
                assert!(i < n, "row {i} out of bounds for n = {n}");
                st.clock += 1;
                let stamp = st.clock;
                for m in misses.iter_mut() {
                    if m.i == i {
                        // Duplicate of a pending miss: once the first
                        // fetch lands it would be resident, so the
                        // repeat is a hit.
                        st.hits += 1;
                        m.stamp = stamp;
                        m.slots.push(slot);
                        continue 'next;
                    }
                }
                if let Some(entry) = st.entries[i].as_mut() {
                    entry.stamp = stamp;
                    let data = Rc::clone(&entry.data);
                    if data.len() >= len {
                        st.hits += 1;
                        results[slot] = Some(QRow::Shared(data));
                        continue;
                    }
                    st.misses += 1;
                    misses.push(Miss { i, stamp, prior: Some(data), slots: vec![slot] });
                } else {
                    st.misses += 1;
                    misses.push(Miss { i, stamp, prior: None, slots: vec![slot] });
                }
            }
        }
        // Pass 2 (cache borrow released): fill the misses. Rows whose
        // cached prefixes end at the same point share one batched pass
        // over the data; stragglers take the single-row path. Either
        // way each row's contents are exactly what `row_prefix` would
        // have computed.
        let mut filled: Vec<Option<Rc<[f64]>>> = (0..misses.len()).map(|_| None).collect();
        let start_of = |m: &Miss| m.prior.as_ref().map_or(0, |p| p.len());
        let mut order: Vec<usize> = (0..misses.len()).collect();
        order.sort_by_key(|&p| start_of(&misses[p]));
        let mut batched_passes = 0u64;
        let mut g0 = 0;
        while g0 < order.len() {
            let start = start_of(&misses[order[g0]]);
            let mut g1 = g0;
            while g1 < order.len() && start_of(&misses[order[g1]]) == start {
                g1 += 1;
            }
            let group = &order[g0..g1];
            let mut bufs: Vec<Vec<f64>> = group
                .iter()
                .map(|&p| {
                    let mut buf = vec![0.0; len];
                    if let Some(prev) = &misses[p].prior {
                        buf[..start].copy_from_slice(prev);
                    }
                    buf
                })
                .collect();
            if group.len() == 1 {
                self.fill_range(misses[group[0]].i, start, &mut bufs[0][start..]);
            } else {
                let rows: Vec<usize> = group.iter().map(|&p| self.perm[misses[p].i]).collect();
                let mut tails: Vec<&mut [f64]> =
                    bufs.iter_mut().map(|buf| &mut buf[start..]).collect();
                if !self.permuted && start == 0 && len == n {
                    self.source.fill_rows(&rows, &mut tails);
                } else {
                    self.source.fill_rows_gather(&rows, &self.perm[start..len], &mut tails);
                }
                batched_passes += 1;
            }
            for (&p, buf) in group.iter().zip(bufs) {
                filled[p] = Some(buf.into());
            }
            g0 = g1;
        }
        if batched_passes > 0 && edm_trace::enabled() {
            edm_trace::counter_add("svm.q.batch_fills", batched_passes);
        }
        // Insert in request order (matching what sequential fetches
        // would have done to the LRU state), then hand out the rows.
        for (m, data) in misses.iter().zip(&filled) {
            let data = data.as_ref().expect("every miss filled by its group");
            self.insert_row(m.i, data, m.stamp);
            for &slot in &m.slots {
                results[slot] = Some(QRow::Shared(Rc::clone(data)));
            }
        }
        results.into_iter().map(|r| r.expect("every slot is a hit or a filled miss")).collect()
    }

    fn swap_index(&mut self, a: usize, b: usize) {
        let n = self.diag.len();
        assert!(a < n && b < n, "swap ({a}, {b}) out of bounds for n = {n}");
        if a == b {
            return;
        }
        self.perm.swap(a, b);
        self.diag.swap(a, b);
        self.permuted = true;
        let st = self.state.get_mut();
        st.entries.swap(a, b);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut dropped = 0u64;
        for slot in st.entries.iter_mut() {
            let Some(entry) = slot else { continue };
            let len = entry.data.len();
            if len > hi {
                // Row covers both columns: exchange the two entries so
                // the cached contents match the new numbering.
                match Rc::get_mut(&mut entry.data) {
                    Some(d) => d.swap(lo, hi),
                    None => {
                        // A solver-held handle shares this row; leave
                        // the shared copy (old numbering) untouched.
                        let mut v = entry.data.to_vec();
                        v.swap(lo, hi);
                        entry.data = v.into();
                    }
                }
            } else if len > lo {
                // Covers `lo` but not `hi`: the prefix can no longer be
                // represented under the new numbering. Drop it (LIBSVM
                // does the same).
                *slot = None;
                dropped += 1;
            }
        }
        st.resident -= dropped as usize;
        st.evictions += dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_kernels::{gram_matrix, RbfKernel};

    fn cloud(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()]).collect()
    }

    #[test]
    fn kernel_q_matches_gram_closure() {
        let x = cloud(9);
        let y: Vec<f64> = (0..9).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let k = RbfKernel::new(0.7);
        let gram = gram_matrix(&k, &x);
        let src = KernelQ::<[f64], _, _>::new(&k, &x, Some(&y));
        let mut row = vec![0.0; 9];
        for i in 0..9 {
            src.fill_row(i, &mut row);
            for j in 0..9 {
                let want = y[i] * y[j] * gram[(i, j)];
                assert!((row[j] - want).abs() < 1e-15, "Q({i},{j}) = {} want {want}", row[j]);
            }
        }
        let diag = src.diag();
        for i in 0..9 {
            assert!((diag[i] - gram[(i, i)]).abs() < 1e-15);
        }
    }

    #[test]
    fn svr_q_matches_block_formula() {
        let x = cloud(6);
        let m = x.len();
        let k = RbfKernel::new(1.1);
        let gram = gram_matrix(&k, &x);
        let sign = |t: usize| if t < m { 1.0 } else { -1.0 };
        let base = |t: usize| if t < m { t } else { t - m };
        let src = SvrQ::<[f64], _, _>::new(&k, &x);
        assert_eq!(src.n(), 2 * m);
        let mut row = vec![0.0; 2 * m];
        for t in 0..2 * m {
            src.fill_row(t, &mut row);
            for u in 0..2 * m {
                let want = sign(t) * sign(u) * gram[(base(t), base(u))];
                assert!((row[u] - want).abs() < 1e-15, "Q({t},{u}) = {} want {want}", row[u]);
            }
        }
        let diag = src.diag();
        for t in 0..2 * m {
            assert!((diag[t] - gram[(base(t), base(t))]).abs() < 1e-15);
        }
    }

    #[test]
    fn cached_rows_are_bitwise_identical_to_source() {
        let x = cloud(16);
        let k = RbfKernel::new(0.4);
        let src = KernelQ::<[f64], _, _>::new(&k, &x, None);
        let cached = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), 1 << 20);
        let mut direct = vec![0.0; 16];
        // Access pattern with revisits so both hit and miss paths run.
        for &i in &[0usize, 3, 0, 7, 3, 15, 0, 7] {
            src.fill_row(i, &mut direct);
            let row = cached.row(i);
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        let s = cached.stats();
        assert_eq!(s.misses, 4, "4 distinct rows touched");
        assert_eq!(s.hits, 4, "4 revisits served from cache");
        assert_eq!(s.evictions, 0, "budget was never exceeded");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let gram = gram_matrix(&RbfKernel::new(1.0), &cloud(8));
        // Budget of exactly 2 rows: 2 rows × 8 cols × 8 bytes = 128.
        let q = CachedQ::new(GramQ::new(&gram, None), 128);
        assert_eq!(q.budget_rows(), 2);
        q.row(0); // miss — resident {0}
        q.row(1); // miss — resident {0, 1}
        q.row(0); // hit  — 0 now more recent than 1
        q.row(2); // miss — evicts 1, resident {0, 2}
        q.row(0); // hit
        q.row(1); // miss — evicts 2 (was evicted itself before)
        let s = q.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.evictions, 2, "rows 1 then 2 were evicted");
        assert!((s.hit_rate() - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let gram = gram_matrix(&RbfKernel::new(1.0), &cloud(5));
        let q = CachedQ::new(GramQ::new(&gram, None), 0);
        assert_eq!(q.budget_rows(), 0);
        for _ in 0..3 {
            q.row(2);
        }
        let s = q.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 3);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn dense_q_borrows_rows() {
        let gram = gram_matrix(&RbfKernel::new(1.0), &cloud(4));
        let q = DenseQ::new(&gram);
        assert_eq!(q.n(), 4);
        for i in 0..4 {
            let row = q.row(i);
            assert!(matches!(row, QRow::Borrowed(_)));
            for j in 0..4 {
                assert_eq!(row[j], gram[(i, j)]);
            }
            assert_eq!(q.diag()[i], gram[(i, i)]);
        }
    }

    #[test]
    fn swap_index_permutes_rows_diag_and_cache() {
        let x = cloud(8);
        let y: Vec<f64> = (0..8).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let gram = gram_matrix(&RbfKernel::new(0.8), &x);
        let mut q = CachedQ::new(GramQ::new(&gram, Some(&y)), 1 << 20);
        // Warm some rows before swapping so the in-cache swap path runs.
        q.row(1);
        q.row(5);
        q.row(2);
        q.swap_index(1, 5);
        q.swap_index(0, 2);
        // View permutation: 0<->2 after 1<->5.
        let perm = [2usize, 5, 0, 3, 4, 1, 6, 7];
        let entry = |i: usize, j: usize| y[i] * y[j] * gram[(i, j)];
        for i in 0..8 {
            assert_eq!(q.diag()[i].to_bits(), gram[(perm[i], perm[i])].to_bits());
            let row = q.row(i);
            for j in 0..8 {
                assert_eq!(
                    row[j].to_bits(),
                    entry(perm[i], perm[j]).to_bits(),
                    "Q({i},{j}) after swap"
                );
            }
        }
    }

    #[test]
    fn dense_q_swap_matches_reference_permutation() {
        let gram = gram_matrix(&RbfKernel::new(1.3), &cloud(6));
        let mut q = DenseQ::new(&gram);
        q.swap_index(0, 4);
        q.swap_index(2, 3);
        let perm = [4usize, 1, 3, 2, 0, 5];
        for i in 0..6 {
            assert_eq!(q.diag()[i].to_bits(), gram[(perm[i], perm[i])].to_bits());
            let row = q.row(i);
            assert!(matches!(row, QRow::Shared(_)), "permuted rows are gathered");
            for j in 0..6 {
                assert_eq!(row[j].to_bits(), gram[(perm[i], perm[j])].to_bits());
            }
        }
        let pre = q.row_prefix(1, 3);
        assert_eq!(pre.len(), 3, "prefix fetch gathers only the prefix");
    }

    #[test]
    fn prefix_rows_extend_in_place() {
        let x = cloud(10);
        let k = RbfKernel::new(0.5);
        let src = KernelQ::<[f64], _, _>::new(&k, &x, None);
        let q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), 1 << 20);
        let mut full = vec![0.0; 10];
        src.fill_row(3, &mut full);
        let short = q.row_prefix(3, 4);
        assert_eq!(short.len(), 4);
        for j in 0..4 {
            assert_eq!(short[j].to_bits(), full[j].to_bits());
        }
        // Extension keeps the cached prefix and computes the rest.
        let long = q.row(3);
        assert_eq!(long.len(), 10);
        for j in 0..10 {
            assert_eq!(long[j].to_bits(), full[j].to_bits());
        }
        // Now a full-length entry is resident: any prefix is a hit.
        q.row_prefix(3, 2);
        let s = q.stats();
        assert_eq!(s.misses, 2, "initial fill + extension");
        assert_eq!(s.hits, 1, "prefix served from the extended row");
    }

    #[test]
    fn swap_drops_short_rows_that_cover_only_lo() {
        let gram = gram_matrix(&RbfKernel::new(1.0), &cloud(8));
        let mut q = CachedQ::new(GramQ::new(&gram, None), 1 << 20);
        q.row_prefix(0, 3); // covers column 1 but not column 5
        q.row_prefix(4, 1); // covers neither swapped column
        q.swap_index(1, 5);
        let s = q.stats();
        assert_eq!(s.evictions, 1, "row 0's prefix dropped, row 4's kept");
        // Re-fetching row 0 recomputes under the new numbering.
        let row = q.row(0);
        let perm = [0usize, 5, 2, 3, 4, 1, 6, 7];
        for j in 0..8 {
            assert_eq!(row[j].to_bits(), gram[(perm[0], perm[j])].to_bits());
        }
        // Row 4's 1-entry prefix is untouched by the swap and still hits.
        let pre = q.row_prefix(4, 1);
        assert_eq!(pre[0].to_bits(), gram[(4, 0)].to_bits());
        assert_eq!(q.stats().hits, 1);
    }

    #[test]
    fn gather_fill_matches_entry_oracle() {
        let x = cloud(7);
        let y: Vec<f64> = (0..7).map(|i| if i < 4 { 1.0 } else { -1.0 }).collect();
        let k = RbfKernel::new(0.9);
        let kq = KernelQ::<[f64], _, _>::new(&k, &x, Some(&y));
        let sq = SvrQ::<[f64], _, _>::new(&k, &x);
        let idx = [5usize, 0, 3, 3, 6];
        let mut out = vec![0.0; idx.len()];
        kq.fill_row_gather(2, &idx, &mut out);
        for (t, &j) in idx.iter().enumerate() {
            assert_eq!(out[t].to_bits(), kq.entry(2, j).to_bits());
        }
        let idx2 = [13usize, 1, 8, 0];
        let mut out2 = vec![0.0; idx2.len()];
        sq.fill_row_gather(9, &idx2, &mut out2);
        let mut full = vec![0.0; 14];
        sq.fill_row(9, &mut full);
        for (t, &u) in idx2.iter().enumerate() {
            assert_eq!(out2[t].to_bits(), full[u].to_bits(), "SvrQ gather vs mirror fill");
            assert_eq!(out2[t].to_bits(), sq.entry(9, u).to_bits());
        }
    }

    #[test]
    fn shared_row_survives_eviction() {
        let gram = gram_matrix(&RbfKernel::new(1.0), &cloud(8));
        let q = CachedQ::new(GramQ::new(&gram, None), 128); // 2-row budget
        let row0 = q.row(0);
        let copy: Vec<f64> = row0.to_vec();
        q.row(1);
        q.row(2);
        q.row(3); // row 0 long since evicted
        assert_eq!(&row0[..], &copy[..], "held row unchanged by eviction");
    }
}
