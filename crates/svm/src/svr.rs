use edm_kernels::{Kernel, RbfKernel};
use serde::{Deserialize, Serialize};

use crate::qmatrix::{CacheStats, CachedQ, SvrQ, DEFAULT_CACHE_BYTES};
use crate::solver::{solve, DualProblem, SolverOptions, WorkingSet};
use crate::SvmError;

/// Hyperparameters for ε-SVR training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint `C`.
    pub c: f64,
    /// Width of the ε-insensitive tube: residuals smaller than `epsilon`
    /// cost nothing.
    pub epsilon: f64,
    /// KKT stopping tolerance.
    pub tol: f64,
    /// SMO iteration cap.
    pub max_iter: usize,
    /// Byte budget of the Q-row cache used during training
    /// ([`DEFAULT_CACHE_BYTES`] by default; `0` disables caching).
    pub cache_bytes: usize,
    /// SMO shrinking heuristic (on by default; `false` reproduces the
    /// unshrunk solver).
    pub shrinking: bool,
    /// SMO working-set selection rule (second order by default).
    pub working_set: WorkingSet,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 1.0,
            epsilon: 0.1,
            tol: 1e-3,
            max_iter: 200_000,
            cache_bytes: DEFAULT_CACHE_BYTES,
            shrinking: true,
            working_set: WorkingSet::SecondOrder,
        }
    }
}

impl SvrParams {
    /// Sets the box constraint `C`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the tube width ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the Q-row cache byte budget (`0` disables caching).
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Enables or disables the SMO shrinking heuristic.
    pub fn with_shrinking(mut self, shrinking: bool) -> Self {
        self.shrinking = shrinking;
        self
    }

    /// Sets the SMO working-set selection rule.
    pub fn with_working_set(mut self, working_set: WorkingSet) -> Self {
        self.working_set = working_set;
        self
    }

    pub(crate) fn solver_opts(&self) -> SolverOptions {
        SolverOptions {
            working_set: self.working_set,
            shrinking: self.shrinking,
            shrink_interval: 0,
        }
    }

    fn validate(&self) -> Result<(), SvmError> {
        if !(self.c > 0.0) {
            return Err(SvmError::InvalidParameter {
                name: "c",
                value: self.c,
                constraint: "must be positive",
            });
        }
        if !(self.epsilon >= 0.0) {
            return Err(SvmError::InvalidParameter {
                name: "epsilon",
                value: self.epsilon,
                constraint: "must be non-negative",
            });
        }
        Ok(())
    }
}

/// ε-SVR trainer, generic over the kernel.
///
/// One of the five regressor families the paper's ref \[20\] compared for
/// chip Fmax prediction (alongside nearest-neighbor, LSF, regularized
/// LSF, and Gaussian processes — see `edm-learn`).
///
/// # Example
///
/// ```
/// use edm_kernels::LinearKernel;
/// use edm_svm::{SvrParams, SvrTrainer};
///
/// // y = 2x
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
/// let y: Vec<f64> = x.iter().map(|v| 2.0 * v[0]).collect();
/// let m = SvrTrainer::new(SvrParams::default().with_c(100.0).with_epsilon(0.01))
///     .kernel(LinearKernel::new())
///     .fit(&x, &y)?;
/// assert!((m.predict(&[0.75]) - 1.5).abs() < 0.05);
/// # Ok::<(), edm_svm::SvmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SvrTrainer<K = RbfKernel> {
    params: SvrParams,
    kernel: K,
}

impl SvrTrainer<RbfKernel> {
    /// Creates a trainer with the default RBF kernel (γ = 1).
    pub fn new(params: SvrParams) -> Self {
        SvrTrainer { params, kernel: RbfKernel::new(1.0) }
    }
}

impl<K> SvrTrainer<K> {
    /// Replaces the kernel (builder-style).
    pub fn kernel<K2: Kernel<[f64]>>(self, kernel: K2) -> SvrTrainer<K2> {
        SvrTrainer { params: self.params, kernel }
    }

    /// The training hyperparameters.
    pub fn params(&self) -> &SvrParams {
        &self.params
    }
}

impl<K: Kernel<[f64]> + Clone> SvrTrainer<K> {
    /// Trains on vector samples with continuous targets.
    ///
    /// # Errors
    ///
    /// [`SvmError::InvalidInput`] on empty/ragged/mismatched input;
    /// [`SvmError::NoConvergence`] if the SMO cap is hit.
    pub fn fit(&self, x: &[Vec<f64>], y: &[f64]) -> Result<SvrModel<K>, SvmError> {
        let _span = edm_trace::span("svm.svr.fit");
        self.params.validate()?;
        if x.is_empty() {
            return Err(SvmError::InvalidInput("empty training set".into()));
        }
        if x.len() != y.len() {
            return Err(SvmError::InvalidInput(format!(
                "{} samples but {} targets",
                x.len(),
                y.len()
            )));
        }
        let d = x[0].len();
        if x.iter().any(|r| r.len() != d) {
            return Err(SvmError::InvalidInput("ragged sample rows".into()));
        }
        let m = x.len();

        // LIBSVM 2m-variable formulation: variables 0..m are α (sign +1),
        // m..2m are α* (sign −1); Q_ij = s_i s_j K(base_i, base_j). The
        // block structure lives in SvrQ, which computes each kernel row
        // on demand behind the LRU cache — the Gram matrix is never
        // materialized.
        let sign = |t: usize| if t < m { 1.0 } else { -1.0 };
        let mut q =
            CachedQ::new(SvrQ::<[f64], _, _>::new(&self.kernel, x), self.params.cache_bytes);
        let mut p = Vec::with_capacity(2 * m);
        for &yi in y {
            p.push(self.params.epsilon - yi);
        }
        for &yi in y {
            p.push(self.params.epsilon + yi);
        }
        let problem = DualProblem {
            p,
            y: (0..2 * m).map(sign).collect(),
            c: vec![self.params.c; 2 * m],
            alpha0: vec![0.0; 2 * m],
            tol: self.params.tol,
            max_iter: self.params.max_iter,
            opts: self.params.solver_opts(),
        };
        let sol = solve(&mut q, &problem)?;
        let cache = q.stats();

        // β_i = α_i − α*_i; keep nonzero coefficients.
        let mut support = Vec::new();
        let mut coef = Vec::new();
        let mut complexity = 0.0;
        for i in 0..m {
            let beta = sol.alpha[i] - sol.alpha[i + m];
            if beta.abs() > 1e-12 {
                support.push(x[i].clone());
                coef.push(beta);
                complexity += beta.abs();
            }
        }
        Ok(SvrModel {
            kernel: self.kernel.clone(),
            n_features: d,
            support,
            coef,
            rho: sol.rho,
            complexity,
            iterations: sol.iterations,
            cache,
        })
    }
}

/// A trained ε-SVR model: `f(x) = Σᵢ βᵢ k(x, xᵢ) − ρ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvrModel<K> {
    kernel: K,
    n_features: usize,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>,
    rho: f64,
    complexity: f64,
    iterations: usize,
    cache: CacheStats,
}

impl<K: Kernel<[f64]>> SvrModel<K> {
    /// Predicts the continuous target for `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let s: f64 =
            self.support.iter().zip(&self.coef).map(|(sv, &c)| c * self.kernel.eval(x, sv)).sum();
        s - self.rho
    }

    /// Predicts a batch of samples, one support-vector sweep per sample
    /// distributed across worker threads. Each sample is evaluated
    /// exactly as [`SvrModel::predict`] would (serial accumulation over
    /// support vectors), so the result is bitwise identical to the
    /// serial loop regardless of thread count.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        edm_par::map_indexed(xs.len(), |i| self.predict(&xs[i]))
    }
}

impl<K> SvrModel<K> {
    /// Reassembles a model from its persisted parts — the inverse of
    /// the accessors below, used by `edm::persist` to reload saved
    /// models.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        kernel: K,
        n_features: usize,
        support: Vec<Vec<f64>>,
        coef: Vec<f64>,
        rho: f64,
        complexity: f64,
        iterations: usize,
        cache: CacheStats,
    ) -> Self {
        assert_eq!(support.len(), coef.len(), "one coefficient per support vector");
        SvrModel { kernel, n_features, support, coef, rho, complexity, iterations, cache }
    }

    /// The kernel the model scores with.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The support vectors.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support
    }

    /// The dual coefficients `βᵢ`, aligned with
    /// [`SvrModel::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The offset `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// Dimensionality of the training samples; every sample scored by
    /// this model must have exactly this many features. (A wide-tube
    /// SVR can retain zero support vectors, so this is recorded at fit
    /// time rather than derived from them.)
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Model complexity `Σᵢ |βᵢ|` (paper §2.3).
    pub fn complexity(&self) -> f64 {
        self.complexity
    }

    /// SMO iterations used in training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Q-row cache behaviour during this model's training run.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_kernels::LinearKernel;

    #[test]
    fn fits_linear_function() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v[0] - 1.0).collect();
        let m = SvrTrainer::new(SvrParams::default().with_c(1000.0).with_epsilon(0.01))
            .kernel(LinearKernel::new())
            .fit(&x, &y)
            .unwrap();
        for probe in [0.0, 1.0, 2.5] {
            assert!(
                (m.predict(&[probe]) - (3.0 * probe - 1.0)).abs() < 0.1,
                "probe {probe}: got {}",
                m.predict(&[probe])
            );
        }
    }

    #[test]
    fn fits_nonlinear_function_with_rbf() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0]).sin()).collect();
        let m = SvrTrainer::new(SvrParams::default().with_c(100.0).with_epsilon(0.01))
            .kernel(RbfKernel::new(1.0))
            .fit(&x, &y)
            .unwrap();
        for probe in [0.5, 2.0, 4.5] {
            assert!(
                (m.predict(&[probe]) - probe.sin()).abs() < 0.1,
                "probe {probe}: got {} want {}",
                m.predict(&[probe]),
                probe.sin()
            );
        }
    }

    #[test]
    fn epsilon_tube_sparsifies() {
        // With a wide tube, points inside it need no support vectors.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.05 * v[0]).collect();
        let narrow = SvrTrainer::new(SvrParams::default().with_c(10.0).with_epsilon(0.001))
            .kernel(LinearKernel::new())
            .fit(&x, &y)
            .unwrap();
        let wide = SvrTrainer::new(SvrParams::default().with_c(10.0).with_epsilon(1.0))
            .kernel(LinearKernel::new())
            .fit(&x, &y)
            .unwrap();
        // y spans [0, 0.145]: a tube of ±1 swallows the whole signal.
        assert_eq!(wide.n_support(), 0);
        assert!(narrow.n_support() > 0);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let t = SvrTrainer::new(SvrParams::default().with_epsilon(-0.5));
        assert!(matches!(
            t.fit(&[vec![0.0]], &[0.0]),
            Err(SvmError::InvalidParameter { name: "epsilon", .. })
        ));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 10];
        let m = SvrTrainer::new(SvrParams::default().with_epsilon(0.01))
            .kernel(LinearKernel::new())
            .fit(&x, &y)
            .unwrap();
        assert!((m.predict(&[4.5]) - 5.0).abs() < 0.1);
    }
}
