use std::fmt;

/// Errors from SVM training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SvmError {
    /// The training inputs were inconsistent or empty.
    InvalidInput(String),
    /// A hyperparameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be in (0, 1]"`.
        constraint: &'static str,
    },
    /// Training needed both classes but only one was present.
    SingleClass,
    /// The SMO loop hit its iteration cap before reaching the KKT
    /// tolerance (the returned model may still be usable; tighten
    /// parameters or raise the cap).
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final KKT violation gap.
        gap: f64,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::InvalidInput(msg) => write!(f, "invalid training input: {msg}"),
            SvmError::InvalidParameter { name, value, constraint } => {
                write!(f, "parameter {name} = {value} {constraint}")
            }
            SvmError::SingleClass => {
                write!(f, "classification training requires both classes to be present")
            }
            SvmError::NoConvergence { iterations, gap } => {
                write!(f, "SMO did not converge after {iterations} iterations (gap {gap:.3e})")
            }
        }
    }
}

impl std::error::Error for SvmError {}
