//! The shared SMO core.
//!
//! Solves the generic dual problem all three SVM variants reduce to
//! (LIBSVM's formulation):
//!
//! ```text
//! min_α  ½ αᵀQα + pᵀα
//! s.t.   yᵀα = Δ (implied by the feasible starting point),
//!        0 ≤ αᵢ ≤ Cᵢ
//! ```
//!
//! with `y ∈ {−1, +1}ⁿ`, using analytic two-variable updates. `Q` is
//! supplied through the row-oriented [`QMatrix`] trait so the three
//! variants can express their sign structure (`Q = yᵢyⱼKᵢⱼ` for SVC,
//! the 2m×2m block form for SVR, plain `K` for one-class) over either a
//! materialized Gram matrix ([`DenseQ`](crate::qmatrix::DenseQ) /
//! [`GramQ`](crate::qmatrix::GramQ)) or an on-demand kernel evaluator
//! behind the LRU row cache ([`CachedQ`](crate::qmatrix::CachedQ)).
//! SMO's gradient update reads `Q(t, i)` for all `t` at a fixed `i`, so
//! the solver fetches the two working-set rows once per iteration and
//! streams them.
//!
//! Two convergence accelerators (both from LIBSVM, both on by default
//! and switchable via [`SolverOptions`]):
//!
//! * **Second-order working-set selection** ([`WorkingSet::SecondOrder`],
//!   WSS2 of Fan, Chen & Lin 2005): `i` still maximizes the KKT
//!   violation `−yₜGₜ` over the "up" set, but `j` is chosen to maximize
//!   the analytic decrease of the dual objective,
//!   `−(g_max + yₜGₜ)² / (Qᵢᵢ + Qₜₜ − 2 yᵢyₜQᵢₜ)`, using the already
//!   cached `row(i)` and `diag()`. Same per-iteration cost class as the
//!   first-order rule, typically several times fewer iterations.
//!
//! * **Shrinking**: every `min(n, 1000)` iterations, bound variables
//!   whose gradient sign says they cannot re-enter the working set are
//!   swapped past `active_size` (through [`QMatrix::swap_index`], which
//!   keeps cached rows valid), and the solver iterates over the active
//!   prefix only — row fetches shrink to [`QMatrix::row_prefix`]. A
//!   running `Ḡₜ = Σ_{j at upper bound} Cⱼ Qₜⱼ` makes the gradient of
//!   inactive variables reconstructible; on (near-)convergence the full
//!   gradient is rebuilt and a final unshrunk pass runs, so the
//!   returned optimum satisfies the same `tol` as the unshrunk solver.
//!
//! With `working_set: FirstOrder, shrinking: false` the loop replays
//! the seed first-order solver operation-for-operation (bitwise
//! identical α). All configurations are deterministic: the solver is
//! single-threaded, and row fills delegate to the bitwise-deterministic
//! parallel layer.
//!
//! This module is public so that custom kernel learners (e.g. the
//! incremental novelty filter in `edm-core`) can reuse the optimizer, but
//! most users should go through the trainers in the crate root.

use serde::{Deserialize, Serialize};

use crate::qmatrix::QMatrix;
use crate::SvmError;

/// Tolerance floor for the quadratic coefficient of a two-variable
/// subproblem (guards indefinite kernels).
const TAU: f64 = 1e-12;

/// Relative bound-classification tolerance used when computing `rho`:
/// scaled by each variable's box size (`max(Cₜ, 1)`) so large-`C` duals
/// — where a bound α carries absolute rounding residue proportional to
/// `C` — still classify free vs. bound vectors correctly.
const BOUND_RTOL: f64 = 1e-12;

/// Rows per [`QMatrix::rows_prefix`] batch in the gradient
/// initialization and reconstruction sweeps. Large enough that a
/// batched fill streams the data once for many rows, small enough that
/// the batch's scratch (`n × ROW_BATCH` doubles in the kernel-backed
/// sources) stays modest.
const ROW_BATCH: usize = 8;

/// Working-set selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WorkingSet {
    /// Maximal violating pair (the seed solver's rule): `j` minimizes
    /// `−yₜGₜ` over the "low" set.
    FirstOrder,
    /// LIBSVM's second-order rule (WSS2): `j` maximizes the analytic
    /// objective decrease. Costs one extra cached-row read per
    /// iteration, converges in far fewer iterations.
    #[default]
    SecondOrder,
}

/// Convergence-heuristic knobs of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Working-set selection rule (default: second order).
    pub working_set: WorkingSet,
    /// Enable the shrinking heuristic (default: `true`). With
    /// `FirstOrder` selection and shrinking off, the solver reproduces
    /// the seed first-order solver bit for bit.
    pub shrinking: bool,
    /// Iterations between shrink passes; `0` (the default) means
    /// LIBSVM's `min(n, 1000)`.
    pub shrink_interval: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { working_set: WorkingSet::SecondOrder, shrinking: true, shrink_interval: 0 }
    }
}

/// Input to [`solve`].
#[derive(Debug, Clone)]
pub struct DualProblem {
    /// Linear term `p`.
    pub p: Vec<f64>,
    /// Variable signs `y ∈ {−1, +1}`.
    pub y: Vec<f64>,
    /// Per-variable upper bounds `C`.
    pub c: Vec<f64>,
    /// Feasible starting point (determines the equality-constraint level).
    pub alpha0: Vec<f64>,
    /// KKT stopping tolerance (LIBSVM default is `1e-3`).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Selection / shrinking knobs.
    pub opts: SolverOptions,
}

/// Output of [`solve`].
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// Optimal multipliers.
    pub alpha: Vec<f64>,
    /// Offset `ρ`; decision functions are `Σ coefᵢ k(xᵢ, ·) − ρ`.
    pub rho: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Final KKT violation gap.
    pub gap: f64,
    /// Shrink passes executed (0 unless shrinking is on).
    pub shrink_events: usize,
    /// Full-gradient reconstructions (0 unless shrinking is on).
    pub gradient_reconstructions: usize,
}

/// Outcome of a working-set selection pass.
enum Selection {
    /// Violating pair `(i, j)` with KKT gap `gap ≥ tol`.
    Pair(usize, usize, f64),
    /// KKT-optimal (up to `tol`) over the current active set.
    Optimal(f64),
}

/// Mutable solver state. Variables live in *solver order*: shrinking
/// permutes them so the active set is always the prefix
/// `0..active_size`, and `idx` maps solver positions back to the
/// caller's original indices.
struct Smo {
    p: Vec<f64>,
    y: Vec<f64>,
    c: Vec<f64>,
    alpha: Vec<f64>,
    /// Gradient `G = Qα + p`, valid on `0..active_size` (and on the
    /// whole vector right after a reconstruction).
    g: Vec<f64>,
    /// `Ḡₜ = Σ_{j: αⱼ = Cⱼ} Cⱼ Qₜⱼ` over all `t`; maintained only when
    /// shrinking is on, and what makes gradient reconstruction O(n ·
    /// free) instead of O(n²).
    g_bar: Vec<f64>,
    /// Solver position → original variable index.
    idx: Vec<usize>,
    active_size: usize,
    unshrunk: bool,
    tol: f64,
    second_order: bool,
    shrinking: bool,
    // Telemetry, accumulated locally and flushed once after the loop.
    bound_hits: u64,
    shrink_events: u64,
    reconstructions: u64,
}

impl Smo {
    fn n(&self) -> usize {
        self.p.len()
    }

    fn is_upper(&self, t: usize) -> bool {
        self.alpha[t] >= self.c[t]
    }

    fn is_lower(&self, t: usize) -> bool {
        self.alpha[t] <= 0.0
    }

    fn in_up(&self, t: usize) -> bool {
        (self.y[t] > 0.0 && !self.is_upper(t)) || (self.y[t] < 0.0 && !self.is_lower(t))
    }

    fn in_low(&self, t: usize) -> bool {
        (self.y[t] < 0.0 && !self.is_upper(t)) || (self.y[t] > 0.0 && !self.is_lower(t))
    }

    /// Renumbers variables `a` and `b` across all solver state and the
    /// `Q` view.
    fn swap_all(&mut self, q: &mut dyn QMatrix, a: usize, b: usize) {
        self.p.swap(a, b);
        self.y.swap(a, b);
        self.c.swap(a, b);
        self.alpha.swap(a, b);
        self.g.swap(a, b);
        self.g_bar.swap(a, b);
        self.idx.swap(a, b);
        q.swap_index(a, b);
    }

    /// Working-set selection over the active prefix.
    fn select(&self, q: &dyn QMatrix) -> Selection {
        if self.second_order {
            self.select_second(q)
        } else {
            self.select_first()
        }
    }

    /// Maximal violating pair: `i` maximizes `−yₜGₜ` over the up set,
    /// `j` minimizes it over the low set (the seed solver's rule,
    /// replayed with identical comparison order).
    fn select_first(&self) -> Selection {
        let mut i: Option<usize> = None;
        let mut g_max = f64::NEG_INFINITY;
        let mut j: Option<usize> = None;
        let mut g_min = f64::INFINITY;
        for t in 0..self.active_size {
            let v = -self.y[t] * self.g[t];
            if self.in_up(t) && v > g_max {
                g_max = v;
                i = Some(t);
            }
            if self.in_low(t) && v < g_min {
                g_min = v;
                j = Some(t);
            }
        }
        let gap = g_max - g_min;
        match (i, j) {
            (Some(i), Some(j)) if gap >= self.tol => Selection::Pair(i, j, gap),
            _ => Selection::Optimal(gap.max(0.0)),
        }
    }

    /// Second-order rule: `i` as in the first-order rule; `j` minimizes
    /// `−(g_max + yₜGₜ)² / (Qᵢᵢ + Qₜₜ − 2yᵢyₜQᵢₜ)` over low-set
    /// candidates that still violate against `i`, reading `row(i)` from
    /// the cache and the precomputed diagonal.
    fn select_second(&self, q: &dyn QMatrix) -> Selection {
        let mut i: Option<usize> = None;
        let mut g_max = f64::NEG_INFINITY;
        for t in 0..self.active_size {
            if self.in_up(t) {
                let v = -self.y[t] * self.g[t];
                if v > g_max {
                    g_max = v;
                    i = Some(t);
                }
            }
        }
        let diag = q.diag();
        let row_i = i.map(|i| q.row_prefix(i, self.active_size));
        let mut j: Option<usize> = None;
        let mut g_min = f64::INFINITY;
        let mut obj_min = f64::INFINITY;
        for t in 0..self.active_size {
            if !self.in_low(t) {
                continue;
            }
            let v = -self.y[t] * self.g[t];
            if v < g_min {
                g_min = v;
            }
            if let (Some(i), Some(row_i)) = (i, row_i.as_deref()) {
                let grad_diff = g_max - v;
                if grad_diff > 0.0 {
                    let mut quad = diag[i] + diag[t] - 2.0 * self.y[i] * self.y[t] * row_i[t];
                    if quad <= 0.0 {
                        quad = TAU;
                    }
                    let obj = -(grad_diff * grad_diff) / quad;
                    if obj <= obj_min {
                        obj_min = obj;
                        j = Some(t);
                    }
                }
            }
        }
        let gap = g_max - g_min;
        match (i, j) {
            (Some(i), Some(j)) if gap >= self.tol => Selection::Pair(i, j, gap),
            _ => Selection::Optimal(gap.max(0.0)),
        }
    }

    /// Can variable `t` be removed from the active set? True when `t`
    /// sits on a bound and its gradient says the bound cannot become
    /// violated again given the current extremes `gmax1` (up set) and
    /// `gmax2` (low set).
    fn be_shrunk(&self, t: usize, gmax1: f64, gmax2: f64) -> bool {
        if self.is_upper(t) {
            if self.y[t] > 0.0 {
                -self.g[t] > gmax1
            } else {
                -self.g[t] > gmax2
            }
        } else if self.is_lower(t) {
            if self.y[t] > 0.0 {
                self.g[t] > gmax2
            } else {
                self.g[t] > gmax1
            }
        } else {
            false
        }
    }

    /// One shrink pass: compute the violation extremes, unshrink once
    /// when near convergence, then swap shrinkable variables past
    /// `active_size`.
    fn do_shrinking(&mut self, q: &mut dyn QMatrix) {
        // gmax1 = max{−yₜGₜ : t ∈ up}, gmax2 = max{yₜGₜ : t ∈ low};
        // gap = gmax1 + gmax2.
        let mut gmax1 = f64::NEG_INFINITY;
        let mut gmax2 = f64::NEG_INFINITY;
        for t in 0..self.active_size {
            if self.y[t] > 0.0 {
                if !self.is_upper(t) {
                    gmax1 = gmax1.max(-self.g[t]);
                }
                if !self.is_lower(t) {
                    gmax2 = gmax2.max(self.g[t]);
                }
            } else {
                if !self.is_upper(t) {
                    gmax2 = gmax2.max(-self.g[t]);
                }
                if !self.is_lower(t) {
                    gmax1 = gmax1.max(self.g[t]);
                }
            }
        }
        if !self.unshrunk && gmax1 + gmax2 <= self.tol * 10.0 {
            // Near convergence: reconstruct once and re-shrink from the
            // full set, so over-eager early shrinks cannot bias the
            // final active set.
            self.unshrunk = true;
            self.reconstruct_gradient(q);
            self.active_size = self.n();
        }
        let mut t = 0;
        while t < self.active_size {
            if self.be_shrunk(t, gmax1, gmax2) {
                self.active_size -= 1;
                while self.active_size > t {
                    if !self.be_shrunk(self.active_size, gmax1, gmax2) {
                        let b = self.active_size;
                        self.swap_all(q, t, b);
                        break;
                    }
                    self.active_size -= 1;
                }
            }
            t += 1;
        }
        self.shrink_events += 1;
        edm_trace::record("svm.smo.active_set", self.active_size as f64);
    }

    /// Rebuilds `G` on the inactive tail from `Ḡ` plus the active free
    /// variables' rows: `Gₜ = Ḡₜ + pₜ + Σ_{s active, free} αₛ Qₜₛ`.
    fn reconstruct_gradient(&mut self, q: &dyn QMatrix) {
        let n = self.n();
        if self.active_size == n {
            return;
        }
        for t in self.active_size..n {
            self.g[t] = self.g_bar[t] + self.p[t];
        }
        // Fetch the free variables' rows in small batches (one pass
        // over the data per batch for kernel-backed sources) and apply
        // them in the same s-ascending order as a row-at-a-time loop,
        // so the rebuilt gradient is bitwise unchanged.
        let free: Vec<usize> =
            (0..self.active_size).filter(|&s| !(self.is_lower(s) || self.is_upper(s))).collect();
        for chunk in free.chunks(ROW_BATCH) {
            let rows = q.rows_prefix(chunk, n);
            for (&s, row_s) in chunk.iter().zip(&rows) {
                let a = self.alpha[s];
                for t in self.active_size..n {
                    self.g[t] += a * row_s[t];
                }
            }
        }
        self.reconstructions += 1;
    }
}

/// Computes the offset `ρ`: the average of `yₜGₜ` over free variables,
/// or the midpoint of the KKT interval when no variable is free. Bound
/// classification uses a *relative* epsilon (`BOUND_RTOL · max(Cₜ, 1)`)
/// so large-`C` problems don't misread bound variables as free.
fn compute_rho(alpha: &[f64], g: &[f64], y: &[f64], c: &[f64]) -> f64 {
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for t in 0..alpha.len() {
        let yg = y[t] * g[t];
        let eps = BOUND_RTOL * c[t].max(1.0);
        if alpha[t] >= c[t] - eps {
            if y[t] < 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] <= eps {
            if y[t] > 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    }
}

/// Runs SMO to convergence.
///
/// `q` is taken mutably because the shrinking heuristic renumbers
/// variables through [`QMatrix::swap_index`]; with `shrinking: false`
/// the matrix is never mutated. The returned `alpha` is always in the
/// caller's original variable order.
///
/// # Errors
///
/// [`SvmError::NoConvergence`] if the iteration cap is reached with the
/// KKT gap still above `tol`; [`SvmError::InvalidInput`] on inconsistent
/// dimensions.
pub fn solve(q: &mut dyn QMatrix, problem: &DualProblem) -> Result<DualSolution, SvmError> {
    let _span = edm_trace::span("svm.smo.solve");
    let n = problem.p.len();
    if problem.y.len() != n || problem.c.len() != n || problem.alpha0.len() != n || q.n() != n {
        return Err(SvmError::InvalidInput(format!("dual problem arrays disagree on n = {n}")));
    }
    let opts = problem.opts;
    let mut smo = Smo {
        p: problem.p.clone(),
        y: problem.y.clone(),
        c: problem.c.clone(),
        alpha: problem.alpha0.clone(),
        g: problem.p.clone(),
        g_bar: vec![0.0; if opts.shrinking { n } else { 0 }],
        idx: (0..n).collect(),
        active_size: n,
        unshrunk: false,
        tol: problem.tol,
        second_order: matches!(opts.working_set, WorkingSet::SecondOrder),
        shrinking: opts.shrinking,
        bound_hits: 0,
        shrink_events: 0,
        reconstructions: 0,
    };

    // G = Qα + p. O(n²) initialization, but only nonzero α contribute.
    // Their rows are fetched in batches (one pass over the data per
    // batch — the one-class feasible start makes *every* α nonzero, so
    // this is a real hot spot) and applied in the same j-ascending
    // order as a row-at-a-time loop, keeping G bitwise unchanged. Ḡ
    // picks up the variables starting at the upper bound.
    let nonzero: Vec<usize> = (0..n).filter(|&j| smo.alpha[j] != 0.0).collect();
    for chunk in nonzero.chunks(ROW_BATCH) {
        let rows = q.rows_prefix(chunk, n);
        for (&j, row_j) in chunk.iter().zip(&rows) {
            let aj = smo.alpha[j];
            for (gt, &qtj) in smo.g.iter_mut().zip(row_j.iter()) {
                *gt += qtj * aj;
            }
            if opts.shrinking && smo.alpha[j] >= smo.c[j] {
                let cj = smo.c[j];
                for (bt, &qtj) in smo.g_bar.iter_mut().zip(row_j.iter()) {
                    *bt += cj * qtj;
                }
            }
        }
    }

    let shrink_every = if opts.shrink_interval > 0 { opts.shrink_interval } else { n.min(1000) };
    let mut counter = shrink_every + 1;
    let mut iterations = 0usize;
    let mut gap = f64::INFINITY;
    while iterations < problem.max_iter {
        if smo.shrinking {
            counter -= 1;
            if counter == 0 {
                counter = shrink_every;
                smo.do_shrinking(q);
            }
        }

        let (i, j, cur_gap) = match smo.select(&*q) {
            Selection::Pair(i, j, g) => (i, j, g),
            Selection::Optimal(g) => {
                if smo.active_size == n {
                    gap = g;
                    break;
                }
                // Optimal over the shrunk set: rebuild the full
                // gradient and re-select over everything, so the
                // result meets `tol` on the *unshrunk* problem.
                smo.reconstruct_gradient(&*q);
                smo.active_size = n;
                match smo.select(&*q) {
                    Selection::Optimal(g) => {
                        gap = g;
                        break;
                    }
                    Selection::Pair(i, j, g) => {
                        // Violations remain: resume, and shrink again
                        // on the next iteration (LIBSVM's `counter=1`).
                        counter = 1;
                        (i, j, g)
                    }
                }
            }
        };
        gap = cur_gap;
        iterations += 1;
        edm_trace::record_full("svm.smo.kkt_gap", gap);

        // The iteration's two working-set rows, truncated to the
        // active prefix — fetched as one batch so that when both miss
        // the cache they are filled in a single pass over the data.
        let active = smo.active_size;
        let mut pair = q.rows_prefix(&[i, j], active).into_iter();
        let row_i = pair.next().expect("pair fetch yields row i");
        let row_j = pair.next().expect("pair fetch yields row j");
        let diag = q.diag();

        let old_ai = smo.alpha[i];
        let old_aj = smo.alpha[j];
        let was_upper_i = smo.is_upper(i);
        let was_upper_j = smo.is_upper(j);
        let (alpha, y, c, g) = (&mut smo.alpha, &smo.y, &smo.c, &mut smo.g);
        let qij = row_i[j];
        if (y[i] - y[j]).abs() > 0.5 {
            // y_i != y_j
            let mut quad = diag[i] + diag[j] + 2.0 * qij;
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (-g[i] - g[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > c[i] - c[j] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = c[i] - diff;
                }
            } else if alpha[j] > c[j] {
                alpha[j] = c[j];
                alpha[i] = c[j] + diff;
            }
        } else {
            // y_i == y_j
            let mut quad = diag[i] + diag[j] - 2.0 * qij;
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (g[i] - g[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c[i] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = sum - c[i];
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c[j] {
                if alpha[j] > c[j] {
                    alpha[j] = c[j];
                    alpha[i] = sum - c[j];
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // Gradient update for the two changed variables over the active
        // prefix, streaming the fetched rows.
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            for ((gt, &qti), &qtj) in g[..active].iter_mut().zip(row_i.iter()).zip(row_j.iter()) {
                *gt += qti * dai + qtj * daj;
            }
        }
        let hit_i = alpha[i] == 0.0 || alpha[i] == c[i];
        let hit_j = alpha[j] == 0.0 || alpha[j] == c[j];
        smo.bound_hits += u64::from(hit_i) + u64::from(hit_j);
        drop(row_i);
        drop(row_j);

        // Ḡ tracks Σ_{upper} C Q rows: patch it whenever i or j crossed
        // the upper bound (needs the *full* rows — the cache extends
        // its prefix in place, and when both crossed the two
        // extensions share one batched pass).
        if smo.shrinking {
            let crossed_i = was_upper_i != smo.is_upper(i);
            let crossed_j = was_upper_j != smo.is_upper(j);
            if crossed_i || crossed_j {
                let mut wanted = Vec::with_capacity(2);
                if crossed_i {
                    wanted.push(i);
                }
                if crossed_j {
                    wanted.push(j);
                }
                let rows = q.rows_prefix(&wanted, n);
                for (&t, row) in wanted.iter().zip(&rows) {
                    let was_upper = if t == i { was_upper_i } else { was_upper_j };
                    let ct = smo.c[t];
                    if was_upper {
                        for (bt, &qt) in smo.g_bar.iter_mut().zip(row.iter()) {
                            *bt -= ct * qt;
                        }
                    } else {
                        for (bt, &qt) in smo.g_bar.iter_mut().zip(row.iter()) {
                            *bt += ct * qt;
                        }
                    }
                }
            }
        }
    }

    if edm_trace::enabled() {
        edm_trace::counter_add("svm.smo.calls", 1);
        edm_trace::counter_add("svm.smo.iterations", iterations as u64);
        edm_trace::counter_add("svm.smo.bound_hits", smo.bound_hits);
        edm_trace::counter_add("svm.smo.shrink_events", smo.shrink_events);
        edm_trace::counter_add("svm.smo.gradient_reconstructions", smo.reconstructions);
        edm_trace::record("svm.smo.iterations_per_call", iterations as f64);
        if gap.is_finite() {
            edm_trace::record("svm.smo.final_gap", gap);
        }
    }

    if gap >= problem.tol && iterations >= problem.max_iter {
        return Err(SvmError::NoConvergence { iterations, gap });
    }

    // Un-permute to the caller's variable order before computing rho,
    // so the free-variable average sums in a shrink-independent order.
    let mut alpha_out = vec![0.0; n];
    let mut g_out = vec![0.0; n];
    for (pos, &orig) in smo.idx.iter().enumerate() {
        alpha_out[orig] = smo.alpha[pos];
        g_out[orig] = smo.g[pos];
    }
    let rho = compute_rho(&alpha_out, &g_out, &problem.y, &problem.c);

    Ok(DualSolution {
        alpha: alpha_out,
        rho,
        iterations,
        gap,
        shrink_events: smo.shrink_events as usize,
        gradient_reconstructions: smo.reconstructions as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmatrix::DenseQ;
    use edm_linalg::Matrix;

    fn base_problem(
        p: Vec<f64>,
        y: Vec<f64>,
        c: Vec<f64>,
        tol: f64,
        max_iter: usize,
    ) -> DualProblem {
        let n = p.len();
        DualProblem { p, y, c, alpha0: vec![0.0; n], tol, max_iter, opts: SolverOptions::default() }
    }

    /// Minimal hand-check: two points, labels ±1, linear kernel in 1-D at
    /// x = ±1. K = [[1,-1],[-1,1]] so Q = yᵢyⱼKᵢⱼ = [[1,1],[1,1]]. Solve
    /// and check the solution classifies both points correctly via
    /// f(x) = Σ y α k(x, xi) − ρ.
    #[test]
    fn two_point_svc_dual() {
        let x = [-1.0, 1.0];
        fn y_of(i: usize) -> f64 {
            if i == 0 {
                -1.0
            } else {
                1.0
            }
        }
        let qm = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let problem = base_problem(vec![-1.0, -1.0], vec![-1.0, 1.0], vec![10.0, 10.0], 1e-6, 1000);
        for opts in [
            SolverOptions::default(),
            SolverOptions {
                working_set: WorkingSet::FirstOrder,
                shrinking: false,
                shrink_interval: 0,
            },
        ] {
            let mut q = DenseQ::new(&qm);
            let sol = solve(&mut q, &DualProblem { opts, ..problem.clone() }).unwrap();
            // Analytic optimum: α = 0.5 for both, ρ = 0 (margin at x = 0).
            assert!((sol.alpha[0] - 0.5).abs() < 1e-6);
            assert!((sol.alpha[1] - 0.5).abs() < 1e-6);
            assert!(sol.rho.abs() < 1e-6);
            // decision at x = 2: Σ y α k = (-1)(.5)(-2) + (1)(.5)(2) = 2 > 0
            let f = |xq: f64| -> f64 {
                (0..2).map(|i| y_of(i) * sol.alpha[i] * (x[i] * xq)).sum::<f64>() - sol.rho
            };
            assert!(f(2.0) > 0.0);
            assert!(f(-2.0) < 0.0);
        }
    }

    #[test]
    fn inconsistent_dimensions_rejected() {
        let qm = Matrix::zeros(1, 1);
        let mut q = DenseQ::new(&qm);
        let problem = base_problem(vec![-1.0, -1.0], vec![1.0, -1.0], vec![1.0, 1.0], 1e-3, 10);
        assert!(matches!(solve(&mut q, &problem), Err(SvmError::InvalidInput(_))));
    }

    #[test]
    fn iteration_cap_reported() {
        // A 4-point problem with a 1-iteration budget cannot converge.
        let x = [-2.0, -1.0, 1.0, 2.0];
        let ys = [-1.0, -1.0, 1.0, 1.0];
        let qf = |i: usize, j: usize| ys[i] * ys[j] * (x[i] * x[j] + 1.0);
        let qm = Matrix::from_rows(
            &(0..4).map(|i| (0..4).map(|j| qf(i, j)).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
        let mut q = DenseQ::new(&qm);
        let problem = base_problem(vec![-1.0; 4], ys.to_vec(), vec![1.0; 4], 1e-9, 1);
        assert!(matches!(
            solve(&mut q, &problem),
            Err(SvmError::NoConvergence { iterations: 1, .. })
        ));
    }

    /// The relative-epsilon rho fix: with C = 1e9, a variable pinned at
    /// the lower bound can carry absolute residue far above 1e-12 (here
    /// 2e-7) from catastrophic cancellation during clipping. The old
    /// absolute test misread it as free, dragging its (arbitrary) yG
    /// into the free-variable average.
    #[test]
    fn rho_uses_relative_bound_epsilon() {
        let c = vec![1e9, 1e9, 1e9];
        let y = vec![1.0, 1.0, -1.0];
        // alpha[0] is "zero up to C-scaled rounding", alpha[1] is truly
        // free, alpha[2] is at the upper bound minus C-scaled residue.
        let alpha = vec![2e-7, 5e8, 1e9 - 3e-5];
        let g = vec![100.0, -2.0, 3.0];
        let rho = compute_rho(&alpha, &g, &y, &c);
        // Variables 0 and 2 are bound: only variable 1 is free, so rho
        // must be exactly its yG = -2, not contaminated by yG = 100.
        assert_eq!(rho.to_bits(), (-2.0f64).to_bits());
    }

    /// Every selection/shrinking configuration must land on the same
    /// optimum of a small but non-trivial problem.
    #[test]
    fn all_configurations_agree_on_optimum() {
        let n = 12;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64) / 2.0 - 2.75).collect();
        let ys: Vec<f64> = xs.iter().map(|&v| if v > 0.0 { 1.0 } else { -1.0 }).collect();
        let rbf = |a: f64, b: f64| (-(a - b) * (a - b)).exp();
        let qm = Matrix::from_rows(
            &(0..n)
                .map(|i| (0..n).map(|j| ys[i] * ys[j] * rbf(xs[i], xs[j])).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        );
        let problem = base_problem(vec![-1.0; n], ys.clone(), vec![5.0; n], 1e-8, 100_000);
        let mut reference: Option<DualSolution> = None;
        for shrinking in [false, true] {
            for working_set in [WorkingSet::FirstOrder, WorkingSet::SecondOrder] {
                // A tiny interval forces many shrink passes.
                for shrink_interval in [0, 3] {
                    let mut q = DenseQ::new(&qm);
                    let opts = SolverOptions { working_set, shrinking, shrink_interval };
                    let sol = solve(&mut q, &DualProblem { opts, ..problem.clone() }).unwrap();
                    assert!(sol.gap < 1e-8);
                    match &reference {
                        None => reference = Some(sol),
                        Some(r) => {
                            for t in 0..n {
                                assert!(
                                    (sol.alpha[t] - r.alpha[t]).abs() < 1e-6,
                                    "alpha[{t}] diverged under {opts:?}"
                                );
                            }
                            assert!((sol.rho - r.rho).abs() < 1e-6);
                        }
                    }
                }
            }
        }
    }
}
