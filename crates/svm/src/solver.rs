//! The shared SMO core.
//!
//! Solves the generic dual problem all three SVM variants reduce to
//! (LIBSVM's formulation):
//!
//! ```text
//! min_α  ½ αᵀQα + pᵀα
//! s.t.   yᵀα = Δ (implied by the feasible starting point),
//!        0 ≤ αᵢ ≤ Cᵢ
//! ```
//!
//! with `y ∈ {−1, +1}ⁿ`, using maximal-violating-pair working-set
//! selection and analytic two-variable updates. `Q` is supplied through
//! the row-oriented [`QMatrix`] trait so the three variants can express
//! their sign structure (`Q = yᵢyⱼKᵢⱼ` for SVC, the 2m×2m block form for
//! SVR, plain `K` for one-class) over either a materialized Gram matrix
//! ([`DenseQ`](crate::qmatrix::DenseQ) /
//! [`GramQ`](crate::qmatrix::GramQ)) or an on-demand kernel evaluator
//! behind the LRU row cache ([`CachedQ`](crate::qmatrix::CachedQ)).
//! SMO's gradient update reads `Q(t, i)` for all `t` at a fixed `i`, so
//! the solver fetches the two working-set rows once per iteration and
//! streams them.
//!
//! This module is public so that custom kernel learners (e.g. the
//! incremental novelty filter in `edm-core`) can reuse the optimizer, but
//! most users should go through the trainers in the crate root.

use crate::qmatrix::QMatrix;
use crate::SvmError;

/// Tolerance floor for the quadratic coefficient of a two-variable
/// subproblem (guards indefinite kernels).
const TAU: f64 = 1e-12;

/// Input to [`solve`].
pub struct DualProblem<'a> {
    /// Row-oriented view of the (symmetric) matrix `Q`.
    pub q: &'a dyn QMatrix,
    /// Linear term `p`.
    pub p: Vec<f64>,
    /// Variable signs `y ∈ {−1, +1}`.
    pub y: Vec<f64>,
    /// Per-variable upper bounds `C`.
    pub c: Vec<f64>,
    /// Feasible starting point (determines the equality-constraint level).
    pub alpha0: Vec<f64>,
    /// KKT stopping tolerance (LIBSVM default is `1e-3`).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

/// Output of [`solve`].
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// Optimal multipliers.
    pub alpha: Vec<f64>,
    /// Offset `ρ`; decision functions are `Σ coefᵢ k(xᵢ, ·) − ρ`.
    pub rho: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Final KKT violation gap.
    pub gap: f64,
}

/// Runs SMO to convergence.
///
/// # Errors
///
/// [`SvmError::NoConvergence`] if the iteration cap is reached with the
/// KKT gap still above `tol`; [`SvmError::InvalidInput`] on inconsistent
/// dimensions.
pub fn solve(problem: &DualProblem<'_>) -> Result<DualSolution, SvmError> {
    let _span = edm_trace::span("svm.smo.solve");
    let n = problem.p.len();
    if problem.y.len() != n
        || problem.c.len() != n
        || problem.alpha0.len() != n
        || problem.q.n() != n
    {
        return Err(SvmError::InvalidInput(format!("dual problem arrays disagree on n = {n}")));
    }
    let mut alpha = problem.alpha0.clone();
    let q = problem.q;
    let q_diag = q.diag();
    let y = &problem.y;
    let c = &problem.c;

    // G = Qα + p. O(n²) initialization, but only nonzero α contribute
    // (one Q-row fetch each).
    let mut g = problem.p.clone();
    for (j, &aj) in alpha.iter().enumerate() {
        if aj != 0.0 {
            let row_j = q.row(j);
            for (gt, &qtj) in g.iter_mut().zip(row_j.iter()) {
                *gt += qtj * aj;
            }
        }
    }

    let mut iterations = 0;
    let mut gap = f64::INFINITY;
    // Telemetry accumulated locally and flushed once after the loop, so
    // enabled-level tracing costs no per-iteration registry locks (the
    // per-iteration KKT trajectory probe is `full`-level only).
    let mut bound_hits = 0u64;
    while iterations < problem.max_iter {
        // Working-set selection: maximal violating pair.
        // i maximizes -y_t G_t over I_up; j minimizes it over I_low.
        let mut i: Option<usize> = None;
        let mut g_max = f64::NEG_INFINITY;
        let mut j: Option<usize> = None;
        let mut g_min = f64::INFINITY;
        for t in 0..n {
            let v = -y[t] * g[t];
            let in_up = (y[t] > 0.0 && alpha[t] < c[t]) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] < 0.0 && alpha[t] < c[t]) || (y[t] > 0.0 && alpha[t] > 0.0);
            if in_up && v > g_max {
                g_max = v;
                i = Some(t);
            }
            if in_low && v < g_min {
                g_min = v;
                j = Some(t);
            }
        }
        gap = g_max - g_min;
        if gap < problem.tol || i.is_none() || j.is_none() {
            gap = gap.max(0.0);
            break;
        }
        let (i, j) = (i.expect("checked"), j.expect("checked"));
        iterations += 1;
        edm_trace::record_full("svm.smo.kkt_gap", gap);

        // One row fetch each per iteration — the access pattern the LRU
        // row cache is shaped around.
        let row_i = q.row(i);
        let row_j = q.row(j);

        let old_ai = alpha[i];
        let old_aj = alpha[j];
        let qij = row_i[j];
        if (y[i] - y[j]).abs() > 0.5 {
            // y_i != y_j
            let mut quad = q_diag[i] + q_diag[j] + 2.0 * qij;
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (-g[i] - g[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > c[i] - c[j] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = c[i] - diff;
                }
            } else if alpha[j] > c[j] {
                alpha[j] = c[j];
                alpha[i] = c[j] + diff;
            }
        } else {
            // y_i == y_j
            let mut quad = q_diag[i] + q_diag[j] - 2.0 * qij;
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (g[i] - g[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c[i] {
                if alpha[i] > c[i] {
                    alpha[i] = c[i];
                    alpha[j] = sum - c[i];
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c[j] {
                if alpha[j] > c[j] {
                    alpha[j] = c[j];
                    alpha[i] = sum - c[j];
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // Gradient update for the two changed variables, streaming the
        // fetched rows.
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            for ((gt, &qti), &qtj) in g.iter_mut().zip(row_i.iter()).zip(row_j.iter()) {
                *gt += qti * dai + qtj * daj;
            }
        }
        if alpha[i] == 0.0 || alpha[i] == c[i] {
            bound_hits += 1;
        }
        if alpha[j] == 0.0 || alpha[j] == c[j] {
            bound_hits += 1;
        }
    }

    if edm_trace::enabled() {
        edm_trace::counter_add("svm.smo.calls", 1);
        edm_trace::counter_add("svm.smo.iterations", iterations as u64);
        edm_trace::counter_add("svm.smo.bound_hits", bound_hits);
        edm_trace::record("svm.smo.iterations_per_call", iterations as f64);
        if gap.is_finite() {
            edm_trace::record("svm.smo.final_gap", gap);
        }
    }

    if gap >= problem.tol && iterations >= problem.max_iter {
        return Err(SvmError::NoConvergence { iterations, gap });
    }

    // rho: average y_t G_t over free variables; else midpoint of bounds.
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for t in 0..n {
        let yg = y[t] * g[t];
        if alpha[t] >= c[t] - 1e-12 {
            if y[t] < 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] <= 1e-12 {
            if y[t] > 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    let rho = if n_free > 0 { sum_free / n_free as f64 } else { (ub + lb) / 2.0 };

    Ok(DualSolution { alpha, rho, iterations, gap })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmatrix::DenseQ;
    use edm_linalg::Matrix;

    /// Minimal hand-check: two points, labels ±1, linear kernel in 1-D at
    /// x = ±1. K = [[1,-1],[-1,1]] so Q = yᵢyⱼKᵢⱼ = [[1,1],[1,1]]. Solve
    /// and check the solution classifies both points correctly via
    /// f(x) = Σ y α k(x, xi) − ρ.
    #[test]
    fn two_point_svc_dual() {
        let x = [-1.0, 1.0];
        fn y_of(i: usize) -> f64 {
            if i == 0 {
                -1.0
            } else {
                1.0
            }
        }
        let qm = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let q = DenseQ::new(&qm);
        let problem = DualProblem {
            q: &q,
            p: vec![-1.0, -1.0],
            y: vec![-1.0, 1.0],
            c: vec![10.0, 10.0],
            alpha0: vec![0.0, 0.0],
            tol: 1e-6,
            max_iter: 1000,
        };
        let sol = solve(&problem).unwrap();
        // Analytic optimum: α = 0.5 for both, ρ = 0 (margin hyperplane x = 0).
        assert!((sol.alpha[0] - 0.5).abs() < 1e-6);
        assert!((sol.alpha[1] - 0.5).abs() < 1e-6);
        assert!(sol.rho.abs() < 1e-6);
        // decision at x = 2: Σ y α k = (-1)(.5)(-2) + (1)(.5)(2) = 2 > 0
        let f = |xq: f64| -> f64 {
            (0..2).map(|i| y_of(i) * sol.alpha[i] * (x[i] * xq)).sum::<f64>() - sol.rho
        };
        assert!(f(2.0) > 0.0);
        assert!(f(-2.0) < 0.0);
    }

    #[test]
    fn inconsistent_dimensions_rejected() {
        let qm = Matrix::zeros(1, 1);
        let q = DenseQ::new(&qm);
        let problem = DualProblem {
            q: &q,
            p: vec![-1.0, -1.0],
            y: vec![1.0, -1.0],
            c: vec![1.0, 1.0],
            alpha0: vec![0.0, 0.0],
            tol: 1e-3,
            max_iter: 10,
        };
        assert!(matches!(solve(&problem), Err(SvmError::InvalidInput(_))));
    }

    #[test]
    fn iteration_cap_reported() {
        // A 4-point problem with a 1-iteration budget cannot converge.
        let x = [-2.0, -1.0, 1.0, 2.0];
        let ys = [-1.0, -1.0, 1.0, 1.0];
        let qf = |i: usize, j: usize| ys[i] * ys[j] * (x[i] * x[j] + 1.0);
        let qm = Matrix::from_rows(
            &(0..4).map(|i| (0..4).map(|j| qf(i, j)).collect::<Vec<_>>()).collect::<Vec<_>>(),
        );
        let q = DenseQ::new(&qm);
        let problem = DualProblem {
            q: &q,
            p: vec![-1.0; 4],
            y: ys.to_vec(),
            c: vec![1.0; 4],
            alpha0: vec![0.0; 4],
            tol: 1e-9,
            max_iter: 1,
        };
        assert!(matches!(solve(&problem), Err(SvmError::NoConvergence { iterations: 1, .. })));
    }
}
