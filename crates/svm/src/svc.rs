use edm_kernels::{Kernel, RbfKernel};
use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::qmatrix::{CacheStats, CachedQ, GramQ, KernelQ, QMatrix, DEFAULT_CACHE_BYTES};
use crate::solver::{solve, DualProblem, SolverOptions, WorkingSet};
use crate::SvmError;

/// Hyperparameters for C-SVC training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvcParams {
    /// Box constraint `C` — the regularization knob trading training
    /// error against model complexity (the paper's `E + λC` objective;
    /// large `C` ≈ small λ).
    pub c: f64,
    /// KKT stopping tolerance.
    pub tol: f64,
    /// SMO iteration cap.
    pub max_iter: usize,
    /// Byte budget of the Q-row cache used during training
    /// ([`DEFAULT_CACHE_BYTES`] by default; `0` disables caching so
    /// every row access recomputes its kernel evaluations).
    pub cache_bytes: usize,
    /// SMO shrinking heuristic (on by default; `false` reproduces the
    /// unshrunk solver).
    pub shrinking: bool,
    /// SMO working-set selection rule (second order by default).
    pub working_set: WorkingSet,
}

impl Default for SvcParams {
    fn default() -> Self {
        SvcParams {
            c: 1.0,
            tol: 1e-3,
            max_iter: 100_000,
            cache_bytes: DEFAULT_CACHE_BYTES,
            shrinking: true,
            working_set: WorkingSet::SecondOrder,
        }
    }
}

impl SvcParams {
    /// Sets the box constraint `C`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the Q-row cache byte budget (`0` disables caching).
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Enables or disables the SMO shrinking heuristic.
    pub fn with_shrinking(mut self, shrinking: bool) -> Self {
        self.shrinking = shrinking;
        self
    }

    /// Sets the SMO working-set selection rule.
    pub fn with_working_set(mut self, working_set: WorkingSet) -> Self {
        self.working_set = working_set;
        self
    }

    pub(crate) fn solver_opts(&self) -> SolverOptions {
        SolverOptions {
            working_set: self.working_set,
            shrinking: self.shrinking,
            shrink_interval: 0,
        }
    }

    fn validate(&self) -> Result<(), SvmError> {
        if !(self.c > 0.0) {
            return Err(SvmError::InvalidParameter {
                name: "c",
                value: self.c,
                constraint: "must be positive",
            });
        }
        if !(self.tol > 0.0) {
            return Err(SvmError::InvalidParameter {
                name: "tol",
                value: self.tol,
                constraint: "must be positive",
            });
        }
        Ok(())
    }
}

/// Binary C-SVC trainer, generic over the kernel.
///
/// Labels are `+1.0` / `−1.0`. See the [crate root](crate) for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct SvcTrainer<K = RbfKernel> {
    params: SvcParams,
    kernel: K,
}

impl SvcTrainer<RbfKernel> {
    /// Creates a trainer with the default RBF kernel (γ = 1).
    pub fn new(params: SvcParams) -> Self {
        SvcTrainer { params, kernel: RbfKernel::new(1.0) }
    }
}

impl<K> SvcTrainer<K> {
    /// Replaces the kernel (builder-style).
    pub fn kernel<K2: Kernel<[f64]>>(self, kernel: K2) -> SvcTrainer<K2> {
        SvcTrainer { params: self.params, kernel }
    }

    /// The training hyperparameters.
    pub fn params(&self) -> &SvcParams {
        &self.params
    }
}

impl<K: Kernel<[f64]> + Clone> SvcTrainer<K> {
    /// Trains on vector samples with labels in `{−1, +1}`.
    ///
    /// # Errors
    ///
    /// * [`SvmError::InvalidInput`] — empty data, ragged rows, length
    ///   mismatch, or labels outside `{−1, +1}`.
    /// * [`SvmError::SingleClass`] — all labels identical.
    /// * [`SvmError::NoConvergence`] — SMO iteration cap reached.
    pub fn fit(&self, x: &[Vec<f64>], y: &[f64]) -> Result<SvcModel<K>, SvmError> {
        let _span = edm_trace::span("svm.svc.fit");
        self.params.validate()?;
        validate_labels(x, y)?;
        if !(y.contains(&1.0) && y.contains(&-1.0)) {
            return Err(SvmError::SingleClass);
        }
        // Kernel rows are computed on demand behind the LRU row cache —
        // the n×n Gram matrix is never materialized.
        let source = KernelQ::<[f64], _, _>::new(&self.kernel, x, Some(y));
        let mut q = CachedQ::new(source, self.params.cache_bytes);
        let (alpha, rho, iterations) = solve_svc_q(&mut q, y, &self.params)?;
        let cache = q.stats();
        // Keep only support vectors.
        let mut support = Vec::new();
        let mut coef = Vec::new();
        let mut complexity = 0.0;
        for (i, &a) in alpha.iter().enumerate() {
            if a > 1e-12 {
                support.push(x[i].clone());
                coef.push(y[i] * a);
                complexity += a;
            }
        }
        Ok(SvcModel {
            kernel: self.kernel.clone(),
            n_features: x[0].len(),
            support,
            coef,
            rho,
            complexity,
            iterations,
            cache,
        })
    }
}

/// Solves the C-SVC dual over a precomputed Gram matrix; returns
/// `(alpha, rho, iterations)`.
///
/// This is the paper-Fig.-4 entry point: samples never appear, only
/// their pairwise kernel values. Callers score new samples as
/// `Σᵢ yᵢ αᵢ k(x, xᵢ) − ρ`.
///
/// # Errors
///
/// As for [`SvcTrainer::fit`].
pub fn solve_svc(
    gram: &Matrix,
    y: &[f64],
    params: &SvcParams,
) -> Result<(Vec<f64>, f64, usize), SvmError> {
    params.validate()?;
    let n = y.len();
    if gram.rows() != n || gram.cols() != n {
        return Err(SvmError::InvalidInput(format!(
            "gram is {}x{}, expected {n}x{n}",
            gram.rows(),
            gram.cols()
        )));
    }
    if n == 0 {
        return Err(SvmError::InvalidInput("empty training set".into()));
    }
    if !(y.contains(&1.0) && y.contains(&-1.0)) {
        return Err(SvmError::SingleClass);
    }
    let mut q = CachedQ::new(GramQ::new(gram, Some(y)), params.cache_bytes);
    solve_svc_q(&mut q, y, params)
}

/// Shared C-SVC dual assembly over any [`QMatrix`] (`Q = yᵢyⱼKᵢⱼ`
/// already folded into `q`).
fn solve_svc_q(
    q: &mut dyn QMatrix,
    y: &[f64],
    params: &SvcParams,
) -> Result<(Vec<f64>, f64, usize), SvmError> {
    let n = y.len();
    let problem = DualProblem {
        p: vec![-1.0; n],
        y: y.to_vec(),
        c: vec![params.c; n],
        alpha0: vec![0.0; n],
        tol: params.tol,
        max_iter: params.max_iter,
        opts: params.solver_opts(),
    };
    let sol = solve(q, &problem)?;
    Ok((sol.alpha, sol.rho, sol.iterations))
}

/// A trained C-SVC model: `M(x) = Σᵢ yᵢαᵢ k(x, xᵢ) − ρ` (paper Eq. 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvcModel<K> {
    kernel: K,
    n_features: usize,
    support: Vec<Vec<f64>>,
    /// `yᵢ αᵢ` per support vector.
    coef: Vec<f64>,
    rho: f64,
    complexity: f64,
    iterations: usize,
    cache: CacheStats,
}

impl<K: Kernel<[f64]>> SvcModel<K> {
    /// The signed decision value `M(x)`; positive means class `+1`.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let s: f64 =
            self.support.iter().zip(&self.coef).map(|(sv, &c)| c * self.kernel.eval(x, sv)).sum();
        s - self.rho
    }

    /// Predicted label: `+1.0` or `−1.0` (ties break positive).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision_function(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Decision values for a batch of samples, one support-vector sweep
    /// per sample distributed across worker threads. Each sample's
    /// value is computed exactly as [`SvcModel::decision_function`]
    /// would (serial accumulation over support vectors), so the result
    /// is bitwise identical to the serial loop regardless of thread
    /// count.
    pub fn decision_function_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        edm_par::map_indexed(xs.len(), |i| self.decision_function(&xs[i]))
    }

    /// Predicts a batch of samples (parallel; bitwise identical to
    /// mapping [`SvcModel::predict`] over `xs`).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        edm_par::map_indexed(xs.len(), |i| self.predict(&xs[i]))
    }
}

impl<K> SvcModel<K> {
    /// Reassembles a model from its persisted parts — the inverse of
    /// the accessors below, used by `edm::persist` to reload saved
    /// models. The parts are stored verbatim, so a model rebuilt from
    /// its own accessors scores bitwise identically.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        kernel: K,
        n_features: usize,
        support: Vec<Vec<f64>>,
        coef: Vec<f64>,
        rho: f64,
        complexity: f64,
        iterations: usize,
        cache: CacheStats,
    ) -> Self {
        assert_eq!(support.len(), coef.len(), "one coefficient per support vector");
        SvcModel { kernel, n_features, support, coef, rho, complexity, iterations, cache }
    }

    /// The kernel the model scores with.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The dual coefficients `yᵢ αᵢ`, aligned with
    /// [`SvcModel::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// Dimensionality of the training samples; every sample scored by
    /// this model must have exactly this many features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The support vectors.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support
    }

    /// The model complexity `Σᵢ αᵢ` — the measure the paper's §2.3 uses
    /// to explain regularization and overfitting (Fig. 5).
    pub fn complexity(&self) -> f64 {
        self.complexity
    }

    /// The offset `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// SMO iterations used in training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Q-row cache behaviour during this model's training run.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }
}

pub(crate) fn validate_labels(x: &[Vec<f64>], y: &[f64]) -> Result<(), SvmError> {
    if x.is_empty() {
        return Err(SvmError::InvalidInput("empty training set".into()));
    }
    if x.len() != y.len() {
        return Err(SvmError::InvalidInput(format!("{} samples but {} labels", x.len(), y.len())));
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(SvmError::InvalidInput("ragged sample rows".into()));
    }
    if y.iter().any(|&l| l != 1.0 && l != -1.0) {
        return Err(SvmError::InvalidInput("labels must be +1.0 or -1.0".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_kernels::{gram_matrix, LinearKernel, PolyKernel};

    fn blobs() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let t = i as f64 * 0.1;
            x.push(vec![t, t + 0.1]);
            y.push(-1.0);
            x.push(vec![t + 3.0, t + 3.1]);
            y.push(1.0);
        }
        (x, y)
    }

    #[test]
    fn linearly_separable_blobs_classified() {
        let (x, y) = blobs();
        let m =
            SvcTrainer::new(SvcParams::default()).kernel(LinearKernel::new()).fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
        // well away from the boundary
        assert_eq!(m.predict(&[-1.0, -1.0]), -1.0);
        assert_eq!(m.predict(&[5.0, 5.0]), 1.0);
    }

    #[test]
    fn xor_needs_nonlinear_kernel() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        // RBF separates XOR perfectly.
        let rbf = SvcTrainer::new(SvcParams::default().with_c(100.0))
            .kernel(RbfKernel::new(2.0))
            .fit(&x, &y)
            .unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(rbf.predict(xi), yi, "rbf failed at {xi:?}");
        }
        // Linear cannot: at least one training point is misclassified.
        let lin = SvcTrainer::new(SvcParams::default().with_c(100.0))
            .kernel(LinearKernel::new())
            .fit(&x, &y)
            .unwrap();
        let errors = x.iter().zip(&y).filter(|(xi, &yi)| lin.predict(xi) != yi).count();
        assert!(errors > 0, "linear model cannot shatter XOR");
    }

    #[test]
    fn figure3_ring_vs_disc_poly2() {
        // Inner disc (class -1) vs outer ring (class +1): not linearly
        // separable in input space, separable under <x,x'>^2 (Fig. 3).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..16 {
            let a = i as f64 * std::f64::consts::TAU / 16.0;
            x.push(vec![0.5 * a.cos(), 0.5 * a.sin()]);
            y.push(-1.0);
            x.push(vec![2.0 * a.cos(), 2.0 * a.sin()]);
            y.push(1.0);
        }
        let m = SvcTrainer::new(SvcParams::default().with_c(10.0))
            .kernel(PolyKernel::homogeneous(2))
            .fit(&x, &y)
            .unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
    }

    #[test]
    fn complexity_grows_with_c() {
        // Overlapping classes: a looser box (larger C) buys a more complex
        // model (larger Σα) — the regularization story of Fig. 5.
        let x: Vec<Vec<f64>> =
            (0..20).map(|i| vec![(i % 10) as f64 * 0.2 + if i < 10 { 0.0 } else { 0.9 }]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 1.0 }).collect();
        let small = SvcTrainer::new(SvcParams::default().with_c(0.01))
            .kernel(RbfKernel::new(1.0))
            .fit(&x, &y)
            .unwrap();
        let large = SvcTrainer::new(SvcParams::default().with_c(10.0))
            .kernel(RbfKernel::new(1.0))
            .fit(&x, &y)
            .unwrap();
        assert!(large.complexity() > small.complexity());
    }

    #[test]
    fn input_validation() {
        let t = SvcTrainer::new(SvcParams::default());
        assert!(matches!(t.fit(&[], &[]), Err(SvmError::InvalidInput(_))));
        assert!(matches!(t.fit(&[vec![0.0]], &[2.0]), Err(SvmError::InvalidInput(_))));
        assert!(matches!(t.fit(&[vec![0.0], vec![1.0]], &[1.0, 1.0]), Err(SvmError::SingleClass)));
        let bad = SvcTrainer::new(SvcParams { c: -1.0, ..SvcParams::default() });
        assert!(matches!(
            bad.fit(&[vec![0.0], vec![1.0]], &[1.0, -1.0]),
            Err(SvmError::InvalidParameter { name: "c", .. })
        ));
    }

    #[test]
    fn model_exposes_cache_stats_and_trace_counters() {
        edm_trace::set_level(edm_trace::Level::Summary);
        let trace_on = edm_trace::compiled();
        let (x, y) = blobs();
        let m =
            SvcTrainer::new(SvcParams::default()).kernel(RbfKernel::new(0.5)).fit(&x, &y).unwrap();
        let s = m.cache_stats();
        assert!(s.misses > 0, "training must compute Q rows");
        assert!(s.hits > 0, "SMO revisits working-set rows through the cache");
        assert!(s.evictions <= s.misses, "can only evict rows that were filled");
        // The dropped CachedQ and the solver flushed global counters
        // (only when the probe machinery is compiled in).
        if trace_on {
            let r = edm_trace::collect();
            assert!(r.counter("svm.smo.iterations") > 0);
            assert!(r.counter("svm.qcache.hits") >= s.hits);
            assert!(r.counter("svm.qcache.misses") >= s.misses);
            assert!(r.span_count("svm.smo.solve") > 0);
        }
        edm_trace::set_level(edm_trace::Level::Off);
    }

    #[test]
    fn gram_path_matches_vector_path() {
        let (x, y) = blobs();
        let k = RbfKernel::new(0.5);
        let params = SvcParams::default();
        let model = SvcTrainer::new(params).kernel(k).fit(&x, &y).unwrap();
        let gram = gram_matrix(&k, &x);
        let (alpha, rho, _) = solve_svc(&gram, &y, &params).unwrap();
        // Decision values agree on a probe point.
        let probe = vec![1.5, 1.5];
        let from_gram: f64 = x
            .iter()
            .zip(y.iter().zip(&alpha))
            .map(|(xi, (&yi, &ai))| yi * ai * k.eval(&probe, xi))
            .sum::<f64>()
            - rho;
        assert!((model.decision_function(&probe) - from_gram).abs() < 1e-9);
    }
}
