//! Property tests pinning the second-order working-set selection (WSS2)
//! and shrinking upgrades against the first-order (WSS1) baseline:
//!
//! * WSS2+shrinking reaches a dual objective no worse than WSS1's (up
//!   to the KKT tolerance) and a tol-level identical `α`;
//! * the trained classifiers agree exactly on a held-out grid;
//! * WSS2 never needs more SMO iterations than WSS1 on separable
//!   problems (the 2–10× reduction claim's lower bound);
//! * on three-variable problems the solver matches a brute-force grid
//!   enumeration of the feasible polytope;
//! * batch prediction is bitwise identical to one-at-a-time prediction
//!   (the parallel fan-out cannot change results).

use edm_kernels::RbfKernel;
use edm_svm::solver::{solve, DualProblem, DualSolution, SolverOptions, WorkingSet};
use edm_svm::{CachedQ, KernelQ, QSource, SvcParams, SvcTrainer, SvmError};
use proptest::prelude::*;

/// Deterministic SplitMix64 point cloud in `[-1, 1]^d`.
fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// Two clusters around (±offset, ±offset): separable when the offset
/// exceeds the cluster radius.
fn two_clusters(seed: u64, n: usize, offset: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let raw = points(seed, n, 2);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for (i, p) in raw.into_iter().enumerate() {
        let s = if i % 2 == 0 { 1.0 } else { -1.0 };
        x.push(vec![0.4 * p[0] + s * offset, 0.4 * p[1] + s * offset]);
        y.push(s);
    }
    (x, y)
}

fn svc_options(working_set: WorkingSet, shrinking: bool) -> SolverOptions {
    SolverOptions { working_set, shrinking, shrink_interval: 0 }
}

/// Solves the C-SVC dual directly (p = −1, box `C`) with the given
/// solver configuration.
fn solve_svc_with(
    x: &[Vec<f64>],
    y: &[f64],
    gamma: f64,
    c: f64,
    tol: f64,
    opts: SolverOptions,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let mut q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, x, Some(y)), 1 << 20);
    let n = x.len();
    solve(
        &mut q,
        &DualProblem {
            p: vec![-1.0; n],
            y: y.to_vec(),
            c: vec![c; n],
            alpha0: vec![0.0; n],
            tol,
            max_iter: 200_000,
            opts,
        },
    )
}

/// Dual objective ½αᵀQα + pᵀα, evaluated from scratch against the
/// kernel source (independent of any solver state).
fn svc_dual_objective(x: &[Vec<f64>], y: &[f64], gamma: f64, alpha: &[f64]) -> f64 {
    let k = RbfKernel::new(gamma);
    let src = KernelQ::<[f64], _, _>::new(&k, x, Some(y));
    let n = alpha.len();
    let mut row = vec![0.0; n];
    let mut obj = 0.0;
    for i in 0..n {
        if alpha[i] == 0.0 {
            continue;
        }
        src.fill_row(i, &mut row);
        let qa: f64 = row.iter().zip(alpha).map(|(&q, &a)| q * a).sum();
        obj += alpha[i] * (0.5 * qa - 1.0);
    }
    obj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// WSS2+shrinking lands on the same optimum as the first-order
    /// unshrunk baseline: dual objective within tolerance (never
    /// meaningfully worse) and α tol-level identical. The RBF Gram of
    /// distinct points is positive definite, so the dual optimum is
    /// unique and the α comparison is well-posed.
    #[test]
    fn wss2_shrink_matches_wss1_optimum(
        seed in 0u64..1_000_000,
        n in 8usize..24,
        gamma in 0.4f64..2.0,
    ) {
        let x = points(seed, n, 2);
        let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let tol = 1e-8;
        let c = 5.0;
        let first = solve_svc_with(&x, &y, gamma, c, tol, svc_options(WorkingSet::FirstOrder, false)).unwrap();
        let second = solve_svc_with(&x, &y, gamma, c, tol, svc_options(WorkingSet::SecondOrder, true)).unwrap();

        let obj1 = svc_dual_objective(&x, &y, gamma, &first.alpha);
        let obj2 = svc_dual_objective(&x, &y, gamma, &second.alpha);
        prop_assert!(
            obj2 <= obj1 + 1e-6 * (1.0 + obj1.abs()),
            "WSS2+shrink objective {obj2} worse than WSS1 {obj1}"
        );
        for (a1, a2) in first.alpha.iter().zip(&second.alpha) {
            prop_assert!((a1 - a2).abs() < 1e-4 * c, "alpha diverged: {a1} vs {a2}");
        }
    }

    /// The classifiers trained under both configurations agree on every
    /// point of a held-out grid spanning the data's bounding box. Grid
    /// points whose margin is below the training tolerance are
    /// genuinely ambiguous (the two runs stop at different KKT points
    /// within `tol` of the optimum) and are excluded.
    #[test]
    fn predictions_identical_on_held_out_grid(
        seed in 0u64..1_000_000,
        n in 10usize..24,
        gamma in 0.4f64..1.5,
    ) {
        let (x, y) = two_clusters(seed, n, 0.8);
        let mut base = SvcParams::default().with_c(10.0);
        base.tol = 1e-8;
        let m1 = SvcTrainer::new(base.with_working_set(WorkingSet::FirstOrder).with_shrinking(false))
            .kernel(RbfKernel::new(gamma))
            .fit(&x, &y).unwrap();
        let m2 = SvcTrainer::new(base.with_working_set(WorkingSet::SecondOrder).with_shrinking(true))
            .kernel(RbfKernel::new(gamma))
            .fit(&x, &y).unwrap();
        for gi in 0..12 {
            for gj in 0..12 {
                let p = vec![-1.5 + 3.0 * gi as f64 / 11.0, -1.5 + 3.0 * gj as f64 / 11.0];
                if m1.decision_function(&p).abs() < 1e-6 {
                    continue;
                }
                prop_assert_eq!(m1.predict(&p), m2.predict(&p), "grid point {:?}", p);
            }
        }
    }

    /// On separable problems the second-order rule does not take more
    /// SMO iterations than the first-order rule — the mechanism behind
    /// the convergence speedup measured in `bench_smo_convergence`. The
    /// bound is over a batch of random problems per case: on a tiny
    /// individual instance either rule can get lucky by a step or two,
    /// but WSS2 wins in aggregate.
    #[test]
    fn wss2_iterations_never_exceed_wss1_on_separable(
        seed in 0u64..1_000_000,
        n in 12usize..30,
        gamma in 0.3f64..1.5,
    ) {
        let mut total_first = 0usize;
        let mut total_second = 0usize;
        for sub in 0..6u64 {
            let (x, y) = two_clusters(seed ^ (sub << 20), n, 1.0);
            let first =
                solve_svc_with(&x, &y, gamma, 10.0, 1e-4, svc_options(WorkingSet::FirstOrder, false)).unwrap();
            let second =
                solve_svc_with(&x, &y, gamma, 10.0, 1e-4, svc_options(WorkingSet::SecondOrder, false)).unwrap();
            total_first += first.iterations;
            total_second += second.iterations;
        }
        prop_assert!(
            total_second <= total_first,
            "WSS2 took {} iterations across the batch, WSS1 took {}",
            total_second,
            total_first
        );
    }

    /// Three-variable oracle: enumerate the feasible polytope
    /// {0 ≤ α ≤ C, Σ yᵢαᵢ = 0} on a fine grid and check the solver's
    /// objective is at least as good as the best grid vertex.
    #[test]
    fn solver_beats_brute_force_grid_on_three_variables(
        seed in 0u64..1_000_000,
        gamma in 0.4f64..2.0,
        flip in 0usize..3,
    ) {
        let x = points(seed, 3, 2);
        let mut y = vec![1.0, 1.0, -1.0];
        y.swap(2, flip);
        let c = 1.0;
        let sol = solve_svc_with(&x, &y, gamma, c, 1e-6, SolverOptions::default()).unwrap();
        let solver_obj = svc_dual_objective(&x, &y, gamma, &sol.alpha);

        let steps = 60usize;
        let mut best = f64::INFINITY;
        for i0 in 0..=steps {
            for i1 in 0..=steps {
                let a0 = c * i0 as f64 / steps as f64;
                let a1 = c * i1 as f64 / steps as f64;
                // Equality constraint pins the third variable.
                let a2 = -y[2] * (y[0] * a0 + y[1] * a1);
                if !(-1e-12..=c + 1e-12).contains(&a2) {
                    continue;
                }
                let obj = svc_dual_objective(&x, &y, gamma, &[a0, a1, a2.clamp(0.0, c)]);
                if obj < best {
                    best = obj;
                }
            }
        }
        prop_assert!(
            solver_obj <= best + 1e-4,
            "solver objective {solver_obj} worse than grid oracle {best}"
        );
    }

    /// Batch prediction is a pure fan-out: its outputs are bitwise
    /// identical to calling the scalar paths one sample at a time, so
    /// the parallel scheduling can never leak into results.
    #[test]
    fn batch_prediction_bitwise_matches_scalar(
        seed in 0u64..1_000_000,
        n in 8usize..20,
        gamma in 0.4f64..1.5,
    ) {
        let (x, y) = two_clusters(seed, n, 0.6);
        let model = SvcTrainer::new(SvcParams::default().with_c(5.0))
            .kernel(RbfKernel::new(gamma))
            .fit(&x, &y).unwrap();
        let queries = points(seed ^ 0xBEEF, 32, 2);
        let batch_dec = model.decision_function_batch(&queries);
        let batch_lbl = model.predict_batch(&queries);
        for (i, qp) in queries.iter().enumerate() {
            prop_assert_eq!(batch_dec[i].to_bits(), model.decision_function(qp).to_bits());
            prop_assert_eq!(batch_lbl[i].to_bits(), model.predict(qp).to_bits());
        }
    }
}
