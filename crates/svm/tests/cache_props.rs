//! Property tests pinning the Q-row cache's correctness guarantee: for
//! any random problem, solving with the cache **on** (large or
//! pathologically tiny budget) returns a `DualSolution` bitwise
//! identical to solving with the cache **off** — for all three dual
//! shapes (SVC, SVR, one-class). Also checks that cached rows under a
//! random access pattern always match a direct source fill.

use edm_kernels::RbfKernel;
use edm_svm::solver::{solve, DualProblem, DualSolution, SolverOptions};
use edm_svm::{CachedQ, KernelQ, QMatrix, QSource, SvmError, SvrQ};
use proptest::prelude::*;

/// Deterministic SplitMix64 point cloud.
fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// Both runs must agree exactly: same solution bit-for-bit, or the same
/// error.
fn assert_identical(a: &Result<DualSolution, SvmError>, b: &Result<DualSolution, SvmError>) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.alpha.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.alpha.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "alpha differs"
            );
            assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "rho differs");
            assert_eq!(a.iterations, b.iterations, "iterations differ");
            assert_eq!(a.gap.to_bits(), b.gap.to_bits(), "gap differs");
        }
        (Err(ea), Err(eb)) => assert_eq!(format!("{ea:?}"), format!("{eb:?}")),
        (a, b) => panic!("cache changed the outcome: {a:?} vs {b:?}"),
    }
}

fn solve_svc_cached(
    x: &[Vec<f64>],
    y: &[f64],
    gamma: f64,
    cache_bytes: usize,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let mut q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, x, Some(y)), cache_bytes);
    let n = x.len();
    solve(
        &mut q,
        &DualProblem {
            p: vec![-1.0; n],
            y: y.to_vec(),
            c: vec![5.0; n],
            alpha0: vec![0.0; n],
            tol: 1e-4,
            max_iter: 20_000,
            opts: SolverOptions::default(),
        },
    )
}

fn solve_svr_cached(
    x: &[Vec<f64>],
    t: &[f64],
    gamma: f64,
    cache_bytes: usize,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let m = x.len();
    let mut q = CachedQ::new(SvrQ::<[f64], _, _>::new(&k, x), cache_bytes);
    let epsilon = 0.05;
    let mut p = Vec::with_capacity(2 * m);
    for &ti in t {
        p.push(epsilon - ti);
    }
    for &ti in t {
        p.push(epsilon + ti);
    }
    let sign = |u: usize| if u < m { 1.0 } else { -1.0 };
    solve(
        &mut q,
        &DualProblem {
            p,
            y: (0..2 * m).map(sign).collect(),
            c: vec![2.0; 2 * m],
            alpha0: vec![0.0; 2 * m],
            tol: 1e-4,
            max_iter: 40_000,
            opts: SolverOptions::default(),
        },
    )
}

fn solve_one_class_cached(
    x: &[Vec<f64>],
    nu: f64,
    gamma: f64,
    cache_bytes: usize,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let mut q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, x, None), cache_bytes);
    let n = x.len();
    // LIBSVM's feasible start Σα = νn — nonzero alpha0 also exercises
    // the gradient-initialization row fetches.
    let total = nu * n as f64;
    let full = total.floor() as usize;
    let mut alpha0 = vec![0.0; n];
    for a in alpha0.iter_mut().take(full.min(n)) {
        *a = 1.0;
    }
    if full < n {
        alpha0[full] = total - full as f64;
    }
    solve(
        &mut q,
        &DualProblem {
            p: vec![0.0; n],
            y: vec![1.0; n],
            c: vec![1.0; n],
            alpha0,
            tol: 1e-4,
            max_iter: 20_000,
            opts: SolverOptions::default(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn svc_solution_is_cache_invariant(
        seed in 0u64..1_000_000,
        n in 8usize..24,
        gamma in 0.3f64..2.0,
    ) {
        let x = points(seed, n, 2);
        let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let off = solve_svc_cached(&x, &y, gamma, 0);
        // Tiny budget (2 resident rows — constant eviction churn).
        assert_identical(&solve_svc_cached(&x, &y, gamma, 8 * n), &off);
        // Ample budget (everything fits).
        assert_identical(&solve_svc_cached(&x, &y, gamma, 1 << 20), &off);
    }

    #[test]
    fn svr_solution_is_cache_invariant(
        seed in 0u64..1_000_000,
        m in 6usize..16,
        gamma in 0.3f64..2.0,
    ) {
        let x = points(seed, m, 2);
        let t: Vec<f64> = x.iter().map(|p| p[0] - 0.5 * p[1]).collect();
        let off = solve_svr_cached(&x, &t, gamma, 0);
        assert_identical(&solve_svr_cached(&x, &t, gamma, 16 * m), &off);
        assert_identical(&solve_svr_cached(&x, &t, gamma, 1 << 20), &off);
    }

    #[test]
    fn one_class_solution_is_cache_invariant(
        seed in 0u64..1_000_000,
        n in 8usize..24,
        nu in 0.1f64..0.9,
        gamma in 0.3f64..2.0,
    ) {
        let x = points(seed, n, 2);
        let off = solve_one_class_cached(&x, nu, gamma, 0);
        assert_identical(&solve_one_class_cached(&x, nu, gamma, 8 * n), &off);
        assert_identical(&solve_one_class_cached(&x, nu, gamma, 1 << 20), &off);
    }

    /// Batched fetches through `rows_prefix` — duplicates, random
    /// prefix lengths, and cache renumbering included — must return
    /// rows bitwise identical to a direct source fill routed through
    /// the same permutation.
    #[test]
    fn batched_rows_prefix_matches_source_fills(
        seed in 0u64..1_000_000,
        n in 4usize..32,
        cache_bytes in 0usize..4000,
    ) {
        let x = points(seed, n, 3);
        let k = RbfKernel::new(0.7);
        let src = KernelQ::<[f64], _, _>::new(&k, &x, None);
        let mut cached = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), cache_bytes);
        // Mirror of the renumbering applied via swap_index: logical
        // position -> original index.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut direct = vec![0.0; n];
        let mut state = seed ^ 0xBA7C4;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            state
        };
        for _ in 0..40 {
            // Occasionally renumber, exercising the permuted gather path.
            if next() % 3 == 0 {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                cached.swap_index(a, b);
                perm.swap(a, b);
            }
            let batch = 1 + (next() % 5) as usize;
            let idxs: Vec<usize> = (0..batch).map(|_| (next() % n as u64) as usize).collect();
            let len = 1 + (next() % n as u64) as usize;
            let len = len.max(idxs.iter().copied().max().unwrap_or(0) + 1);
            let rows = cached.rows_prefix(&idxs, len);
            prop_assert_eq!(rows.len(), idxs.len());
            for (&i, row) in idxs.iter().zip(&rows) {
                src.fill_row(perm[i], &mut direct);
                let want: Vec<u64> =
                    perm[..len].iter().map(|&j| direct[j].to_bits()).collect();
                let got: Vec<u64> = row[..len].iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "row {} len {}", i, len);
            }
        }
    }

    /// Same contract for the SVR source, whose batched fill goes
    /// through the mirrored two-block layout (`n = 2m` columns backed
    /// by `m` kernel evaluations).
    #[test]
    fn batched_svr_rows_match_source_fills(
        seed in 0u64..1_000_000,
        m in 3usize..14,
        cache_bytes in 0usize..4000,
    ) {
        let x = points(seed, m, 3);
        let k = RbfKernel::new(0.9);
        let n = 2 * m;
        let src = SvrQ::<[f64], _, _>::new(&k, &x);
        let mut cached = CachedQ::new(SvrQ::<[f64], _, _>::new(&k, &x), cache_bytes);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut direct = vec![0.0; n];
        let mut state = seed ^ 0x51C6;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            state
        };
        for _ in 0..30 {
            if next() % 3 == 0 {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                cached.swap_index(a, b);
                perm.swap(a, b);
            }
            let batch = 1 + (next() % 4) as usize;
            let idxs: Vec<usize> = (0..batch).map(|_| (next() % n as u64) as usize).collect();
            let rows = cached.rows_prefix(&idxs, n);
            for (&i, row) in idxs.iter().zip(&rows) {
                src.fill_row(perm[i], &mut direct);
                let want: Vec<u64> = perm.iter().map(|&j| direct[j].to_bits()).collect();
                let got: Vec<u64> = row[..n].iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "svr row {}", i);
            }
        }
    }

    /// For duplicate-free batches under a budget ample enough that no
    /// eviction lands mid-batch, one `rows_prefix` call must leave the
    /// cache in exactly the state that sequential `row_prefix` calls
    /// would: same rows, same hit/miss/eviction counters. (Tight
    /// budgets may classify differently — a sequential insert can
    /// evict a row a later request would have hit — which is why the
    /// solver-invariance tests above, not counter equality, pin that
    /// regime.)
    #[test]
    fn batched_fetch_preserves_sequential_cache_state(
        seed in 0u64..1_000_000,
        n in 6usize..24,
    ) {
        let x = points(seed, n, 2);
        let k = RbfKernel::new(1.1);
        let cache_bytes = 1usize << 20;
        let batched = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), cache_bytes);
        let sequential = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), cache_bytes);
        let mut state = seed ^ 0xFACE;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            state
        };
        for _ in 0..30 {
            let batch = 1 + (next() % 5) as usize;
            let mut idxs: Vec<usize> = Vec::with_capacity(batch);
            while idxs.len() < batch {
                let i = (next() % n as u64) as usize;
                if !idxs.contains(&i) {
                    idxs.push(i);
                }
            }
            let rows = batched.rows_prefix(&idxs, n);
            for (&i, row) in idxs.iter().zip(&rows) {
                let lone = sequential.row_prefix(i, n);
                prop_assert_eq!(
                    row[..n].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    lone[..n].iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
            prop_assert_eq!(batched.stats(), sequential.stats());
        }
    }

    #[test]
    fn cached_rows_match_source_under_random_access(
        seed in 0u64..1_000_000,
        n in 8usize..40,
        cache_bytes in 0usize..4000,
    ) {
        let x = points(seed, n, 3);
        let k = RbfKernel::new(0.9);
        let src = KernelQ::<[f64], _, _>::new(&k, &x, None);
        let cached = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), cache_bytes);
        let mut direct = vec![0.0; n];
        let mut state = seed ^ 0xD00D;
        for _ in 0..200 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let i = (state % n as u64) as usize;
            src.fill_row(i, &mut direct);
            let row = cached.row(i);
            prop_assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
