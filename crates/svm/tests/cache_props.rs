//! Property tests pinning the Q-row cache's correctness guarantee: for
//! any random problem, solving with the cache **on** (large or
//! pathologically tiny budget) returns a `DualSolution` bitwise
//! identical to solving with the cache **off** — for all three dual
//! shapes (SVC, SVR, one-class). Also checks that cached rows under a
//! random access pattern always match a direct source fill.

use edm_kernels::RbfKernel;
use edm_svm::solver::{solve, DualProblem, DualSolution, SolverOptions};
use edm_svm::{CachedQ, KernelQ, QMatrix, QSource, SvmError, SvrQ};
use proptest::prelude::*;

/// Deterministic SplitMix64 point cloud.
fn points(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// Both runs must agree exactly: same solution bit-for-bit, or the same
/// error.
fn assert_identical(a: &Result<DualSolution, SvmError>, b: &Result<DualSolution, SvmError>) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.alpha.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.alpha.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "alpha differs"
            );
            assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "rho differs");
            assert_eq!(a.iterations, b.iterations, "iterations differ");
            assert_eq!(a.gap.to_bits(), b.gap.to_bits(), "gap differs");
        }
        (Err(ea), Err(eb)) => assert_eq!(format!("{ea:?}"), format!("{eb:?}")),
        (a, b) => panic!("cache changed the outcome: {a:?} vs {b:?}"),
    }
}

fn solve_svc_cached(
    x: &[Vec<f64>],
    y: &[f64],
    gamma: f64,
    cache_bytes: usize,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let mut q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, x, Some(y)), cache_bytes);
    let n = x.len();
    solve(
        &mut q,
        &DualProblem {
            p: vec![-1.0; n],
            y: y.to_vec(),
            c: vec![5.0; n],
            alpha0: vec![0.0; n],
            tol: 1e-4,
            max_iter: 20_000,
            opts: SolverOptions::default(),
        },
    )
}

fn solve_svr_cached(
    x: &[Vec<f64>],
    t: &[f64],
    gamma: f64,
    cache_bytes: usize,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let m = x.len();
    let mut q = CachedQ::new(SvrQ::<[f64], _, _>::new(&k, x), cache_bytes);
    let epsilon = 0.05;
    let mut p = Vec::with_capacity(2 * m);
    for &ti in t {
        p.push(epsilon - ti);
    }
    for &ti in t {
        p.push(epsilon + ti);
    }
    let sign = |u: usize| if u < m { 1.0 } else { -1.0 };
    solve(
        &mut q,
        &DualProblem {
            p,
            y: (0..2 * m).map(sign).collect(),
            c: vec![2.0; 2 * m],
            alpha0: vec![0.0; 2 * m],
            tol: 1e-4,
            max_iter: 40_000,
            opts: SolverOptions::default(),
        },
    )
}

fn solve_one_class_cached(
    x: &[Vec<f64>],
    nu: f64,
    gamma: f64,
    cache_bytes: usize,
) -> Result<DualSolution, SvmError> {
    let k = RbfKernel::new(gamma);
    let mut q = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, x, None), cache_bytes);
    let n = x.len();
    // LIBSVM's feasible start Σα = νn — nonzero alpha0 also exercises
    // the gradient-initialization row fetches.
    let total = nu * n as f64;
    let full = total.floor() as usize;
    let mut alpha0 = vec![0.0; n];
    for a in alpha0.iter_mut().take(full.min(n)) {
        *a = 1.0;
    }
    if full < n {
        alpha0[full] = total - full as f64;
    }
    solve(
        &mut q,
        &DualProblem {
            p: vec![0.0; n],
            y: vec![1.0; n],
            c: vec![1.0; n],
            alpha0,
            tol: 1e-4,
            max_iter: 20_000,
            opts: SolverOptions::default(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn svc_solution_is_cache_invariant(
        seed in 0u64..1_000_000,
        n in 8usize..24,
        gamma in 0.3f64..2.0,
    ) {
        let x = points(seed, n, 2);
        let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let off = solve_svc_cached(&x, &y, gamma, 0);
        // Tiny budget (2 resident rows — constant eviction churn).
        assert_identical(&solve_svc_cached(&x, &y, gamma, 8 * n), &off);
        // Ample budget (everything fits).
        assert_identical(&solve_svc_cached(&x, &y, gamma, 1 << 20), &off);
    }

    #[test]
    fn svr_solution_is_cache_invariant(
        seed in 0u64..1_000_000,
        m in 6usize..16,
        gamma in 0.3f64..2.0,
    ) {
        let x = points(seed, m, 2);
        let t: Vec<f64> = x.iter().map(|p| p[0] - 0.5 * p[1]).collect();
        let off = solve_svr_cached(&x, &t, gamma, 0);
        assert_identical(&solve_svr_cached(&x, &t, gamma, 16 * m), &off);
        assert_identical(&solve_svr_cached(&x, &t, gamma, 1 << 20), &off);
    }

    #[test]
    fn one_class_solution_is_cache_invariant(
        seed in 0u64..1_000_000,
        n in 8usize..24,
        nu in 0.1f64..0.9,
        gamma in 0.3f64..2.0,
    ) {
        let x = points(seed, n, 2);
        let off = solve_one_class_cached(&x, nu, gamma, 0);
        assert_identical(&solve_one_class_cached(&x, nu, gamma, 8 * n), &off);
        assert_identical(&solve_one_class_cached(&x, nu, gamma, 1 << 20), &off);
    }

    #[test]
    fn cached_rows_match_source_under_random_access(
        seed in 0u64..1_000_000,
        n in 8usize..40,
        cache_bytes in 0usize..4000,
    ) {
        let x = points(seed, n, 3);
        let k = RbfKernel::new(0.9);
        let src = KernelQ::<[f64], _, _>::new(&k, &x, None);
        let cached = CachedQ::new(KernelQ::<[f64], _, _>::new(&k, &x, None), cache_bytes);
        let mut direct = vec![0.0; n];
        let mut state = seed ^ 0xD00D;
        for _ in 0..200 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let i = (state % n as u64) as usize;
            src.fill_row(i, &mut direct);
            let row = cached.row(i);
            prop_assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
