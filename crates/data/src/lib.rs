//! # edm-data — datasets, preprocessing, and evaluation metrics
//!
//! Implements the "dataset seen by a learning algorithm" of the paper's
//! Figure 1: a sample matrix `X` with an optional target that may be a
//! class label vector, a continuous `y`, or a full matrix `Y`
//! (multivariate regression / CCA-style setups).
//!
//! On top of the dataset type this crate provides the supporting cast a
//! practical mining methodology needs (paper §2.4):
//!
//! * train/test and k-fold splitting ([`split`])
//! * feature scaling ([`scale`])
//! * imbalanced-data rebalancing, including SMOTE ([`rebalance`]) —
//!   the paper's reference \[15\]
//! * feature selection for extreme imbalance ([`feature_select`]) —
//!   the paper's references \[17\]\[18\]
//! * classification / regression / ranking metrics ([`metrics`])
//! * cross-validation and grid search ([`model_select`]) — the paper's
//!   "choosing the best model for the given data" made mechanical
//! * flat-file import/export ([`csv`]) for the numeric logs EDA tools emit
//!
//! # Example
//!
//! ```
//! use edm_data::{Dataset, Target};
//!
//! let ds = Dataset::from_rows(
//!     vec![vec![1.0, 2.0], vec![3.0, 4.0]],
//!     Target::Labels(vec![0, 1]),
//! );
//! assert_eq!(ds.n_samples(), 2);
//! assert_eq!(ds.n_features(), 2);
//! assert_eq!(ds.labels().unwrap(), &[0, 1]);
//! ```

#![forbid(unsafe_code)]

pub mod csv;
mod dataset;
pub mod feature_select;
pub mod metrics;
pub mod model_select;
pub mod rebalance;
pub mod scale;
pub mod split;

pub use dataset::{Dataset, DatasetError, Target};
pub use scale::{MinMaxScaler, StandardScaler};
pub use split::{train_test_split, KFold, StratifiedSplit, TrainTest};
