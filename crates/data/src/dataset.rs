use std::fmt;

use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The supervision attached to a dataset (paper Fig. 1).
///
/// * [`Target::None`] — unsupervised learning.
/// * [`Target::Labels`] — classification (categorical `y`).
/// * [`Target::Values`] — regression (continuous `y`).
/// * [`Target::Matrix`] — multivariate target `Y` (e.g. partial least
///   squares or canonical correlation setups, paper §2).
/// * [`Target::Partial`] — semi-supervised: `Some(label)` for the few
///   labeled samples, `None` elsewhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// No supervision.
    None,
    /// One categorical label per sample.
    Labels(Vec<i32>),
    /// One continuous value per sample.
    Values(Vec<f64>),
    /// A full multivariate target matrix `Y` (one row per sample).
    Matrix(Matrix),
    /// Semi-supervised labels: mostly `None`, a few `Some`.
    Partial(Vec<Option<i32>>),
}

impl Target {
    /// Number of samples the target covers; `None` if the target carries
    /// no per-sample data ([`Target::None`]).
    pub fn len(&self) -> Option<usize> {
        match self {
            Target::None => None,
            Target::Labels(l) => Some(l.len()),
            Target::Values(v) => Some(v.len()),
            Target::Matrix(m) => Some(m.rows()),
            Target::Partial(p) => Some(p.len()),
        }
    }

    /// Whether the target carries zero samples.
    pub fn is_empty(&self) -> bool {
        self.len().is_none_or(|n| n == 0)
    }

    /// Selects the target rows at `idx`, preserving the variant.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select(&self, idx: &[usize]) -> Target {
        match self {
            Target::None => Target::None,
            Target::Labels(l) => Target::Labels(idx.iter().map(|&i| l[i]).collect()),
            Target::Values(v) => Target::Values(idx.iter().map(|&i| v[i]).collect()),
            Target::Matrix(m) => {
                let cols: Vec<usize> = (0..m.cols()).collect();
                Target::Matrix(m.select(idx, &cols))
            }
            Target::Partial(p) => Target::Partial(idx.iter().map(|&i| p[i]).collect()),
        }
    }
}

/// Errors for dataset construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// The target length does not match the number of samples.
    TargetLengthMismatch {
        /// Number of samples in `X`.
        samples: usize,
        /// Number of entries in the target.
        target: usize,
    },
    /// Feature-name count does not match the number of columns.
    FeatureNameMismatch {
        /// Number of columns in `X`.
        features: usize,
        /// Number of names supplied.
        names: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DatasetError::TargetLengthMismatch { samples, target } => {
                write!(f, "target has {target} entries but the dataset has {samples} samples")
            }
            DatasetError::FeatureNameMismatch { features, names } => {
                write!(f, "{names} feature names supplied for {features} features")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dataset: sample matrix `X` (one row per sample) plus a [`Target`]
/// and optional feature names.
///
/// This is the lingua franca between the substrates (which emit datasets)
/// and the learners (which consume them). Feature names matter in this
/// workspace more than in a generic ML library: the paper's
/// knowledge-discovery flows (§5) report *rules over named features* back
/// to an engineer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Matrix,
    target: Target,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset; generates feature names `f0, f1, ...`.
    ///
    /// # Errors
    ///
    /// [`DatasetError::TargetLengthMismatch`] if the target length does
    /// not equal the number of rows of `x`.
    pub fn new(x: Matrix, target: Target) -> Result<Self, DatasetError> {
        if let Some(t) = target.len() {
            if t != x.rows() {
                return Err(DatasetError::TargetLengthMismatch { samples: x.rows(), target: t });
            }
        }
        let feature_names = (0..x.cols()).map(|i| format!("f{i}")).collect();
        Ok(Dataset { x, target, feature_names })
    }

    /// Convenience constructor from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or the target length mismatches (this is
    /// the "I know my data is consistent" constructor; use
    /// [`Dataset::new`] for fallible construction).
    pub fn from_rows(rows: Vec<Vec<f64>>, target: Target) -> Self {
        Dataset::new(Matrix::from_rows(&rows), target).expect("consistent rows/target")
    }

    /// Unsupervised dataset from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn unlabeled(rows: Vec<Vec<f64>>) -> Self {
        Dataset::from_rows(rows, Target::None)
    }

    /// Replaces the auto-generated feature names.
    ///
    /// # Errors
    ///
    /// [`DatasetError::FeatureNameMismatch`] if the count differs from
    /// the number of features.
    pub fn with_feature_names<S: Into<String>>(
        mut self,
        names: Vec<S>,
    ) -> Result<Self, DatasetError> {
        if names.len() != self.x.cols() {
            return Err(DatasetError::FeatureNameMismatch {
                features: self.x.cols(),
                names: names.len(),
            });
        }
        self.feature_names = names.into_iter().map(Into::into).collect();
        Ok(self)
    }

    /// The sample matrix `X`.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The target.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Feature names, one per column of `X`.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of samples (rows of `X`).
    pub fn n_samples(&self) -> usize {
        self.x.rows()
    }

    /// Number of features (columns of `X`).
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Sample `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_samples()`.
    pub fn sample(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// Class labels, if the target is [`Target::Labels`].
    pub fn labels(&self) -> Option<&[i32]> {
        match &self.target {
            Target::Labels(l) => Some(l),
            _ => None,
        }
    }

    /// Continuous target values, if the target is [`Target::Values`].
    pub fn values(&self) -> Option<&[f64]> {
        match &self.target {
            Target::Values(v) => Some(v),
            _ => None,
        }
    }

    /// The distinct labels in ascending order (empty for non-label
    /// targets).
    pub fn classes(&self) -> Vec<i32> {
        let mut c: Vec<i32> = self.labels().map(|l| l.to_vec()).unwrap_or_default();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Per-class sample counts as `(label, count)`, ascending by label.
    pub fn class_counts(&self) -> Vec<(i32, usize)> {
        let classes = self.classes();
        let labels = self.labels().unwrap_or(&[]);
        classes.into_iter().map(|c| (c, labels.iter().filter(|&&l| l == c).count())).collect()
    }

    /// Imbalance ratio `max class count / min class count`; `1.0` when
    /// there are fewer than two classes.
    ///
    /// The paper (§2.4) treats ratios in the thousands as "no longer a
    /// classification problem" — callers use this to route to
    /// feature-selection/novelty formulations instead.
    pub fn imbalance_ratio(&self) -> f64 {
        let counts = self.class_counts();
        if counts.len() < 2 {
            return 1.0;
        }
        let max = counts.iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
        let min = counts.iter().map(|&(_, c)| c).min().unwrap_or(1).max(1) as f64;
        max / min
    }

    /// Selects a subset of samples by index, preserving the target.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        let cols: Vec<usize> = (0..self.n_features()).collect();
        Dataset {
            x: self.x.select(idx, &cols),
            target: self.target.select(idx),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Projects onto a subset of features by column index.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of bounds.
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        let rows: Vec<usize> = (0..self.n_samples()).collect();
        Dataset {
            x: self.x.select(&rows, cols),
            target: self.target.clone(),
            feature_names: cols.iter().map(|&c| self.feature_names[c].clone()).collect(),
        }
    }

    /// Rows as owned vectors (the representation kernel-free learners
    /// consume).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        self.x.iter_rows().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0], vec![6.0, 7.0]],
            Target::Labels(vec![0, 0, 0, 1]),
        )
    }

    #[test]
    fn basic_accessors() {
        let ds = small();
        assert_eq!(ds.n_samples(), 4);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.sample(1), &[2.0, 3.0]);
        assert_eq!(ds.classes(), vec![0, 1]);
        assert_eq!(ds.class_counts(), vec![(0, 3), (1, 1)]);
        assert!((ds.imbalance_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_target_rejected() {
        let r = Dataset::new(Matrix::zeros(3, 2), Target::Labels(vec![0, 1]));
        assert!(matches!(r, Err(DatasetError::TargetLengthMismatch { samples: 3, target: 2 })));
    }

    #[test]
    fn select_preserves_pairing() {
        let ds = small();
        let sub = ds.select(&[3, 0]);
        assert_eq!(sub.labels().unwrap(), &[1, 0]);
        assert_eq!(sub.sample(0), &[6.0, 7.0]);
    }

    #[test]
    fn select_features_renames() {
        let ds = small().with_feature_names(vec!["a", "b"]).unwrap();
        let sub = ds.select_features(&[1]);
        assert_eq!(sub.feature_names(), &["b".to_string()]);
        assert_eq!(sub.sample(2), &[5.0]);
        // target untouched
        assert_eq!(sub.labels().unwrap(), ds.labels().unwrap());
    }

    #[test]
    fn feature_name_count_checked() {
        let ds = small();
        assert!(ds.with_feature_names(vec!["only-one"]).is_err());
    }

    #[test]
    fn matrix_target_select() {
        let y = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]]);
        let t = Target::Matrix(y);
        let s = t.select(&[2, 0]);
        match s {
            Target::Matrix(m) => {
                assert_eq!(m.row(0), &[0.5, 0.5]);
                assert_eq!(m.row(1), &[1.0, 0.0]);
            }
            _ => panic!("expected matrix target"),
        }
    }

    #[test]
    fn partial_target_roundtrip() {
        let t = Target::Partial(vec![Some(1), None, Some(0)]);
        assert_eq!(t.len(), Some(3));
        assert_eq!(t.select(&[1, 2]), Target::Partial(vec![None, Some(0)]));
    }
}
