//! Model selection: cross-validated scoring and grid search.
//!
//! The paper frames practical learning as "choosing the best model for
//! the given data" (§1, citing \[1\]); these helpers are the mechanical
//! part of that choice. They are deliberately generic — a model is
//! anything you can fit on index-selected training data and score on
//! held-out data — so every learner in the workspace plugs in without
//! adapter types.

use rand::Rng;

use crate::split::KFold;
use crate::{Dataset, Target};

/// Mean and standard deviation of per-fold scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvScore {
    /// Mean fold score.
    pub mean: f64,
    /// Unbiased standard deviation across folds (0 for a single fold).
    pub std: f64,
    /// Number of folds evaluated.
    pub folds: usize,
}

/// K-fold cross-validation of an arbitrary fit/score pair.
///
/// `fit_score(train, test)` fits on the training partition and returns a
/// score on the held-out partition ("higher = better" by convention;
/// negate a loss if needed). Folds that fail to fit may return `None`
/// and are skipped (e.g. a fold missing one class).
///
/// # Panics
///
/// Panics if every fold returns `None`.
///
/// # Example
///
/// ```
/// use edm_data::model_select::cross_validate;
/// use edm_data::{Dataset, Target};
/// use rand::SeedableRng;
///
/// let ds = Dataset::from_rows(
///     (0..40).map(|i| vec![i as f64]).collect(),
///     Target::Values((0..40).map(|i| 2.0 * i as f64).collect()),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let score = cross_validate(&ds, 5, &mut rng, |train, test| {
///     // "model": predict the training mean; score: negative MSE
///     let mean = edm_linalg::mean(train.values().unwrap());
///     let mse = test
///         .values()
///         .unwrap()
///         .iter()
///         .map(|&y| (y - mean) * (y - mean))
///         .sum::<f64>()
///         / test.n_samples() as f64;
///     Some(-mse)
/// });
/// assert_eq!(score.folds, 5);
/// ```
pub fn cross_validate<R, F>(ds: &Dataset, k: usize, rng: &mut R, mut fit_score: F) -> CvScore
where
    R: Rng + ?Sized,
    F: FnMut(&Dataset, &Dataset) -> Option<f64>,
{
    let _span = edm_trace::span("data.cv");
    let folds = KFold::new(k).split(ds, rng);
    let scores: Vec<f64> = folds
        .iter()
        .filter_map(|f| {
            let _fold_span = edm_trace::span("data.cv.fold");
            fit_score(&f.train, &f.test)
        })
        .collect();
    assert!(!scores.is_empty(), "every cross-validation fold failed to fit");
    CvScore {
        mean: edm_linalg::mean(&scores),
        std: edm_linalg::variance(&scores).sqrt(),
        folds: scores.len(),
    }
}

/// K-fold cross-validation with the folds fitted on worker threads.
///
/// Semantics match [`cross_validate`] — same fold split for the same
/// RNG stream, scores aggregated in fold order — but `fit_score` must
/// be `Fn + Sync` (no mutable captures) so folds can run concurrently.
/// Because aggregation preserves fold order, the returned [`CvScore`]
/// is bitwise identical to the serial version's.
///
/// # Panics
///
/// Panics if every fold returns `None`.
pub fn par_cross_validate<R, F>(ds: &Dataset, k: usize, rng: &mut R, fit_score: F) -> CvScore
where
    R: Rng + ?Sized,
    F: Fn(&Dataset, &Dataset) -> Option<f64> + Sync,
{
    let _span = edm_trace::span("data.cv");
    let folds = KFold::new(k).split(ds, rng);
    let scores: Vec<f64> = edm_par::map_indexed(folds.len(), |i| {
        let _fold_span = edm_trace::span("data.cv.fold");
        fit_score(&folds[i].train, &folds[i].test)
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(!scores.is_empty(), "every cross-validation fold failed to fit");
    CvScore {
        mean: edm_linalg::mean(&scores),
        std: edm_linalg::variance(&scores).sqrt(),
        folds: scores.len(),
    }
}

/// Exhaustive grid search: evaluates `fit_score` under cross-validation
/// for every candidate and returns `(best candidate, its score)` by
/// highest mean.
///
/// # Panics
///
/// Panics if `candidates` is empty or every fold of every candidate
/// fails.
///
/// # Example
///
/// ```
/// use edm_data::model_select::grid_search;
/// use edm_data::{Dataset, Target};
/// use rand::SeedableRng;
///
/// // Pick the ridge λ with the best CV score on noisy linear data.
/// let ds = Dataset::from_rows(
///     (0..30).map(|i| vec![i as f64 * 0.1]).collect(),
///     Target::Values((0..30).map(|i| 0.5 * i as f64 * 0.1 + 1.0).collect()),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (best, score) = grid_search(&ds, &[1e-6, 1.0, 1e6], 5, &mut rng, |&lam, tr, te| {
///     let m = edm_learn::linreg::Ridge::fit(&tr.rows(), tr.values().unwrap(), lam).ok()?;
///     let err: f64 = te
///         .rows()
///         .iter()
///         .zip(te.values().unwrap())
///         .map(|(x, &y)| (m.predict(x) - y).powi(2))
///         .sum();
///     Some(-err)
/// });
/// assert!(*best < 1e6, "huge λ should lose, got {best} (score {})", score.mean);
/// ```
pub fn grid_search<'c, C, R, F>(
    ds: &Dataset,
    candidates: &'c [C],
    k: usize,
    rng: &mut R,
    mut fit_score: F,
) -> (&'c C, CvScore)
where
    R: Rng + ?Sized,
    F: FnMut(&C, &Dataset, &Dataset) -> Option<f64>,
{
    assert!(!candidates.is_empty(), "grid search needs at least one candidate");
    let mut best: Option<(&C, CvScore)> = None;
    for cand in candidates {
        let score = cross_validate(ds, k, rng, |train, test| fit_score(cand, train, test));
        if best.as_ref().is_none_or(|(_, s)| score.mean > s.mean) {
            best = Some((cand, score));
        }
    }
    best.expect("non-empty candidates")
}

/// Builds a labeled dataset view for classification grid search from raw
/// parts (a common need when the data starts as `Vec<Vec<f64>>`).
///
/// # Panics
///
/// Panics on ragged rows or length mismatch.
pub fn labeled_dataset(x: Vec<Vec<f64>>, y: Vec<i32>) -> Dataset {
    Dataset::from_rows(x, Target::Labels(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_ds(n: usize) -> Dataset {
        Dataset::from_rows(
            (0..n).map(|i| vec![i as f64 * 0.2]).collect(),
            Target::Values((0..n).map(|i| 3.0 * i as f64 * 0.2 - 1.0).collect()),
        )
    }

    #[test]
    fn cv_scores_a_good_model_above_a_bad_one() {
        let ds = linear_ds(40);
        let mut rng = StdRng::seed_from_u64(1);
        let fit = |train: &Dataset, test: &Dataset| -> Option<f64> {
            let m = edm_learn::linreg::LeastSquares::fit(&train.rows(), train.values()?).ok()?;
            let err: f64 = test
                .rows()
                .iter()
                .zip(test.values()?)
                .map(|(x, &y)| (m.predict(x) - y).powi(2))
                .sum();
            Some(-err)
        };
        let good = cross_validate(&ds, 5, &mut rng, fit);
        let constant = cross_validate(&ds, 5, &mut rng, |train, test| {
            let mean = edm_linalg::mean(train.values().unwrap());
            let err: f64 = test.values().unwrap().iter().map(|&y| (y - mean).powi(2)).sum();
            Some(-err)
        });
        assert!(good.mean > constant.mean);
        assert_eq!(good.folds, 5);
    }

    #[test]
    fn grid_search_picks_matching_bandwidth() {
        use edm_kernels::RbfKernel;
        use edm_svm::{SvrParams, SvrTrainer};
        // Smooth function: a sane γ should beat an absurd one.
        let ds = Dataset::from_rows(
            (0..40).map(|i| vec![i as f64 * 0.2]).collect(),
            Target::Values((0..40).map(|i| (i as f64 * 0.2).sin()).collect()),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let gammas = [0.5, 5000.0];
        let (best, _) = grid_search(&ds, &gammas, 4, &mut rng, |&g, train, test| {
            let m = SvrTrainer::new(SvrParams::default().with_c(10.0).with_epsilon(0.01))
                .kernel(RbfKernel::new(g))
                .fit(&train.rows(), train.values()?)
                .ok()?;
            let err: f64 = test
                .rows()
                .iter()
                .zip(test.values()?)
                .map(|(x, &y)| (m.predict(x) - y).powi(2))
                .sum();
            Some(-err)
        });
        assert_eq!(*best, 0.5);
    }

    #[test]
    fn failing_folds_are_skipped() {
        let ds = linear_ds(20);
        let mut rng = StdRng::seed_from_u64(3);
        let mut calls = 0;
        let score = cross_validate(&ds, 4, &mut rng, |_, _| {
            calls += 1;
            if calls == 1 {
                None
            } else {
                Some(1.0)
            }
        });
        assert_eq!(score.folds, 3);
    }

    #[test]
    #[should_panic(expected = "every cross-validation fold failed")]
    fn all_folds_failing_panics() {
        let ds = linear_ds(10);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = cross_validate(&ds, 2, &mut rng, |_, _| None);
    }
}
