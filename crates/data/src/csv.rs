//! Minimal CSV import/export for datasets.
//!
//! Production mining data arrives as flat files of numbers (test logs,
//! STA reports, coverage dumps). This module reads and writes the simple
//! numeric dialect those tools emit: a header row of column names, then
//! one comma-separated row of numbers per sample. Quoting and embedded
//! commas are deliberately unsupported — the writers in EDA flows don't
//! produce them, and rejecting them loudly beats misparsing silently.

use std::fmt::Write as _;
use std::path::Path;

use crate::{Dataset, DatasetError, Target};

/// Errors from CSV parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    BadNumber {
        /// 1-based data row (excluding the header).
        row: usize,
        /// 0-based column.
        col: usize,
        /// The offending text.
        text: String,
    },
    /// A row had the wrong number of cells.
    RaggedRow {
        /// 1-based data row.
        row: usize,
        /// Cells found.
        found: usize,
        /// Cells expected (header width).
        expected: usize,
    },
    /// The file had no header or no data rows.
    Empty,
    /// The requested target column does not exist.
    NoSuchColumn(String),
    /// Construction failed after parsing.
    Dataset(DatasetError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::BadNumber { row, col, text } => {
                write!(f, "row {row}, column {col}: cannot parse {text:?} as a number")
            }
            CsvError::RaggedRow { row, found, expected } => {
                write!(f, "row {row} has {found} cells, expected {expected}")
            }
            CsvError::Empty => write!(f, "csv has no header or no data rows"),
            CsvError::NoSuchColumn(name) => write!(f, "no column named {name:?}"),
            CsvError::Dataset(e) => write!(f, "csv parsed but dataset invalid: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses CSV text into an unlabeled dataset (all columns are features).
///
/// # Errors
///
/// See [`CsvError`].
pub fn parse(text: &str) -> Result<Dataset, CsvError> {
    parse_with_target(text, None)
}

/// Parses CSV text, pulling `target_column` (if given) out of the
/// feature matrix as a continuous target.
///
/// # Errors
///
/// See [`CsvError`].
pub fn parse_with_target(text: &str, target_column: Option<&str>) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> =
        lines.next().ok_or(CsvError::Empty)?.split(',').map(|c| c.trim().to_string()).collect();
    let target_idx = match target_column {
        None => None,
        Some(name) => Some(
            header
                .iter()
                .position(|h| h == name)
                .ok_or_else(|| CsvError::NoSuchColumn(name.to_string()))?,
        ),
    };
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut target: Vec<f64> = Vec::new();
    for (ri, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != header.len() {
            return Err(CsvError::RaggedRow {
                row: ri + 1,
                found: cells.len(),
                expected: header.len(),
            });
        }
        let mut row = Vec::with_capacity(header.len());
        for (ci, cell) in cells.iter().enumerate() {
            let v: f64 = cell.parse().map_err(|_| CsvError::BadNumber {
                row: ri + 1,
                col: ci,
                text: cell.to_string(),
            })?;
            if Some(ci) == target_idx {
                target.push(v);
            } else {
                row.push(v);
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let names: Vec<String> = header
        .iter()
        .enumerate()
        .filter(|&(i, _)| Some(i) != target_idx)
        .map(|(_, n)| n.clone())
        .collect();
    let t = if target_idx.is_some() { Target::Values(target) } else { Target::None };
    let ds = Dataset::from_rows(rows, t).with_feature_names(names).map_err(CsvError::Dataset)?;
    Ok(ds)
}

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// See [`CsvError`].
pub fn read_file<P: AsRef<Path>>(
    path: P,
    target_column: Option<&str>,
) -> Result<Dataset, CsvError> {
    let text = std::fs::read_to_string(path)?;
    parse_with_target(&text, target_column)
}

/// Renders a dataset as CSV text (features only, plus a `target` column
/// when the dataset has continuous values or labels).
pub fn to_string(ds: &Dataset) -> String {
    let mut out = String::new();
    let mut header: Vec<String> = ds.feature_names().to_vec();
    let target_kind = match ds.target() {
        Target::Values(_) => Some("target"),
        Target::Labels(_) => Some("label"),
        _ => None,
    };
    if let Some(t) = target_kind {
        header.push(t.to_string());
    }
    let _ = writeln!(out, "{}", header.join(","));
    for i in 0..ds.n_samples() {
        let mut cells: Vec<String> = ds.sample(i).iter().map(|v| format!("{v}")).collect();
        match ds.target() {
            Target::Values(v) => cells.push(format!("{}", v[i])),
            Target::Labels(l) => cells.push(format!("{}", l[i])),
            _ => {}
        }
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Writes a dataset to a CSV file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_file<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), CsvError> {
    std::fs::write(path, to_string(ds))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let ds = parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(ds.n_samples(), 2);
        assert_eq!(ds.feature_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(ds.sample(1), &[3.0, 4.0]);
        assert_eq!(ds.target(), &Target::None);
    }

    #[test]
    fn parse_with_target_column() {
        let ds = parse_with_target("x,fmax,y\n1,10,2\n3,20,4\n", Some("fmax")).unwrap();
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.values().unwrap(), &[10.0, 20.0]);
        assert_eq!(ds.feature_names(), &["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn errors_are_located() {
        match parse("a,b\n1,zap\n") {
            Err(CsvError::BadNumber { row: 1, col: 1, text }) => assert_eq!(text, "zap"),
            other => panic!("expected BadNumber, got {other:?}"),
        }
        assert!(matches!(
            parse("a,b\n1,2,3\n"),
            Err(CsvError::RaggedRow { row: 1, found: 3, expected: 2 })
        ));
        assert!(matches!(parse(""), Err(CsvError::Empty)));
        assert!(matches!(parse_with_target("a\n1\n", Some("zz")), Err(CsvError::NoSuchColumn(_))));
    }

    #[test]
    fn round_trip_through_text() {
        let ds = Dataset::from_rows(
            vec![vec![1.5, -2.0], vec![0.0, 7.25]],
            Target::Values(vec![10.0, 20.0]),
        )
        .with_feature_names(vec!["u", "v"])
        .unwrap();
        let text = to_string(&ds);
        let back = parse_with_target(&text, Some("target")).unwrap();
        assert_eq!(back.n_samples(), 2);
        assert_eq!(back.sample(0), ds.sample(0));
        assert_eq!(back.values().unwrap(), ds.values().unwrap());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("edm_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        let ds = Dataset::unlabeled(vec![vec![1.0], vec![2.0]]);
        write_file(&ds, &path).unwrap();
        let back = read_file(&path, None).unwrap();
        assert_eq!(back.n_samples(), 2);
        std::fs::remove_file(path).ok();
    }
}
