//! Feature selection.
//!
//! Under extreme imbalance the paper reframes classification as feature
//! selection (§2.4, references \[17\]\[18\]): with only a handful of
//! customer returns against millions of passing parts, the usable output
//! is *which tests matter*, not a decision boundary. The rankers here
//! feed the customer-return flow in `edm-core` (Fig. 11, which projects
//! returns into a selected 3-test space).

use crate::Dataset;

/// A scored feature: column index plus ranking score (higher = better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredFeature {
    /// Column index into the dataset.
    pub index: usize,
    /// Ranking score; semantics depend on the ranker.
    pub score: f64,
}

fn rank(mut scored: Vec<ScoredFeature>) -> Vec<ScoredFeature> {
    scored.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("finite feature scores").then(a.index.cmp(&b.index))
    });
    scored
}

/// Ranks features by variance (descending). A cheap first-pass filter:
/// constant features carry no information.
pub fn by_variance(ds: &Dataset) -> Vec<ScoredFeature> {
    let scored = (0..ds.n_features())
        .map(|j| ScoredFeature { index: j, score: edm_linalg::variance(&ds.x().col(j)) })
        .collect();
    rank(scored)
}

/// Ranks features by `|Pearson correlation|` with a continuous target.
///
/// # Panics
///
/// Panics if the dataset target is not [`crate::Target::Values`].
pub fn by_target_correlation(ds: &Dataset) -> Vec<ScoredFeature> {
    let y = ds.values().expect("correlation ranking requires a continuous target");
    let scored = (0..ds.n_features())
        .map(|j| ScoredFeature {
            index: j,
            score: edm_linalg::stats::pearson(&ds.x().col(j), y).abs(),
        })
        .collect();
    rank(scored)
}

/// Ranks features by the Fisher score
/// `Σ_c n_c (μ_c - μ)² / Σ_c n_c σ_c²` — between-class separation over
/// within-class spread. The workhorse for imbalanced screening problems.
///
/// Features with zero within-class variance but non-zero separation get
/// `f64::INFINITY` (they separate perfectly); fully constant features get
/// `0.0`.
///
/// # Panics
///
/// Panics if the dataset target is not [`crate::Target::Labels`].
pub fn by_fisher_score(ds: &Dataset) -> Vec<ScoredFeature> {
    let labels = ds.labels().expect("fisher score requires a labeled dataset");
    let classes = ds.classes();
    let scored = (0..ds.n_features())
        .map(|j| {
            let col = ds.x().col(j);
            let overall_mean = edm_linalg::mean(&col);
            let mut between = 0.0;
            let mut within = 0.0;
            for &c in &classes {
                let vals: Vec<f64> =
                    col.iter().zip(labels).filter(|&(_, &l)| l == c).map(|(&v, _)| v).collect();
                let n_c = vals.len() as f64;
                let mu_c = edm_linalg::mean(&vals);
                between += n_c * (mu_c - overall_mean) * (mu_c - overall_mean);
                within += n_c * edm_linalg::variance(&vals);
            }
            let score = if within < 1e-300 {
                if between < 1e-300 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                between / within
            };
            ScoredFeature { index: j, score }
        })
        .collect();
    rank(scored)
}

/// Keeps the `k` best-ranked features of `ranking`, returning their
/// column indices in ranking order (truncated to the feature count).
pub fn top_k(ranking: &[ScoredFeature], k: usize) -> Vec<usize> {
    ranking.iter().take(k).map(|s| s.index).collect()
}

/// Drops near-duplicate features: walks the ranking best-first and
/// discards any feature whose |correlation| with an already-kept feature
/// exceeds `max_abs_corr`.
///
/// This is the mechanism behind the paper's Fig. 11 usage model: pick a
/// *small, non-redundant* test subspace in which a return stands out.
pub fn decorrelate(ds: &Dataset, ranking: &[ScoredFeature], max_abs_corr: f64) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::new();
    let mut kept_cols: Vec<Vec<f64>> = Vec::new();
    for s in ranking {
        let col = ds.x().col(s.index);
        let redundant =
            kept_cols.iter().any(|kc| edm_linalg::stats::pearson(kc, &col).abs() > max_abs_corr);
        if !redundant {
            kept.push(s.index);
            kept_cols.push(col);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;

    #[test]
    fn variance_ranking_prefers_spread() {
        let ds = Dataset::unlabeled(vec![
            vec![0.0, 5.0, 1.0],
            vec![0.0, -5.0, 2.0],
            vec![0.0, 5.0, 3.0],
            vec![0.0, -5.0, 4.0],
        ]);
        let r = by_variance(&ds);
        assert_eq!(r[0].index, 1);
        assert_eq!(r[2].index, 0);
        assert_eq!(r[2].score, 0.0);
    }

    #[test]
    fn correlation_ranking_finds_linear_feature() {
        let ds = Dataset::from_rows(
            vec![vec![1.0, 0.3], vec![2.0, -0.8], vec![3.0, 0.1], vec![4.0, 0.9]],
            Target::Values(vec![2.0, 4.0, 6.0, 8.0]),
        );
        let r = by_target_correlation(&ds);
        assert_eq!(r[0].index, 0);
        assert!((r[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fisher_score_separable_beats_noise() {
        // Feature 0 separates classes perfectly; feature 1 is identical noise.
        let ds = Dataset::from_rows(
            vec![vec![0.0, 1.0], vec![0.1, 2.0], vec![5.0, 1.0], vec![5.1, 2.0]],
            Target::Labels(vec![0, 0, 1, 1]),
        );
        let r = by_fisher_score(&ds);
        assert_eq!(r[0].index, 0);
        assert!(r[0].score > r[1].score);
    }

    #[test]
    fn fisher_score_degenerate_cases() {
        // Constant feature → 0; zero-within-variance separator → ∞.
        let ds = Dataset::from_rows(
            vec![vec![7.0, 0.0], vec![7.0, 0.0], vec![7.0, 1.0], vec![7.0, 1.0]],
            Target::Labels(vec![0, 0, 1, 1]),
        );
        let r = by_fisher_score(&ds);
        assert_eq!(r[0].index, 1);
        assert!(r[0].score.is_infinite());
        assert_eq!(r[1].score, 0.0);
    }

    #[test]
    fn decorrelate_drops_duplicates() {
        // f1 = 2*f0 (perfectly correlated); f2 independent.
        let ds = Dataset::from_rows(
            vec![
                vec![1.0, 2.0, 5.0],
                vec![2.0, 4.0, -3.0],
                vec![3.0, 6.0, 4.0],
                vec![4.0, 8.0, -1.0],
            ],
            Target::Values(vec![1.0, 2.0, 3.0, 4.0]),
        );
        let ranking = by_target_correlation(&ds);
        let kept = decorrelate(&ds, &ranking, 0.95);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&2));
        // exactly one of the correlated pair survives
        assert!(kept.contains(&0) ^ kept.contains(&1));
    }

    #[test]
    fn top_k_truncates() {
        let ranking =
            vec![ScoredFeature { index: 2, score: 3.0 }, ScoredFeature { index: 0, score: 1.0 }];
        assert_eq!(top_k(&ranking, 1), vec![2]);
        assert_eq!(top_k(&ranking, 10), vec![2, 0]);
    }
}
