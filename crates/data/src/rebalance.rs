//! Rebalancing for imbalanced classification datasets.
//!
//! Implements the techniques of the paper's reference \[15\] (Batista,
//! *A Study of the Behavior of Several Methods for Balancing Machine
//! Learning Training Data*): random oversampling, random undersampling,
//! and SMOTE synthetic-minority oversampling.
//!
//! The paper's caveat (§2.4) applies: when the imbalance is extreme
//! (customer returns vs. millions of passing parts) rebalancing does not
//! help — use [`crate::feature_select`] + novelty formulations instead.
//! [`Dataset::imbalance_ratio`] lets callers make that routing decision.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Dataset, Target};

/// Randomly duplicates minority-class samples until every class has as
/// many samples as the largest class.
///
/// # Panics
///
/// Panics if the dataset is not labeled or has no samples.
pub fn oversample<R: Rng + ?Sized>(ds: &Dataset, rng: &mut R) -> Dataset {
    let labels = ds.labels().expect("oversample requires a labeled dataset");
    assert!(!labels.is_empty(), "cannot rebalance an empty dataset");
    let max = ds.class_counts().iter().map(|&(_, c)| c).max().unwrap_or(0);
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    for (class, count) in ds.class_counts() {
        let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        for _ in count..max {
            idx.push(*members.choose(rng).expect("non-empty class"));
        }
    }
    ds.select(&idx)
}

/// Randomly drops majority-class samples until every class has as few
/// samples as the smallest class.
///
/// # Panics
///
/// Panics if the dataset is not labeled or has no samples.
pub fn undersample<R: Rng + ?Sized>(ds: &Dataset, rng: &mut R) -> Dataset {
    let labels = ds.labels().expect("undersample requires a labeled dataset");
    assert!(!labels.is_empty(), "cannot rebalance an empty dataset");
    let min = ds.class_counts().iter().map(|&(_, c)| c).min().unwrap_or(0);
    let mut idx = Vec::new();
    for (class, _) in ds.class_counts() {
        let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        members.shuffle(rng);
        idx.extend_from_slice(&members[..min]);
    }
    idx.sort_unstable();
    ds.select(&idx)
}

/// SMOTE: synthesizes minority samples by interpolating between a
/// minority sample and one of its `k` nearest minority neighbors, until
/// every class reaches the majority count.
///
/// Classes with a single sample fall back to duplication (no neighbor to
/// interpolate toward).
///
/// # Panics
///
/// Panics if the dataset is not labeled, has no samples, or `k == 0`.
pub fn smote<R: Rng + ?Sized>(ds: &Dataset, k: usize, rng: &mut R) -> Dataset {
    assert!(k > 0, "smote needs k >= 1");
    let labels = ds.labels().expect("smote requires a labeled dataset");
    assert!(!labels.is_empty(), "cannot rebalance an empty dataset");
    let max = ds.class_counts().iter().map(|&(_, c)| c).max().unwrap_or(0);

    let mut rows = ds.rows();
    let mut out_labels = labels.to_vec();
    for (class, count) in ds.class_counts() {
        if count == max {
            continue;
        }
        let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        // Pre-compute each member's k nearest same-class neighbors.
        let neighbors: Vec<Vec<usize>> = members
            .iter()
            .map(|&i| {
                let mut others: Vec<(f64, usize)> = members
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| (edm_linalg::sq_dist(ds.sample(i), ds.sample(j)), j))
                    .collect();
                others.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distance"));
                others.into_iter().take(k).map(|(_, j)| j).collect()
            })
            .collect();
        for _ in count..max {
            let pick = rng.gen_range(0..members.len());
            let base = members[pick];
            let synthetic = if neighbors[pick].is_empty() {
                ds.sample(base).to_vec()
            } else {
                let nb = *neighbors[pick].choose(rng).expect("non-empty neighbor list");
                let gap: f64 = rng.gen();
                ds.sample(base)
                    .iter()
                    .zip(ds.sample(nb))
                    .map(|(&a, &b)| a + gap * (b - a))
                    .collect()
            };
            rows.push(synthetic);
            out_labels.push(class);
        }
    }
    Dataset::from_rows(rows, Target::Labels(out_labels))
        .with_feature_names(ds.feature_names().to_vec())
        .expect("name count preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn imbalanced() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            rows.push(vec![i as f64, 0.0]);
            labels.push(0);
        }
        for i in 0..3 {
            rows.push(vec![100.0 + i as f64, 1.0]);
            labels.push(1);
        }
        Dataset::from_rows(rows, Target::Labels(labels))
    }

    #[test]
    fn oversample_equalizes_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = oversample(&imbalanced(), &mut rng);
        assert_eq!(b.class_counts(), vec![(0, 12), (1, 12)]);
        assert!((b.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undersample_equalizes_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = undersample(&imbalanced(), &mut rng);
        assert_eq!(b.class_counts(), vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn smote_synthesizes_within_minority_hull() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = smote(&imbalanced(), 2, &mut rng);
        assert_eq!(b.class_counts(), vec![(0, 12), (1, 12)]);
        // All synthesized minority samples interpolate between minority
        // points: first feature stays within [100, 102], second is 1.0.
        let labels = b.labels().unwrap();
        for (i, &label) in labels.iter().enumerate().take(b.n_samples()) {
            if label == 1 {
                let s = b.sample(i);
                assert!((100.0..=102.0).contains(&s[0]), "escaped hull: {}", s[0]);
                assert_eq!(s[1], 1.0);
            }
        }
    }

    #[test]
    fn smote_single_sample_class_duplicates() {
        let ds = Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![9.0]],
            Target::Labels(vec![0, 0, 0, 1]),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let b = smote(&ds, 3, &mut rng);
        assert_eq!(b.class_counts(), vec![(0, 3), (1, 3)]);
        let labels = b.labels().unwrap();
        for (i, &label) in labels.iter().enumerate().take(b.n_samples()) {
            if label == 1 {
                assert_eq!(b.sample(i), &[9.0]);
            }
        }
    }

    #[test]
    fn oversample_preserves_original_samples() {
        let ds = imbalanced();
        let mut rng = StdRng::seed_from_u64(3);
        let b = oversample(&ds, &mut rng);
        // The first n rows are the originals in order.
        for i in 0..ds.n_samples() {
            assert_eq!(b.sample(i), ds.sample(i));
        }
    }
}
