//! Train/test and cross-validation splitting.
//!
//! All splits are seeded and deterministic: reproducibility is a hard
//! requirement for the experiment harnesses in `edm-bench`.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::Dataset;

/// A train/test pair produced by a split.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training partition.
    pub train: Dataset,
    /// Held-out partition.
    pub test: Dataset,
}

/// Shuffles and splits a dataset, putting `test_fraction` of the samples
/// in the test partition (at least one sample in each partition when
/// `n >= 2`).
///
/// # Panics
///
/// Panics if `test_fraction` is not within `(0, 1)` or the dataset has
/// fewer than two samples.
pub fn train_test_split<R: Rng + ?Sized>(
    ds: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> TrainTest {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1), got {test_fraction}"
    );
    let n = ds.n_samples();
    assert!(n >= 2, "need at least two samples to split, got {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = ((n as f64 * test_fraction).round() as usize).clamp(1, n - 1);
    let (test_idx, train_idx) = idx.split_at(n_test);
    TrainTest { train: ds.select(train_idx), test: ds.select(test_idx) }
}

/// K-fold cross-validation splitter.
///
/// # Example
///
/// ```
/// use edm_data::{Dataset, KFold, Target};
/// use rand::SeedableRng;
///
/// let ds = Dataset::from_rows(
///     (0..10).map(|i| vec![i as f64]).collect(),
///     Target::Values((0..10).map(|i| i as f64).collect()),
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let folds = KFold::new(5).split(&ds, &mut rng);
/// assert_eq!(folds.len(), 5);
/// for f in &folds {
///     assert_eq!(f.test.n_samples(), 2);
///     assert_eq!(f.train.n_samples(), 8);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    k: usize,
}

impl KFold {
    /// Creates a splitter with `k` folds.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-fold needs k >= 2, got {k}");
        KFold { k }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Produces the `k` train/test pairs. Every sample appears in exactly
    /// one test partition.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer samples than folds.
    pub fn split<R: Rng + ?Sized>(&self, ds: &Dataset, rng: &mut R) -> Vec<TrainTest> {
        let n = ds.n_samples();
        assert!(n >= self.k, "cannot make {} folds from {n} samples", self.k);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let mut folds = Vec::with_capacity(self.k);
        for f in 0..self.k {
            // Fold boundaries spread the remainder across the first folds.
            let start = f * n / self.k;
            let end = (f + 1) * n / self.k;
            let test_idx = &idx[start..end];
            let train_idx: Vec<usize> = idx[..start].iter().chain(&idx[end..]).copied().collect();
            folds.push(TrainTest { train: ds.select(&train_idx), test: ds.select(test_idx) });
        }
        folds
    }
}

/// A label-stratified train/test splitter: each class contributes the
/// same fraction to the test partition (up to rounding), so rare classes
/// are not lost — important under the imbalance regimes of paper §2.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratifiedSplit {
    test_fraction: f64,
}

impl StratifiedSplit {
    /// Creates a splitter that holds out `test_fraction` of every class.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not within `(0, 1)`.
    pub fn new(test_fraction: f64) -> Self {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1), got {test_fraction}"
        );
        StratifiedSplit { test_fraction }
    }

    /// Splits, preserving class proportions. Classes with a single sample
    /// go entirely to the training partition.
    ///
    /// # Panics
    ///
    /// Panics if the dataset target is not [`crate::Target::Labels`].
    pub fn split<R: Rng + ?Sized>(&self, ds: &Dataset, rng: &mut R) -> TrainTest {
        let labels = ds.labels().expect("stratified split requires a labeled dataset");
        let classes = ds.classes();
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for c in classes {
            let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
            members.shuffle(rng);
            if members.len() < 2 {
                train_idx.extend(members);
                continue;
            }
            let n_test = ((members.len() as f64 * self.test_fraction).round() as usize)
                .clamp(1, members.len() - 1);
            test_idx.extend_from_slice(&members[..n_test]);
            train_idx.extend_from_slice(&members[n_test..]);
        }
        TrainTest { train: ds.select(&train_idx), test: ds.select(&test_idx) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled(n0: usize, n1: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n0 {
            rows.push(vec![i as f64]);
            labels.push(0);
        }
        for i in 0..n1 {
            rows.push(vec![100.0 + i as f64]);
            labels.push(1);
        }
        Dataset::from_rows(rows, Target::Labels(labels))
    }

    #[test]
    fn split_partitions_everything() {
        let ds = labeled(8, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let tt = train_test_split(&ds, 0.3, &mut rng);
        assert_eq!(tt.train.n_samples() + tt.test.n_samples(), 10);
        assert_eq!(tt.test.n_samples(), 3);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = labeled(20, 5);
        let a = train_test_split(&ds, 0.2, &mut StdRng::seed_from_u64(9));
        let b = train_test_split(&ds, 0.2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.test.x(), b.test.x());
    }

    #[test]
    fn kfold_covers_each_sample_once() {
        let ds = labeled(7, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let folds = KFold::new(4).split(&ds, &mut rng);
        let total_test: usize = folds.iter().map(|f| f.test.n_samples()).sum();
        assert_eq!(total_test, 13);
        for f in &folds {
            assert_eq!(f.train.n_samples() + f.test.n_samples(), 13);
        }
    }

    #[test]
    fn stratified_keeps_minority_in_both_sides() {
        let ds = labeled(90, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let tt = StratifiedSplit::new(0.2).split(&ds, &mut rng);
        let count = |d: &Dataset, c: i32| d.labels().unwrap().iter().filter(|&&l| l == c).count();
        assert_eq!(count(&tt.test, 1), 2);
        assert_eq!(count(&tt.train, 1), 8);
        assert_eq!(count(&tt.test, 0), 18);
    }

    #[test]
    fn stratified_single_sample_class_stays_in_train() {
        let ds = labeled(5, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let tt = StratifiedSplit::new(0.5).split(&ds, &mut rng);
        assert!(tt.train.labels().unwrap().contains(&1));
        assert!(!tt.test.labels().unwrap().contains(&1));
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn invalid_fraction_rejected() {
        let ds = labeled(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = train_test_split(&ds, 1.5, &mut rng);
    }
}
