//! Feature scaling.
//!
//! Distance- and kernel-based learners (kNN, SVM/RBF, k-means) are
//! sensitive to feature scale; the scalers here follow the usual
//! fit/transform/inverse pattern and are serializable so a deployed model
//! ships with its preprocessing.

use edm_linalg::{stats, Matrix};
use serde::{Deserialize, Serialize};

use crate::Dataset;

/// Z-score scaler: each feature is mapped to zero mean and unit variance.
///
/// Constant features (std = 0) pass through centered but unscaled.
///
/// # Example
///
/// ```
/// use edm_data::{Dataset, StandardScaler, Target};
///
/// let ds = Dataset::unlabeled(vec![vec![0.0], vec![10.0]]);
/// let scaler = StandardScaler::fit(&ds);
/// let t = scaler.transform(&ds);
/// assert!((t.sample(0)[0] + t.sample(1)[0]).abs() < 1e-12); // symmetric around 0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-feature mean and standard deviation from `ds`.
    pub fn fit(ds: &Dataset) -> Self {
        StandardScaler { means: stats::column_means(ds.x()), stds: stats::column_stds(ds.x()) }
    }

    /// Per-feature means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations learned at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the scaling to a dataset (target and names untouched).
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted data.
    pub fn transform(&self, ds: &Dataset) -> Dataset {
        let rows: Vec<Vec<f64>> = ds.x().iter_rows().map(|r| self.transform_sample(r)).collect();
        let mut out =
            Dataset::new(Matrix::from_rows(&rows), ds.target().clone()).expect("shape preserved");
        out = out.with_feature_names(ds.feature_names().to_vec()).expect("name count preserved");
        out
    }

    /// Scales a single sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len()` differs from the fitted feature count.
    pub fn transform_sample(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.means.len(), "feature count mismatch");
        sample
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| if s > 0.0 { (v - m) / s } else { v - m })
            .collect()
    }

    /// Inverts the scaling on a single sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len()` differs from the fitted feature count.
    pub fn inverse_sample(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.means.len(), "feature count mismatch");
        sample
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| if s > 0.0 { v * s + m } else { v + m })
            .collect()
    }
}

/// Min–max scaler mapping each feature into `[0, 1]`.
///
/// Constant features map to `0.0`. Useful for the histogram features
/// behind the histogram-intersection kernel, which expects non-negative
/// inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-feature min and max from `ds`.
    pub fn fit(ds: &Dataset) -> Self {
        let d = ds.n_features();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in ds.x().iter_rows() {
            for ((mn, mx), &v) in mins.iter_mut().zip(&mut maxs).zip(row) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        if ds.n_samples() == 0 {
            mins.fill(0.0);
            maxs.fill(0.0);
        }
        MinMaxScaler { mins, maxs }
    }

    /// Per-feature minima learned at fit time.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-feature maxima learned at fit time.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Applies the scaling to a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted data.
    pub fn transform(&self, ds: &Dataset) -> Dataset {
        let rows: Vec<Vec<f64>> = ds.x().iter_rows().map(|r| self.transform_sample(r)).collect();
        Dataset::new(Matrix::from_rows(&rows), ds.target().clone())
            .expect("shape preserved")
            .with_feature_names(ds.feature_names().to_vec())
            .expect("name count preserved")
    }

    /// Scales a single sample into `[0, 1]` per feature (values outside
    /// the fitted range extrapolate outside `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `sample.len()` differs from the fitted feature count.
    pub fn transform_sample(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.mins.len(), "feature count mismatch");
        sample
            .iter()
            .zip(self.mins.iter().zip(&self.maxs))
            .map(|(&v, (&mn, &mx))| {
                let w = mx - mn;
                if w > 0.0 {
                    (v - mn) / w
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;

    fn ds() -> Dataset {
        Dataset::from_rows(
            vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]],
            Target::Labels(vec![0, 1, 0]),
        )
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std() {
        let d = ds();
        let sc = StandardScaler::fit(&d);
        let t = sc.transform(&d);
        let col0: Vec<f64> = (0..3).map(|i| t.sample(i)[0]).collect();
        assert!(edm_linalg::mean(&col0).abs() < 1e-12);
        assert!((edm_linalg::variance(&col0) - 1.0).abs() < 1e-12);
        // constant column centered to zero, not scaled
        for i in 0..3 {
            assert_eq!(t.sample(i)[1], 0.0);
        }
    }

    #[test]
    fn standard_scaler_round_trip() {
        let d = ds();
        let sc = StandardScaler::fit(&d);
        let sample = [2.5, 5.0];
        let back = sc.inverse_sample(&sc.transform_sample(&sample));
        assert!((back[0] - 2.5).abs() < 1e-12);
        assert!((back[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let d = ds();
        let sc = MinMaxScaler::fit(&d);
        let t = sc.transform(&d);
        assert_eq!(t.sample(0)[0], 0.0);
        assert_eq!(t.sample(1)[0], 0.5);
        assert_eq!(t.sample(2)[0], 1.0);
        assert_eq!(t.sample(0)[1], 0.0); // constant column
    }

    #[test]
    fn scalers_preserve_target_and_names() {
        let d = ds().with_feature_names(vec!["vdd", "freq"]).unwrap();
        let t = StandardScaler::fit(&d).transform(&d);
        assert_eq!(t.labels(), d.labels());
        assert_eq!(t.feature_names(), d.feature_names());
    }
}
