//! Evaluation metrics for classification, regression, and ranking.
//!
//! The paper's application results are reported as coverage counts,
//! accuracy against a golden simulator (Fig. 9), and escape counts
//! (Fig. 12); these metrics back all of those plus the standard ML
//! diagnostics used in unit tests.

use std::collections::BTreeMap;

/// A confusion matrix over an arbitrary label alphabet.
///
/// Rows are true labels, columns are predictions, both in ascending label
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    labels: Vec<i32>,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from paired truth/prediction label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_pairs(truth: &[i32], predicted: &[i32]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "paired labels must have equal length");
        let mut labels: Vec<i32> = truth.iter().chain(predicted).copied().collect();
        labels.sort_unstable();
        labels.dedup();
        let index: BTreeMap<i32, usize> = labels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let n = labels.len();
        let mut counts = vec![vec![0usize; n]; n];
        for (&t, &p) in truth.iter().zip(predicted) {
            counts[index[&t]][index[&p]] += 1;
        }
        ConfusionMatrix { labels, counts }
    }

    /// The label alphabet, ascending.
    pub fn labels(&self) -> &[i32] {
        &self.labels
    }

    /// Count of samples with true label `t` predicted as `p`; `0` for
    /// labels never seen.
    pub fn count(&self, t: i32, p: i32) -> usize {
        let ti = self.labels.iter().position(|&l| l == t);
        let pi = self.labels.iter().position(|&l| l == p);
        match (ti, pi) {
            (Some(ti), Some(pi)) => self.counts[ti][pi],
            _ => 0,
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision for one class: `tp / (tp + fp)`; `0.0` when undefined.
    pub fn precision(&self, class: i32) -> f64 {
        let Some(ci) = self.labels.iter().position(|&l| l == class) else {
            return 0.0;
        };
        let tp = self.counts[ci][ci];
        let predicted: usize = (0..self.labels.len()).map(|r| self.counts[r][ci]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class: `tp / (tp + fn)`; `0.0` when undefined.
    pub fn recall(&self, class: i32) -> f64 {
        let Some(ci) = self.labels.iter().position(|&l| l == class) else {
            return 0.0;
        };
        let tp = self.counts[ci][ci];
        let actual: usize = self.counts[ci].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score for one class; `0.0` when undefined.
    pub fn f1(&self, class: i32) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Mean of per-class recalls — robust to imbalance (paper §2.4).
    pub fn balanced_accuracy(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.labels.iter().map(|&l| self.recall(l)).sum();
        sum / self.labels.len() as f64
    }
}

/// Fraction of positions where the labels agree.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn accuracy(truth: &[i32], predicted: &[i32]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "paired labels must have equal length");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Area under the ROC curve for binary scores.
///
/// `truth` uses `1` for positive and any other value for negative;
/// `score` is "higher = more positive". Computed via the rank-sum
/// (Mann–Whitney) formulation with midrank tie handling. Returns `0.5`
/// when either class is empty.
///
/// # Panics
///
/// Panics if the vectors have different lengths or a score is NaN.
pub fn roc_auc(truth: &[i32], score: &[f64]) -> f64 {
    assert_eq!(truth.len(), score.len(), "paired scores must have equal length");
    let n_pos = truth.iter().filter(|&&t| t == 1).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Midranks of the scores.
    let mut order: Vec<usize> = (0..score.len()).collect();
    order.sort_by(|&a, &b| score[a].partial_cmp(&score[b]).expect("NaN score"));
    let mut ranks = vec![0.0; score.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && score[order[j + 1]] == score[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        truth.iter().zip(&ranks).filter(|(&t, _)| t == 1).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn mse(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "paired values must have equal length");
    assert!(!truth.is_empty(), "mse of empty vectors is undefined");
    truth.iter().zip(predicted).map(|(t, p)| (t - p) * (t - p)).sum::<f64>() / truth.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// See [`mse`].
pub fn rmse(truth: &[f64], predicted: &[f64]) -> f64 {
    mse(truth, predicted).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn mae(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "paired values must have equal length");
    assert!(!truth.is_empty(), "mae of empty vectors is undefined");
    truth.iter().zip(predicted).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Coefficient of determination R².
///
/// Returns `0.0` when the truth is constant (so a constant predictor
/// scores 0, not NaN).
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn r2(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "paired values must have equal length");
    assert!(!truth.is_empty(), "r2 of empty vectors is undefined");
    let mean = edm_linalg::mean(truth);
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-300 {
        return 0.0;
    }
    let ss_res: f64 = truth.iter().zip(predicted).map(|(t, p)| (t - p) * (t - p)).sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let truth = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_pairs(&truth, &pred);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(2, 0), 1);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-12);
        assert!((accuracy(&truth, &pred) - cm.accuracy()).abs() < 1e-15);
    }

    #[test]
    fn precision_recall_f1() {
        let truth = [1, 1, 1, 0, 0];
        let pred = [1, 1, 0, 1, 0];
        let cm = ConfusionMatrix::from_pairs(&truth, &pred);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < 1e-12);
        // unknown class is total but zero
        assert_eq!(cm.precision(42), 0.0);
    }

    #[test]
    fn balanced_accuracy_resists_imbalance() {
        // Predict-all-majority on a 9:1 dataset: plain accuracy 0.9,
        // balanced accuracy 0.5.
        let truth: Vec<i32> = std::iter::repeat_n(0, 9).chain(std::iter::once(1)).collect();
        let pred = vec![0; 10];
        let cm = ConfusionMatrix::from_pairs(&truth, &pred);
        assert!((cm.accuracy() - 0.9).abs() < 1e-12);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let truth = [0, 0, 1, 1];
        assert!((roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]) - 0.0).abs() < 1e-12);
        assert!((roc_auc(&truth, &[0.5, 0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
        // single-class degenerates to 0.5
        assert_eq!(roc_auc(&[1, 1], &[0.3, 0.4]), 0.5);
    }

    #[test]
    fn regression_metrics() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&t, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (4.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        assert!(r2(&t, &p) < 1.0);
        // constant truth -> 0
        assert_eq!(r2(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
    }
}
