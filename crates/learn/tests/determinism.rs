//! Regression tests pinning cross-process determinism of Apriori rule
//! mining (the fixed unordered-iteration site in `rules/apriori.rs`).
//!
//! The level-wise join keeps each level sorted by iterating a
//! `BTreeMap` of item counts; the subset prune then relies on
//! `binary_search` into that level. With a `HashMap` the first level
//! comes out in hash-seeded order, the prune misfires, and the mined
//! itemsets and rules change between runs. The test mines a fixed
//! transaction set in two child processes launched with different
//! `RUST_HASH_SEED` environments and asserts identical output.

use edm_learn::rules::apriori::{mine, AprioriParams};

const CHILD_VAR: &str = "EDM_DETERMINISM_CHILD";

fn fnv1a(fp: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(fp, |fp, &b| (fp ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

fn transactions() -> Vec<Vec<u32>> {
    // 160 transactions over 31 items with layered co-occurrence so the
    // mining reaches 4-itemsets and a large, order-sensitive L1.
    (0..160u32)
        .map(|i| {
            let mut t = vec![i % 31, (i * 7) % 31, (i * 13) % 31, (i * 29 + 3) % 31];
            if i % 3 == 0 {
                t.extend([1, 2, 4]);
            }
            if i % 5 == 0 {
                t.extend([2, 6, 8]);
            }
            t
        })
        .collect()
}

/// Full mining output — itemsets, supports, rule floats — folded
/// order-sensitively into one digest.
fn fingerprint() -> u64 {
    let params = AprioriParams { min_support: 0.05, min_confidence: 0.4, max_len: 4 };
    let (frequent, rules) = mine(&transactions(), params).expect("mining succeeds");
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for f in &frequent {
        for &i in &f.items {
            fp = fnv1a(fp, &i.to_le_bytes());
        }
        fp = fnv1a(fp, &(f.support_count as u64).to_le_bytes());
    }
    for r in &rules {
        for &i in r.antecedent.iter().chain(&r.consequent) {
            fp = fnv1a(fp, &i.to_le_bytes());
        }
        for v in [r.support, r.confidence, r.lift] {
            fp = fnv1a(fp, &v.to_bits().to_le_bytes());
        }
    }
    fp
}

fn child_fingerprint(test_name: &str, seed: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([test_name, "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_VAR, "1")
        .env("RUST_HASH_SEED", seed)
        .output()
        .expect("spawn child test process");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // With --nocapture the marker shares a line with libtest's own
    // "test ... ok" output, so search within lines.
    stdout
        .split("fingerprint=")
        .nth(1)
        .map(|rest| rest.chars().take_while(char::is_ascii_hexdigit).collect::<String>())
        .unwrap_or_else(|| panic!("no fingerprint in child output: {stdout}"))
}

#[test]
fn apriori_output_bitwise_stable_across_processes() {
    if std::env::var(CHILD_VAR).is_ok() {
        println!("fingerprint={:016x}", fingerprint());
        return;
    }
    let first = child_fingerprint("apriori_output_bitwise_stable_across_processes", "1");
    let second = child_fingerprint("apriori_output_bitwise_stable_across_processes", "2");
    assert_eq!(first, second, "apriori output varies across processes");
    assert_eq!(first, format!("{:016x}", fingerprint()), "parent disagrees with children");
}

/// Mining the same transactions twice in one process is identical,
/// including rule tie-breaking.
#[test]
fn apriori_repeatable_in_process() {
    let params = AprioriParams { min_support: 0.05, min_confidence: 0.4, max_len: 4 };
    let first = mine(&transactions(), params).expect("mining succeeds");
    let again = mine(&transactions(), params).expect("mining succeeds");
    assert_eq!(first, again);
}
