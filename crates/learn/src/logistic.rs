//! L2-regularized logistic regression trained with Newton/IRLS.
//!
//! A model-based learner (paper §2.1) whose outputs are calibrated
//! probabilities — useful when a flow needs a ranked "how sure are we"
//! rather than a hard label.

use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

/// Hyperparameters for logistic-regression training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticParams {
    /// L2 penalty λ on the weights (intercept unpenalized).
    pub lambda: f64,
    /// Convergence threshold on the max absolute weight update.
    pub tol: f64,
    /// Newton iteration cap.
    pub max_iter: usize,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams { lambda: 1e-4, tol: 1e-8, max_iter: 100 }
    }
}

/// A trained binary logistic model `P(y=1|x) = σ(wᵀx + b)`.
///
/// # Example
///
/// ```
/// use edm_learn::logistic::{LogisticParams, LogisticRegression};
///
/// let x = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
/// let y = vec![0, 0, 1, 1];
/// let m = LogisticRegression::fit(&x, &y, LogisticParams::default())?;
/// assert!(m.predict_proba(&[0.0]) < 0.5);
/// assert!(m.predict_proba(&[1.0]) > 0.5);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    coef: Vec<f64>,
    intercept: f64,
    iterations: usize,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fits on labels in `{0, 1}`.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent input or labels
    /// outside `{0, 1}`; [`LearnError::Numeric`] if the Newton system is
    /// singular (raise `lambda`).
    pub fn fit(x: &[Vec<f64>], y: &[i32], params: LogisticParams) -> Result<Self, LearnError> {
        let d = check_xy(x, y.len())?;
        if y.iter().any(|&l| l != 0 && l != 1) {
            return Err(LearnError::InvalidInput("labels must be 0 or 1".into()));
        }
        if !(params.lambda >= 0.0) {
            return Err(LearnError::InvalidParameter {
                name: "lambda",
                value: params.lambda,
                constraint: "must be non-negative",
            });
        }
        let design = Matrix::from_rows(x).with_bias_column();
        let n = x.len();
        let dim = d + 1;
        let mut w = vec![0.0; dim];
        let mut iterations = 0;
        for _ in 0..params.max_iter {
            iterations += 1;
            // p_i = sigma(x_i . w); gradient and Hessian of the penalized
            // negative log-likelihood.
            let z = design.mat_vec(&w);
            let p: Vec<f64> = z.iter().map(|&v| sigmoid(v)).collect();
            let mut grad = vec![0.0; dim];
            for i in 0..n {
                let err = p[i] - y[i] as f64;
                for (g, &xi) in grad.iter_mut().zip(design.row(i)) {
                    *g += err * xi;
                }
            }
            for j in 1..dim {
                grad[j] += params.lambda * w[j];
            }
            let mut hess = Matrix::zeros(dim, dim);
            for i in 0..n {
                let s = (p[i] * (1.0 - p[i])).max(1e-10);
                let row = design.row(i);
                for a in 0..dim {
                    let ra = row[a] * s;
                    if ra == 0.0 {
                        continue;
                    }
                    for b in a..dim {
                        hess[(a, b)] += ra * row[b];
                    }
                }
            }
            for a in 0..dim {
                for b in 0..a {
                    hess[(a, b)] = hess[(b, a)];
                }
            }
            for j in 1..dim {
                hess[(j, j)] += params.lambda;
            }
            hess[(0, 0)] += 1e-10; // keep the intercept row non-singular
            let step = hess.cholesky().map_err(LearnError::from)?.solve(&grad);
            let mut max_step = 0.0_f64;
            for (wj, sj) in w.iter_mut().zip(&step) {
                *wj -= sj;
                max_step = max_step.max(sj.abs());
            }
            if max_step < params.tol {
                break;
            }
        }
        Ok(LogisticRegression { intercept: w[0], coef: w[1..].to_vec(), iterations })
    }

    /// `P(y = 1 | x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.intercept + edm_linalg::dot(&self.coef, x))
    }

    /// Hard label at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> i32 {
        i32::from(self.predict_proba(x) >= 0.5)
    }

    /// The learned weights.
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Newton iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_data_classified() {
        let x: Vec<Vec<f64>> =
            (0..20).map(|i| vec![i as f64 * 0.1 + if i >= 10 { 2.0 } else { 0.0 }]).collect();
        let y: Vec<i32> = (0..20).map(|i| i32::from(i >= 10)).collect();
        let m = LogisticRegression::fit(&x, &y, LogisticParams::default()).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
    }

    #[test]
    fn probabilities_are_monotone_along_weight_direction() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 1, 1];
        let m = LogisticRegression::fit(&x, &y, LogisticParams::default()).unwrap();
        let p: Vec<f64> = (0..7).map(|i| m.predict_proba(&[i as f64 * 0.5])).collect();
        for w in p.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn regularization_bounds_weights_on_separable_data() {
        // Unregularized logistic diverges on separable data; λ keeps it finite.
        let x = vec![vec![-1.0], vec![1.0]];
        let y = vec![0, 1];
        let m =
            LogisticRegression::fit(&x, &y, LogisticParams { lambda: 1.0, ..Default::default() })
                .unwrap();
        assert!(m.coefficients()[0].is_finite());
        assert!(m.coefficients()[0].abs() < 10.0);
    }

    #[test]
    fn bad_labels_rejected() {
        assert!(matches!(
            LogisticRegression::fit(&[vec![0.0]], &[2], LogisticParams::default()),
            Err(LearnError::InvalidInput(_))
        ));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }
}
