//! Random forests (paper ref \[8\], Breiman 2001): bagged CART trees
//! with per-tree feature subsampling, majority-vote prediction.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tree::{DecisionTreeClassifier, TreeParams};
use crate::{error::check_xy, LearnError};

/// Hyperparameters for random-forest training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeParams,
    /// Features sampled per tree; `None` = ⌈√d⌉ (Breiman's default).
    pub max_features: Option<usize>,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 50, tree: TreeParams::default(), max_features: None }
    }
}

/// A trained random-forest classifier.
///
/// # Example
///
/// ```
/// use edm_learn::forest::{ForestParams, RandomForestClassifier};
/// use rand::SeedableRng;
///
/// let x = vec![vec![0.0, 1.0], vec![0.2, 0.9], vec![5.0, 4.0], vec![5.2, 4.2]];
/// let y = vec![0, 0, 1, 1];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let m = RandomForestClassifier::fit(&x, &y, ForestParams::default(), &mut rng)?;
/// assert_eq!(m.predict(&[0.1, 1.0]), 0);
/// assert_eq!(m.predict(&[5.1, 4.1]), 1);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTreeClassifier>,
    n_features: usize,
}

impl RandomForestClassifier {
    /// Trains `n_trees` trees, each on a bootstrap resample and a random
    /// feature subset.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidParameter`] if `n_trees == 0`;
    /// [`LearnError::InvalidInput`] on inconsistent input.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[i32],
        params: ForestParams,
        rng: &mut R,
    ) -> Result<Self, LearnError> {
        let _span = edm_trace::span("learn.forest.fit");
        if params.n_trees == 0 {
            return Err(LearnError::InvalidParameter {
                name: "n_trees",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let d = check_xy(x, y.len())?;
        let n = x.len();
        let m_features =
            params.max_features.unwrap_or_else(|| (d as f64).sqrt().ceil() as usize).clamp(1, d);
        // Draw every tree's randomness up front, in tree order, so the
        // forest is a pure function of the caller's RNG stream no matter
        // how many worker threads train the (deterministic) trees below.
        let mut all_features: Vec<usize> = (0..d).collect();
        let draws: Vec<(Vec<usize>, Vec<usize>)> = (0..params.n_trees)
            .map(|_| {
                let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                all_features.shuffle(rng);
                (indices, all_features[..m_features].to_vec())
            })
            .collect();
        let trees = edm_par::map_indexed(draws.len(), |t| {
            // One span per tree: the `learn.forest.tree` aggregate's
            // count/min/max show per-tree training time spread.
            let _tree_span = edm_trace::span("learn.forest.tree");
            let (indices, feats) = &draws[t];
            let bx: Vec<Vec<f64>> = indices.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<i32> = indices.iter().map(|&i| y[i]).collect();
            DecisionTreeClassifier::fit_on_features(&bx, &by, params.tree, Some(feats))
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(RandomForestClassifier { trees, n_features: d })
    }

    /// Reassembles a forest from persisted trees — the inverse of
    /// [`RandomForestClassifier::trees`], used by `edm::persist`.
    pub fn from_parts(trees: Vec<DecisionTreeClassifier>, n_features: usize) -> Self {
        assert!(!trees.is_empty(), "a forest needs at least one tree");
        RandomForestClassifier { trees, n_features }
    }

    /// The fitted trees, in training order.
    pub fn trees(&self) -> &[DecisionTreeClassifier] {
        &self.trees
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Dimensionality of the training samples.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Majority votes for a batch of samples (parallel; bitwise
    /// identical to mapping [`RandomForestClassifier::predict`]).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<i32> {
        edm_par::map_indexed(xs.len(), |i| self.predict(&xs[i]))
    }

    /// Majority vote over the trees (ties break toward smaller labels).
    pub fn predict(&self, x: &[f64]) -> i32 {
        let mut votes: Vec<(i32, usize)> = Vec::new();
        for t in &self.trees {
            let l = t.predict(x);
            match votes.iter_mut().find(|(vl, _)| *vl == l) {
                Some((_, c)) => *c += 1,
                None => votes.push((l, 1)),
            }
        }
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes[0].0
    }

    /// Fraction of trees voting for each label.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<(i32, f64)> {
        let mut votes: Vec<(i32, usize)> = Vec::new();
        for t in &self.trees {
            let l = t.predict(x);
            match votes.iter_mut().find(|(vl, _)| *vl == l) {
                Some((_, c)) => *c += 1,
                None => votes.push((l, 1)),
            }
        }
        votes.sort_by_key(|&(l, _)| l);
        votes.into_iter().map(|(l, c)| (l, c as f64 / self.trees.len() as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..40 {
            x.push(vec![rng.gen::<f64>(), rng.gen::<f64>()]);
            y.push(0);
            x.push(vec![rng.gen::<f64>() + 2.0, rng.gen::<f64>() + 2.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn forest_classifies_blobs() {
        let (x, y) = noisy_blobs(1);
        let mut rng = StdRng::seed_from_u64(2);
        let m = RandomForestClassifier::fit(&x, &y, ForestParams::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| m.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    fn forest_beats_stump_on_xor() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let y = vec![0, 0, 1, 1];
        let mut rng = StdRng::seed_from_u64(3);
        let m = RandomForestClassifier::fit(
            &x,
            &y,
            ForestParams { n_trees: 100, max_features: Some(2), ..Default::default() },
            &mut rng,
        )
        .unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| m.predict(xi) == yi).count();
        assert!(correct >= 3, "forest got only {correct}/4 on xor");
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = noisy_blobs(4);
        let mut rng = StdRng::seed_from_u64(5);
        let m = RandomForestClassifier::fit(&x, &y, ForestParams::default(), &mut rng).unwrap();
        let p = m.predict_proba(&[1.0, 1.0]);
        let total: f64 = p.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_blobs(6);
        let m1 = RandomForestClassifier::fit(
            &x,
            &y,
            ForestParams::default(),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let m2 = RandomForestClassifier::fit(
            &x,
            &y,
            ForestParams::default(),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        for probe in [[0.5, 0.5], [2.5, 2.5], [1.5, 1.5]] {
            assert_eq!(m1.predict(&probe), m2.predict(&probe));
        }
    }

    #[test]
    fn zero_trees_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            RandomForestClassifier::fit(
                &[vec![0.0]],
                &[0],
                ForestParams { n_trees: 0, ..Default::default() },
                &mut rng
            ),
            Err(LearnError::InvalidParameter { name: "n_trees", .. })
        ));
    }
}
