//! Gaussian-process regression (paper ref \[19\]) — Bayesian inference
//! over functions, with predictive mean *and* variance. One of the five
//! Fmax-regressor families of paper ref \[20\]; the predictive variance
//! is what makes it attractive for silicon applications, where an
//! engineer needs to know *how much to trust* a prediction.

use edm_kernels::{gram_matrix, gram_row, Kernel, RbfKernel};
use edm_linalg::Cholesky;
use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

/// A trained GP regressor with kernel `k` and noise variance `σ²`:
/// posterior mean `k(x)ᵀ (K + σ²I)⁻¹ y`, variance
/// `k(x,x) − k(x)ᵀ (K + σ²I)⁻¹ k(x)`.
///
/// # Example
///
/// ```
/// use edm_kernels::RbfKernel;
/// use edm_learn::gp::GpRegressor;
///
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.3]).collect();
/// let y: Vec<f64> = x.iter().map(|v| v[0].sin()).collect();
/// let gp = GpRegressor::fit(&x, &y, RbfKernel::new(1.0), 1e-6)?;
/// let (mean, var) = gp.predict_with_variance(&[1.5]);
/// assert!((mean - 1.5f64.sin()).abs() < 0.05);
/// assert!(var >= 0.0);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpRegressor<K = RbfKernel> {
    kernel: K,
    x: Vec<Vec<f64>>,
    /// `(K + σ²I)⁻¹ (y − ȳ)`.
    alpha: Vec<f64>,
    chol: Cholesky,
    y_mean: f64,
    noise: f64,
}

impl<K: Kernel<[f64]> + Clone> GpRegressor<K> {
    /// Fits the GP posterior.
    ///
    /// The target mean is subtracted before conditioning (a constant mean
    /// function) and restored at prediction time.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidParameter`] if `noise <= 0`;
    /// [`LearnError::InvalidInput`] on inconsistent input;
    /// [`LearnError::Numeric`] if `K + σ²I` is not positive definite
    /// (raise `noise`).
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: K, noise: f64) -> Result<Self, LearnError> {
        if !(noise > 0.0) {
            return Err(LearnError::InvalidParameter {
                name: "noise",
                value: noise,
                constraint: "must be positive",
            });
        }
        check_xy(x, y.len())?;
        let y_mean = edm_linalg::mean(y);
        let yc: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();
        let mut gram = gram_matrix(&kernel, x);
        for i in 0..gram.rows() {
            gram[(i, i)] += noise;
        }
        let chol = gram.cholesky().map_err(LearnError::from)?;
        let alpha = chol.solve(&yc);
        Ok(GpRegressor { kernel, x: x.to_vec(), alpha, chol, y_mean, noise })
    }

    /// Posterior mean at `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let k = gram_row(&self.kernel, x, &self.x);
        self.y_mean + edm_linalg::dot(&k, &self.alpha)
    }

    /// Posterior `(mean, variance)` at `x`; the variance is clamped at 0
    /// against roundoff.
    pub fn predict_with_variance(&self, x: &[f64]) -> (f64, f64) {
        let k = gram_row(&self.kernel, x, &self.x);
        let mean = self.y_mean + edm_linalg::dot(&k, &self.alpha);
        // v = L⁻¹ k; var = k(x,x) − ‖v‖².
        let v = self.chol.solve_lower(&k);
        let kxx = self.kernel.eval(x, x);
        let var = (kxx - edm_linalg::dot(&v, &v)).max(0.0);
        (mean, var)
    }

    /// Posterior means for a batch of samples (parallel; bitwise
    /// identical to mapping [`GpRegressor::predict`] over `xs`).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        edm_par::map_indexed(xs.len(), |i| self.predict(&xs[i]))
    }

    /// The noise variance σ² used at fit time.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Dimensionality of the training samples.
    pub fn n_features(&self) -> usize {
        self.x[0].len()
    }

    /// Number of training samples conditioned on.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// Negative log marginal likelihood of the training data — the
    /// model-selection criterion for kernel hyperparameters.
    pub fn neg_log_marginal_likelihood(&self, y: &[f64]) -> f64 {
        let n = self.x.len() as f64;
        let yc: Vec<f64> = y.iter().map(|&v| v - self.y_mean).collect();
        0.5 * edm_linalg::dot(&yc, &self.alpha)
            + 0.5 * self.chol.log_det()
            + 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }
}

impl<K> GpRegressor<K> {
    /// Reassembles a regressor from its persisted parts — the inverse
    /// of the accessors below, used by `edm::persist`. The Cholesky
    /// factor is stored verbatim, so the rebuilt posterior is bitwise
    /// identical to the fitted one.
    pub fn from_parts(
        kernel: K,
        x: Vec<Vec<f64>>,
        alpha: Vec<f64>,
        chol: Cholesky,
        y_mean: f64,
        noise: f64,
    ) -> Self {
        assert_eq!(x.len(), alpha.len(), "one alpha per training sample");
        assert_eq!(chol.dim(), x.len(), "Cholesky factor must match the training set");
        GpRegressor { kernel, x, alpha, chol, y_mean, noise }
    }

    /// The kernel the posterior was conditioned with.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The training samples conditioned on.
    pub fn training_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The precomputed weights `(K + σ²I)⁻¹ (y − ȳ)`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The Cholesky factor of `K + σ²I`.
    pub fn cholesky(&self) -> &Cholesky {
        &self.chol
    }

    /// The constant mean subtracted from the targets at fit time.
    pub fn y_mean(&self) -> f64 {
        self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points_at_low_noise() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0] * 0.1).collect();
        let gp = GpRegressor::fit(&x, &y, RbfKernel::new(1.0), 1e-8).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert!((gp.predict(xi) - yi).abs() < 1e-3);
        }
    }

    #[test]
    fn variance_small_at_data_large_far_away() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.2]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0]).collect();
        let gp = GpRegressor::fit(&x, &y, RbfKernel::new(2.0), 1e-6).unwrap();
        let (_, var_at_data) = gp.predict_with_variance(&[0.4]);
        let (_, var_far) = gp.predict_with_variance(&[50.0]);
        assert!(var_at_data < 1e-3);
        assert!(var_far > 0.9, "prior variance should dominate far away: {var_far}");
    }

    #[test]
    fn reverts_to_mean_far_from_data() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1]).collect();
        let y = vec![3.0; 10];
        let gp = GpRegressor::fit(&x, &y, RbfKernel::new(1.0), 1e-6).unwrap();
        assert!((gp.predict(&[100.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn higher_noise_smooths() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.3]).collect();
        // alternating spikes
        let y: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let tight = GpRegressor::fit(&x, &y, RbfKernel::new(10.0), 1e-8).unwrap();
        let smooth = GpRegressor::fit(&x, &y, RbfKernel::new(10.0), 10.0).unwrap();
        // the smooth model stays near the mean (0), the tight one follows spikes
        assert!(tight.predict(&x[4]).abs() > 0.5);
        assert!(smooth.predict(&x[4]).abs() < 0.3);
    }

    #[test]
    fn invalid_noise_rejected() {
        assert!(matches!(
            GpRegressor::fit(&[vec![0.0]], &[0.0], RbfKernel::new(1.0), 0.0),
            Err(LearnError::InvalidParameter { name: "noise", .. })
        ));
    }

    #[test]
    fn nlml_prefers_matching_bandwidth() {
        // Data drawn from a smooth function: a wildly narrow kernel
        // should score a worse marginal likelihood than a sensible one.
        let x: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64 * 0.2]).collect();
        let y: Vec<f64> = x.iter().map(|v| (0.5 * v[0]).sin()).collect();
        let good = GpRegressor::fit(&x, &y, RbfKernel::new(0.5), 1e-4).unwrap();
        let bad = GpRegressor::fit(&x, &y, RbfKernel::new(500.0), 1e-4).unwrap();
        assert!(
            good.neg_log_marginal_likelihood(&y) < bad.neg_log_marginal_likelihood(&y),
            "NLML should favor the matched bandwidth"
        );
    }
}
