//! Least-squares and ridge regression — the "LSF" and "regularized LSF"
//! of the paper's Fmax-prediction study (ref \[20\]).

use edm_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

/// Ordinary least squares `min_w ‖Xw + b − y‖²`, solved by Householder QR
/// for numerical stability.
///
/// # Example
///
/// ```
/// use edm_learn::linreg::LeastSquares;
///
/// // y = 1 + 2x
/// let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = x.iter().map(|v| 1.0 + 2.0 * v[0]).collect();
/// let m = LeastSquares::fit(&x, &y)?;
/// assert!((m.intercept() - 1.0).abs() < 1e-9);
/// assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeastSquares {
    coef: Vec<f64>,
    intercept: f64,
}

impl LeastSquares {
    /// Fits the model.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on empty/ragged/mismatched input.
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, LearnError> {
        check_xy(x, y.len())?;
        let design = Matrix::from_rows(x).with_bias_column();
        let w = design.qr().solve_least_squares(y);
        Ok(LeastSquares { intercept: w[0], coef: w[1..].to_vec() })
    }

    /// Reassembles a model from persisted weights — the inverse of the
    /// accessors below, used by `edm::persist`.
    pub fn from_parts(coef: Vec<f64>, intercept: f64) -> Self {
        LeastSquares { coef, intercept }
    }

    /// The learned weights (one per feature).
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts `wᵀx + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + edm_linalg::dot(&self.coef, x)
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Ridge regression `min_w ‖Xw + b − y‖² + λ‖w‖²` (intercept not
/// penalized), solved via the regularized normal equations with
/// Cholesky.
///
/// This is regularization in its plainest form — the `E + λC` objective
/// the paper's §2.3 uses to explain how overfitting is controlled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ridge {
    coef: Vec<f64>,
    intercept: f64,
    lambda: f64,
}

impl Ridge {
    /// Fits with regularization strength `lambda`.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidParameter`] if `lambda < 0`;
    /// [`LearnError::InvalidInput`] on inconsistent input;
    /// [`LearnError::Numeric`] if the normal matrix is singular (only
    /// possible at `lambda == 0`).
    pub fn fit(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Self, LearnError> {
        if !(lambda >= 0.0) {
            return Err(LearnError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be non-negative",
            });
        }
        let d = check_xy(x, y.len())?;
        let n = x.len() as f64;
        // Center to avoid penalizing the intercept.
        let xm = Matrix::from_rows(x);
        let means = edm_linalg::stats::column_means(&xm);
        let y_mean = edm_linalg::mean(y);
        let xc_rows: Vec<Vec<f64>> =
            x.iter().map(|r| r.iter().zip(&means).map(|(&v, &m)| v - m).collect()).collect();
        let xc = Matrix::from_rows(&xc_rows);
        let yc: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();
        // (XᵀX + λI) w = Xᵀ y
        let mut a = xc.gram();
        for i in 0..d {
            a[(i, i)] += lambda;
        }
        // tiny jitter keeps Cholesky happy for rank-deficient X at λ=0
        if lambda == 0.0 {
            for i in 0..d {
                a[(i, i)] += 1e-12 * n.max(1.0);
            }
        }
        let rhs = xc.vec_mat(&yc);
        let chol = a.cholesky().map_err(LearnError::from)?;
        let coef = chol.solve(&rhs);
        let intercept = y_mean - edm_linalg::dot(&coef, &means);
        Ok(Ridge { coef, intercept, lambda })
    }

    /// Reassembles a model from persisted weights — the inverse of the
    /// accessors below, used by `edm::persist`.
    pub fn from_parts(coef: Vec<f64>, intercept: f64, lambda: f64) -> Self {
        Ridge { coef, intercept, lambda }
    }

    /// The learned weights.
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The regularization strength used at fit time.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Predicts `wᵀx + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + edm_linalg::dot(&self.coef, x)
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Expands samples with polynomial powers of each feature:
/// `x → (x₁, x₁², …, x₁ᵈ, x₂, …)` (no cross terms).
///
/// The model-complexity axis of the Fig. 5 overfitting experiment —
/// degree sweeps trade training error against validation error.
///
/// # Panics
///
/// Panics if `degree == 0`.
pub fn polynomial_features(x: &[Vec<f64>], degree: u32) -> Vec<Vec<f64>> {
    assert!(degree >= 1, "polynomial degree must be >= 1");
    x.iter()
        .map(|row| {
            let mut out = Vec::with_capacity(row.len() * degree as usize);
            for &v in row {
                let mut p = v;
                for _ in 0..degree {
                    out.push(p);
                    p *= v;
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_plane() {
        // y = 2 + 3a - b
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 5) as f64, (i / 5) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 + 3.0 * r[0] - r[1]).collect();
        let m = LeastSquares::fit(&x, &y).unwrap();
        assert!((m.intercept() - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((m.coefficients()[1] + 1.0).abs() < 1e-9);
        assert!((m.predict(&[10.0, 10.0]) - 22.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0]).collect();
        let none = Ridge::fit(&x, &y, 0.0).unwrap();
        let strong = Ridge::fit(&x, &y, 1e4).unwrap();
        assert!((none.coefficients()[0] - 2.0).abs() < 1e-6);
        assert!(strong.coefficients()[0].abs() < none.coefficients()[0].abs());
        assert!(strong.coefficients()[0] > 0.0);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // Second feature duplicates the first: OLS normal equations are
        // singular, ridge is fine.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let m = Ridge::fit(&x, &y, 1.0).unwrap();
        // weight mass split between the twins
        let total = m.coefficients()[0] + m.coefficients()[1];
        assert!((total - 4.0).abs() < 0.1);
        assert!((m.coefficients()[0] - m.coefficients()[1]).abs() < 1e-9);
    }

    #[test]
    fn polynomial_features_expand() {
        let f = polynomial_features(&[vec![2.0, 3.0]], 3);
        assert_eq!(f[0], vec![2.0, 4.0, 8.0, 3.0, 9.0, 27.0]);
    }

    #[test]
    fn poly_ols_fits_quadratic() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.2 - 2.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 1.0 - r[0] + 0.5 * r[0] * r[0]).collect();
        let xp = polynomial_features(&x, 2);
        let m = LeastSquares::fit(&xp, &y).unwrap();
        let probe = polynomial_features(&[vec![1.3]], 2);
        let want = 1.0 - 1.3 + 0.5 * 1.3 * 1.3;
        assert!((m.predict(&probe[0]) - want).abs() < 1e-9);
    }

    #[test]
    fn negative_lambda_rejected() {
        assert!(matches!(
            Ridge::fit(&[vec![0.0]], &[0.0], -1.0),
            Err(LearnError::InvalidParameter { name: "lambda", .. })
        ));
    }
}
