//! A small multi-layer perceptron — the paper's canonical example of a
//! *predefined, complexity-limited* model structure (§2.3's first
//! overfitting-avoidance idea): fix the architecture, then minimize
//! training error.
//!
//! One or more tanh hidden layers, linear output, trained by
//! full-batch gradient descent with momentum. Sized for the workloads in
//! this workspace (hundreds to thousands of samples, tens of features) —
//! not a deep-learning framework.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

/// Hyperparameters for MLP training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden-layer widths, e.g. `vec![16, 8]`.
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![16],
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 500,
            weight_decay: 1e-4,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// `out x in` weight matrix, row-major.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out.push(edm_linalg::dot(row, x) + self.b[o]);
        }
    }
}

/// A trained MLP regressor (single output, tanh hidden units).
///
/// For binary classification, train on targets `±1` and threshold the
/// output at zero.
///
/// # Example
///
/// ```
/// use edm_learn::mlp::{MlpParams, MlpRegressor};
/// use rand::SeedableRng;
///
/// // XOR — impossible for a linear model, easy for one hidden layer.
/// let x = vec![vec![0.,0.], vec![1.,1.], vec![0.,1.], vec![1.,0.]];
/// let y = vec![-1.0, -1.0, 1.0, 1.0];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let params = MlpParams { hidden: vec![8], epochs: 2000, ..Default::default() };
/// let m = MlpRegressor::fit(&x, &y, params, &mut rng)?;
/// assert!(m.predict(&[0.0, 1.0]) > 0.0);
/// assert!(m.predict(&[1.0, 1.0]) < 0.0);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpRegressor {
    layers: Vec<Layer>,
    final_loss: f64,
}

impl MlpRegressor {
    /// Trains with full-batch gradient descent.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent input;
    /// [`LearnError::InvalidParameter`] on an empty hidden spec, zero
    /// width, or out-of-range momentum.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        params: MlpParams,
        rng: &mut R,
    ) -> Result<Self, LearnError> {
        let d = check_xy(x, y.len())?;
        if params.hidden.is_empty() || params.hidden.contains(&0) {
            return Err(LearnError::InvalidParameter {
                name: "hidden",
                value: 0.0,
                constraint: "must list at least one non-empty layer",
            });
        }
        if !(0.0..1.0).contains(&params.momentum) {
            return Err(LearnError::InvalidParameter {
                name: "momentum",
                value: params.momentum,
                constraint: "must be in [0, 1)",
            });
        }
        // Build layers: d -> hidden... -> 1, Xavier-ish init.
        let mut sizes = vec![d];
        sizes.extend_from_slice(&params.hidden);
        sizes.push(1);
        let mut layers = Vec::new();
        for win in sizes.windows(2) {
            let (n_in, n_out) = (win[0], win[1]);
            let scale = (2.0 / (n_in + n_out) as f64).sqrt();
            let w: Vec<f64> =
                (0..n_in * n_out).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale).collect();
            layers.push(Layer { w, b: vec![0.0; n_out], n_in, n_out });
        }
        let n_layers = layers.len();
        let mut vel_w: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut vel_b: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        let n = x.len() as f64;
        let mut final_loss = f64::INFINITY;
        for _ in 0..params.epochs {
            // Accumulate full-batch gradients.
            let mut grad_w: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
            let mut grad_b: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
            let mut loss = 0.0;
            for (xi, &yi) in x.iter().zip(y) {
                // Forward, caching activations (post-nonlinearity).
                let mut acts: Vec<Vec<f64>> = vec![xi.clone()];
                let mut pre = Vec::new();
                for (li, layer) in layers.iter().enumerate() {
                    layer.forward(acts.last().expect("non-empty"), &mut pre);
                    let act = if li + 1 < n_layers {
                        pre.iter().map(|&v| v.tanh()).collect()
                    } else {
                        pre.clone()
                    };
                    acts.push(act);
                }
                let out = acts.last().expect("output layer")[0];
                let err = out - yi;
                loss += 0.5 * err * err;
                // Backward.
                let mut delta = vec![err]; // linear output layer
                for li in (0..n_layers).rev() {
                    let input = &acts[li];
                    let layer = &layers[li];
                    for o in 0..layer.n_out {
                        grad_b[li][o] += delta[o];
                        let grow = &mut grad_w[li][o * layer.n_in..(o + 1) * layer.n_in];
                        for (g, &inp) in grow.iter_mut().zip(input) {
                            *g += delta[o] * inp;
                        }
                    }
                    if li > 0 {
                        // delta for previous layer, through tanh'.
                        let mut prev = vec![0.0; layer.n_in];
                        for o in 0..layer.n_out {
                            let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                            for (p, &wv) in prev.iter_mut().zip(row) {
                                *p += delta[o] * wv;
                            }
                        }
                        for (p, &a) in prev.iter_mut().zip(&acts[li]) {
                            *p *= 1.0 - a * a;
                        }
                        delta = prev;
                    }
                }
            }
            final_loss = loss / n;
            // Parameter update with momentum and weight decay.
            for li in 0..n_layers {
                for (idx, g) in grad_w[li].iter().enumerate() {
                    let decayed = g / n + params.weight_decay * layers[li].w[idx];
                    vel_w[li][idx] =
                        params.momentum * vel_w[li][idx] - params.learning_rate * decayed;
                    layers[li].w[idx] += vel_w[li][idx];
                }
                for (idx, g) in grad_b[li].iter().enumerate() {
                    vel_b[li][idx] =
                        params.momentum * vel_b[li][idx] - params.learning_rate * (g / n);
                    layers[li].b[idx] += vel_b[li][idx];
                }
            }
        }
        Ok(MlpRegressor { layers, final_loss })
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let n_layers = self.layers.len();
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if li + 1 < n_layers {
                for v in &mut next {
                    *v = v.tanh();
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[0]
    }

    /// Final mean training loss (½ MSE) after the last epoch.
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fits_linear_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1 - 1.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.8 * v[0] + 0.1).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let m =
            MlpRegressor::fit(&x, &y, MlpParams { epochs: 1000, ..Default::default() }, &mut rng)
                .unwrap();
        for probe in [-0.8, 0.0, 0.7] {
            assert!((m.predict(&[probe]) - (0.8 * probe + 0.1)).abs() < 0.1);
        }
    }

    #[test]
    fn solves_xor() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(42);
        let m = MlpRegressor::fit(
            &x,
            &y,
            MlpParams { hidden: vec![8], epochs: 3000, ..Default::default() },
            &mut rng,
        )
        .unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi).signum(), yi.signum(), "failed at {xi:?}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = x.iter().map(|v| (2.0 * v[0]).sin()).collect();
        let mut rng1 = StdRng::seed_from_u64(9);
        let short =
            MlpRegressor::fit(&x, &y, MlpParams { epochs: 10, ..Default::default() }, &mut rng1)
                .unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let long =
            MlpRegressor::fit(&x, &y, MlpParams { epochs: 2000, ..Default::default() }, &mut rng2)
                .unwrap();
        assert!(long.final_loss() < short.final_loss());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            MlpRegressor::fit(
                &[vec![0.0]],
                &[0.0],
                MlpParams { hidden: vec![], ..Default::default() },
                &mut rng
            ),
            Err(LearnError::InvalidParameter { name: "hidden", .. })
        ));
        assert!(matches!(
            MlpRegressor::fit(
                &[vec![0.0]],
                &[0.0],
                MlpParams { momentum: 1.5, ..Default::default() },
                &mut rng
            ),
            Err(LearnError::InvalidParameter { name: "momentum", .. })
        ));
    }
}
