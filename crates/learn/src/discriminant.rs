//! Linear and quadratic discriminant analysis — the paper's third
//! "basic idea" (§2.1): estimate each class as a multivariate normal
//! `N(μ_c, Σ_c)` and decide by the log-density ratio, the paper's Eq. 1:
//!
//! ```text
//! D(x) = log [ P(x | N(μ₁, Σ₁)) / P(x | N(μ₂, Σ₂)) ]
//! ```
//!
//! LDA pools one covariance across classes (linear boundary); QDA keeps a
//! covariance per class (quadratic boundary).

use edm_linalg::{Cholesky, Matrix};
use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassDensity {
    label: i32,
    log_prior: f64,
    mean: Vec<f64>,
    /// Cholesky factor of this class's covariance (shared for LDA).
    chol: Cholesky,
    log_det: f64,
}

/// Which covariance structure to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Covariance {
    /// One pooled covariance for all classes (LDA, linear boundaries).
    Pooled,
    /// A covariance per class (QDA, quadratic boundaries).
    PerClass,
}

/// A trained discriminant-analysis classifier (LDA or QDA).
///
/// # Example
///
/// ```
/// use edm_learn::discriminant::{Covariance, DiscriminantAnalysis};
///
/// let x = vec![vec![0.0, 0.0], vec![0.4, 0.3], vec![3.0, 3.0], vec![3.3, 2.8]];
/// let y = vec![0, 0, 1, 1];
/// let m = DiscriminantAnalysis::fit(&x, &y, Covariance::Pooled)?;
/// assert_eq!(m.predict(&[0.2, 0.2]), 0);
/// assert_eq!(m.predict(&[3.1, 3.1]), 1);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscriminantAnalysis {
    classes: Vec<ClassDensity>,
    covariance: Covariance,
}

impl DiscriminantAnalysis {
    /// Fits class densities.
    ///
    /// Covariances get a small diagonal ridge (scaled to the data) so
    /// near-degenerate classes stay factorizable.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent input or fewer than
    /// two classes; [`LearnError::Numeric`] if a covariance cannot be
    /// factorized even with the ridge.
    pub fn fit(x: &[Vec<f64>], y: &[i32], covariance: Covariance) -> Result<Self, LearnError> {
        let d = check_xy(x, y.len())?;
        let n = x.len();
        let mut labels: Vec<i32> = y.to_vec();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() < 2 {
            return Err(LearnError::InvalidInput(
                "discriminant analysis requires at least two classes".into(),
            ));
        }

        // Per-class means and scatter matrices.
        let mut stats = Vec::new();
        for &label in &labels {
            let rows: Vec<&Vec<f64>> =
                x.iter().zip(y).filter(|&(_, &l)| l == label).map(|(r, _)| r).collect();
            let m = rows.len();
            let mut mean = vec![0.0; d];
            for r in &rows {
                for (mu, &v) in mean.iter_mut().zip(r.iter()) {
                    *mu += v;
                }
            }
            for mu in &mut mean {
                *mu /= m as f64;
            }
            let mut scatter = Matrix::zeros(d, d);
            for r in &rows {
                let dev: Vec<f64> = r.iter().zip(&mean).map(|(&v, &mu)| v - mu).collect();
                for a in 0..d {
                    if dev[a] == 0.0 {
                        continue;
                    }
                    for b in a..d {
                        scatter[(a, b)] += dev[a] * dev[b];
                    }
                }
            }
            for a in 0..d {
                for b in 0..a {
                    scatter[(a, b)] = scatter[(b, a)];
                }
            }
            stats.push((label, m, mean, scatter));
        }

        let ridge_scale = {
            let mut max_diag = 0.0_f64;
            for (_, m, _, scatter) in &stats {
                for i in 0..d {
                    max_diag = max_diag.max(scatter[(i, i)] / (*m as f64));
                }
            }
            (1e-8 * max_diag).max(1e-10)
        };

        let factor = |cov: &Matrix| -> Result<(Cholesky, f64), LearnError> {
            let mut c = cov.clone();
            for i in 0..d {
                c[(i, i)] += ridge_scale;
            }
            let chol = c.cholesky().map_err(LearnError::from)?;
            let log_det = chol.log_det();
            Ok((chol, log_det))
        };

        let mut classes = Vec::new();
        match covariance {
            Covariance::Pooled => {
                let mut pooled = Matrix::zeros(d, d);
                for (_, _, _, scatter) in &stats {
                    pooled = &pooled + scatter;
                }
                let denom = (n - labels.len()).max(1) as f64;
                pooled = pooled.scaled(1.0 / denom);
                let (chol, log_det) = factor(&pooled)?;
                for (label, m, mean, _) in stats {
                    classes.push(ClassDensity {
                        label,
                        log_prior: (m as f64 / n as f64).ln(),
                        mean,
                        chol: chol.clone(),
                        log_det,
                    });
                }
            }
            Covariance::PerClass => {
                for (label, m, mean, scatter) in stats {
                    let cov = scatter.scaled(1.0 / (m.max(2) - 1) as f64);
                    let (chol, log_det) = factor(&cov)?;
                    classes.push(ClassDensity {
                        label,
                        log_prior: (m as f64 / n as f64).ln(),
                        mean,
                        chol,
                        log_det,
                    });
                }
            }
        }
        Ok(DiscriminantAnalysis { classes, covariance })
    }

    /// The covariance structure used at fit time.
    pub fn covariance(&self) -> Covariance {
        self.covariance
    }

    /// Log posterior (up to a shared constant) per class, ascending by
    /// label: `log P(class) − ½ log|Σ| − ½ (x−μ)ᵀ Σ⁻¹ (x−μ)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn scores(&self, x: &[f64]) -> Vec<(i32, f64)> {
        self.classes
            .iter()
            .map(|c| {
                assert_eq!(x.len(), c.mean.len(), "feature count mismatch");
                let dev: Vec<f64> = x.iter().zip(&c.mean).map(|(&v, &mu)| v - mu).collect();
                // Mahalanobis via Cholesky: ‖L⁻¹ dev‖².
                let z = c.chol.solve_lower(&dev);
                let maha: f64 = z.iter().map(|v| v * v).sum();
                (c.label, c.log_prior - 0.5 * c.log_det - 0.5 * maha)
            })
            .collect()
    }

    /// The paper's Eq. 1 for a binary problem: the log-density ratio of
    /// the two classes (positive favors the *smaller* label, listed
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if the model has more than two classes.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(self.classes.len(), 2, "Eq. 1 decision is binary-only");
        let s = self.scores(x);
        s[0].1 - s[1].1
    }

    /// Predicts the maximum-score label.
    pub fn predict(&self, x: &[f64]) -> i32 {
        self.scores(x)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .expect("at least one class")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<i32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            let t = (i % 4) as f64 * 0.2;
            let u = (i / 4) as f64 * 0.2;
            x.push(vec![t, u]);
            y.push(0);
            x.push(vec![t + 4.0, u + 4.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn lda_separates_blobs() {
        let (x, y) = blobs();
        let m = DiscriminantAnalysis::fit(&x, &y, Covariance::Pooled).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
    }

    #[test]
    fn qda_handles_unequal_spreads() {
        // Class 0 tight at origin, class 1 wide around it: QDA assigns a
        // distant point to the wide class even though means coincide-ish.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let a = i as f64 * std::f64::consts::TAU / 12.0;
            x.push(vec![0.1 * a.cos(), 0.1 * a.sin()]);
            y.push(0);
            x.push(vec![5.0 * a.cos(), 5.0 * a.sin()]);
            y.push(1);
        }
        let m = DiscriminantAnalysis::fit(&x, &y, Covariance::PerClass).unwrap();
        assert_eq!(m.predict(&[0.0, 0.05]), 0);
        assert_eq!(m.predict(&[4.0, 0.0]), 1);
    }

    #[test]
    fn equation1_sign_flips_across_boundary() {
        let (x, y) = blobs();
        let m = DiscriminantAnalysis::fit(&x, &y, Covariance::Pooled).unwrap();
        assert!(m.decision(&[0.0, 0.0]) > 0.0); // favors class 0
        assert!(m.decision(&[4.0, 4.0]) < 0.0); // favors class 1
    }

    #[test]
    fn single_class_rejected() {
        assert!(matches!(
            DiscriminantAnalysis::fit(&[vec![0.0], vec![1.0]], &[3, 3], Covariance::Pooled),
            Err(LearnError::InvalidInput(_))
        ));
    }

    #[test]
    fn lda_boundary_is_linear_qda_is_not_constrained() {
        // For pooled covariance the decision function is linear in x:
        // check additivity on a line.
        let (x, y) = blobs();
        let m = DiscriminantAnalysis::fit(&x, &y, Covariance::Pooled).unwrap();
        let f = |p: &[f64]| m.decision(p);
        let a = f(&[0.0, 0.0]);
        let b = f(&[1.0, 1.0]);
        let mid = f(&[0.5, 0.5]);
        assert!((mid - 0.5 * (a + b)).abs() < 1e-9);
    }
}
