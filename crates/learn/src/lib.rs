//! # edm-learn — the paper's §2 catalogue of learning algorithms
//!
//! One module per algorithm family the paper surveys, each illustrating
//! one of the four "basic ideas" of §2.1:
//!
//! | Basic idea | Modules |
//! |---|---|
//! | Nearest neighbor | [`knn`] |
//! | Model estimation | [`linreg`], [`logistic`], [`tree`], [`forest`], [`mlp`], [`rules`] |
//! | Density estimation | [`discriminant`] (Eq. 1), [`nbayes`] |
//! | Bayesian inference | [`nbayes`], [`gp`] |
//!
//! The five regression families compared by the paper's Fmax-prediction
//! reference \[20\] are all here or in `edm-svm`: nearest neighbor
//! ([`knn::KnnRegressor`]), least-squares fit ([`linreg::LeastSquares`]),
//! regularized LSF ([`linreg::Ridge`]), SVR (`edm_svm::SvrTrainer`), and
//! Gaussian processes ([`gp::GpRegressor`]).
//!
//! [`semi`] covers the semi-supervised case of the paper's Fig. 1
//! (few labels, many unlabeled samples) via self-training.
//!
//! Rule learning ([`rules`]) is the knowledge-discovery backbone of the
//! paper's applications: CN2-SD subgroup discovery drives the
//! test-template refinement of Table 1 and the timing-path diagnosis of
//! Fig. 10; Apriori covers the unsupervised association-rule mining the
//! paper cites as \[26\].

#![forbid(unsafe_code)]

pub mod discriminant;
mod error;
pub mod forest;
pub mod gp;
pub mod knn;
pub mod linreg;
pub mod logistic;
pub mod mlp;
pub mod nbayes;
pub mod rules;
pub mod semi;
pub mod tree;

pub use error::LearnError;
