//! Apriori association-rule mining (the paper's ref \[26\]) —
//! unsupervised rule learning over transactions: find frequent itemsets
//! level-wise, then emit rules `antecedent ⇒ consequent` above a
//! confidence floor.
//!
//! In the EDA substrates, "transactions" are sets of discrete attributes
//! (e.g. the set of cell types on a timing path, the set of tests a die
//! failed), and the mined rules surface frequently co-occurring
//! structure.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::LearnError;

/// A frequent itemset with its support count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// Sorted item ids.
    pub items: Vec<u32>,
    /// Number of transactions containing all items.
    pub support_count: usize,
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Sorted antecedent item ids.
    pub antecedent: Vec<u32>,
    /// Sorted consequent item ids (disjoint from the antecedent).
    pub consequent: Vec<u32>,
    /// Fraction of transactions containing antecedent ∪ consequent.
    pub support: f64,
    /// `P(consequent | antecedent)`.
    pub confidence: f64,
    /// `confidence / P(consequent)` — >1 means positively associated.
    pub lift: f64,
}

/// Parameters for [`mine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AprioriParams {
    /// Minimum support as a fraction of transactions, in `(0, 1]`.
    pub min_support: f64,
    /// Minimum rule confidence, in `(0, 1]`.
    pub min_confidence: f64,
    /// Cap on itemset size (guards combinatorial blowup).
    pub max_len: usize,
}

impl Default for AprioriParams {
    fn default() -> Self {
        AprioriParams { min_support: 0.1, min_confidence: 0.6, max_len: 4 }
    }
}

fn count_support(transactions: &[Vec<u32>], itemset: &[u32]) -> usize {
    transactions.iter().filter(|t| itemset.iter().all(|i| t.binary_search(i).is_ok())).count()
}

/// Mines frequent itemsets and association rules.
///
/// Transactions are item-id sets; they are sorted/deduplicated
/// internally. Returns `(frequent itemsets, rules)`, itemsets ordered by
/// size then lexicographically, rules by descending confidence.
///
/// # Errors
///
/// [`LearnError::InvalidParameter`] if a threshold is outside `(0, 1]`;
/// [`LearnError::InvalidInput`] if there are no transactions.
pub fn mine(
    transactions: &[Vec<u32>],
    params: AprioriParams,
) -> Result<(Vec<FrequentItemset>, Vec<AssociationRule>), LearnError> {
    if transactions.is_empty() {
        return Err(LearnError::InvalidInput("no transactions".into()));
    }
    for (name, v) in
        [("min_support", params.min_support), ("min_confidence", params.min_confidence)]
    {
        if !(v > 0.0 && v <= 1.0) {
            return Err(LearnError::InvalidParameter {
                name,
                value: v,
                constraint: "must be in (0, 1]",
            });
        }
    }
    let txs: Vec<Vec<u32>> = transactions
        .iter()
        .map(|t| {
            let mut s = t.clone();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let n = txs.len();
    let min_count = ((params.min_support * n as f64).ceil() as usize).max(1);

    // L1: frequent single items. BTreeMap, not HashMap: the level-wise
    // join and its `binary_search` prune both require `level` in sorted
    // order, and the iteration below must not depend on a per-process
    // hash seed.
    let mut item_counts: BTreeMap<u32, usize> = BTreeMap::new();
    for t in &txs {
        for &i in t {
            *item_counts.entry(i).or_insert(0) += 1;
        }
    }
    let mut level: Vec<Vec<u32>> =
        item_counts.iter().filter(|&(_, &c)| c >= min_count).map(|(&i, _)| vec![i]).collect();

    let mut frequent: Vec<FrequentItemset> = level
        .iter()
        .map(|is| FrequentItemset { items: is.clone(), support_count: item_counts[&is[0]] })
        .collect();

    // Level-wise growth with the Apriori join (prefix join of sorted sets).
    let mut k = 1;
    while !level.is_empty() && k < params.max_len {
        let mut next: Vec<Vec<u32>> = Vec::new();
        for a in 0..level.len() {
            for b in (a + 1)..level.len() {
                if level[a][..k - 1] != level[b][..k - 1] {
                    continue;
                }
                let mut cand = level[a].clone();
                cand.push(level[b][k - 1]);
                cand.sort_unstable();
                // Prune: all (k)-subsets must be frequent.
                let all_sub_frequent = (0..cand.len()).all(|skip| {
                    let sub: Vec<u32> = cand
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &v)| v)
                        .collect();
                    level.binary_search(&sub).is_ok()
                });
                if !all_sub_frequent {
                    continue;
                }
                let count = count_support(&txs, &cand);
                if count >= min_count {
                    frequent.push(FrequentItemset { items: cand.clone(), support_count: count });
                    next.push(cand);
                }
            }
        }
        next.sort();
        next.dedup();
        level = next;
        k += 1;
    }

    // Rule generation: for each frequent itemset of size >= 2, split into
    // antecedent/consequent (single-item consequents keep output focused).
    let support_of: BTreeMap<Vec<u32>, usize> =
        frequent.iter().map(|f| (f.items.clone(), f.support_count)).collect();
    let mut rules = Vec::new();
    for f in frequent.iter().filter(|f| f.items.len() >= 2) {
        for (ci, &c) in f.items.iter().enumerate() {
            let antecedent: Vec<u32> =
                f.items.iter().enumerate().filter(|&(i, _)| i != ci).map(|(_, &v)| v).collect();
            let ante_count = support_of
                .get(&antecedent)
                .copied()
                .unwrap_or_else(|| count_support(&txs, &antecedent));
            if ante_count == 0 {
                continue;
            }
            let confidence = f.support_count as f64 / ante_count as f64;
            if confidence < params.min_confidence {
                continue;
            }
            let cons_count = item_counts.get(&c).copied().unwrap_or(0);
            let cons_prob = cons_count as f64 / n as f64;
            rules.push(AssociationRule {
                antecedent,
                consequent: vec![c],
                support: f.support_count as f64 / n as f64,
                confidence,
                lift: if cons_prob > 0.0 { confidence / cons_prob } else { 0.0 },
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite confidence")
            .then(b.support.partial_cmp(&a.support).expect("finite support"))
    });
    frequent.sort_by(|a, b| a.items.len().cmp(&b.items.len()).then(a.items.cmp(&b.items)));
    Ok((frequent, rules))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic bread/butter/milk toy market.
    fn market() -> Vec<Vec<u32>> {
        // 0 = bread, 1 = butter, 2 = milk, 3 = beer
        vec![vec![0, 1, 2], vec![0, 1], vec![0, 2], vec![0, 1, 2], vec![3], vec![0, 1, 3]]
    }

    #[test]
    fn frequent_itemsets_found_with_correct_support() {
        let (freq, _) =
            mine(&market(), AprioriParams { min_support: 0.5, min_confidence: 0.5, max_len: 3 })
                .unwrap();
        let f = |items: &[u32]| freq.iter().find(|f| f.items == items).map(|f| f.support_count);
        assert_eq!(f(&[0]), Some(5));
        assert_eq!(f(&[1]), Some(4));
        assert_eq!(f(&[0, 1]), Some(4));
        assert_eq!(f(&[3]), None); // support 2/6 < 0.5
    }

    #[test]
    fn butter_implies_bread() {
        let (_, rules) =
            mine(&market(), AprioriParams { min_support: 0.5, min_confidence: 0.9, max_len: 3 })
                .unwrap();
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec![1] && r.consequent == vec![0])
            .expect("butter => bread should be mined");
        assert!((r.confidence - 1.0).abs() < 1e-12); // butter always with bread
        assert!(r.lift > 1.0);
    }

    #[test]
    fn min_confidence_filters() {
        let (_, strict) =
            mine(&market(), AprioriParams { min_support: 0.3, min_confidence: 0.99, max_len: 3 })
                .unwrap();
        let (_, loose) =
            mine(&market(), AprioriParams { min_support: 0.3, min_confidence: 0.3, max_len: 3 })
                .unwrap();
        assert!(strict.len() < loose.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.99));
    }

    #[test]
    fn duplicate_items_in_transaction_counted_once() {
        let txs = vec![vec![1, 1, 2], vec![1, 2, 2]];
        let (freq, _) =
            mine(&txs, AprioriParams { min_support: 1.0, min_confidence: 0.5, max_len: 2 })
                .unwrap();
        let pair = freq.iter().find(|f| f.items == vec![1, 2]).unwrap();
        assert_eq!(pair.support_count, 2);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(
            mine(&[vec![0]], AprioriParams { min_support: 0.0, ..Default::default() }),
            Err(LearnError::InvalidParameter { name: "min_support", .. })
        ));
        assert!(matches!(mine(&[], AprioriParams::default()), Err(LearnError::InvalidInput(_))));
    }
}
