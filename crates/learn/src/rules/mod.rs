//! Rule learning — the knowledge-discovery backbone of the paper.
//!
//! Supervised rule induction ([`cn2sd`], the paper's ref \[9\]) produces
//! *interpretable, actionable* rules like the one in Fig. 10 ("if the
//! path contains many layer-4-5 and layer-5-6 vias it is slow") and the
//! template-refinement feedback of Table 1. Unsupervised association-rule
//! mining ([`apriori`], ref \[26\]) uncovers frequent patterns without a
//! class label.

pub mod apriori;
pub mod cn2sd;

use serde::{Deserialize, Serialize};

/// A comparison operator in a rule condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Feature value `<=` threshold.
    Le,
    /// Feature value `>` threshold.
    Gt,
}

/// One conjunct of a rule: `feature <op> threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Column index of the feature.
    pub feature: usize,
    /// Comparison operator.
    pub op: Op,
    /// Threshold value.
    pub threshold: f64,
}

impl Condition {
    /// Whether `x` satisfies this condition.
    ///
    /// # Panics
    ///
    /// Panics if `self.feature >= x.len()`.
    pub fn matches(&self, x: &[f64]) -> bool {
        match self.op {
            Op::Le => x[self.feature] <= self.threshold,
            Op::Gt => x[self.feature] > self.threshold,
        }
    }

    /// Renders with a feature-name table, e.g. `"via45 > 30.0"`.
    pub fn display_with(&self, names: &[String]) -> String {
        let name = names.get(self.feature).map(String::as_str).unwrap_or("?");
        let op = match self.op {
            Op::Le => "<=",
            Op::Gt => ">",
        };
        format!("{name} {op} {:.4}", self.threshold)
    }
}

/// A conjunctive classification rule `IF c₁ ∧ c₂ ∧ … THEN class`.
///
/// Quality metadata (coverage/precision/WRAcc) is recorded from the
/// training data so an engineer can judge the rule — the paper's
/// usage-model principle: mining results must be presentable for human
/// decision making.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The conjunction of conditions.
    pub conditions: Vec<Condition>,
    /// Predicted class.
    pub class: i32,
    /// Samples matched on the training data.
    pub coverage: usize,
    /// Fraction of matched samples actually in `class`.
    pub precision: f64,
    /// Weighted relative accuracy at induction time.
    pub wracc: f64,
}

impl Rule {
    /// Whether `x` satisfies every condition.
    pub fn matches(&self, x: &[f64]) -> bool {
        self.conditions.iter().all(|c| c.matches(x))
    }

    /// Renders with a feature-name table, e.g.
    /// `"IF via45 > 30.0 AND via56 > 20.0 THEN class 1 (cov 42, prec 0.93)"`.
    pub fn display_with(&self, names: &[String]) -> String {
        let body = if self.conditions.is_empty() {
            "TRUE".to_string()
        } else {
            self.conditions.iter().map(|c| c.display_with(names)).collect::<Vec<_>>().join(" AND ")
        };
        format!(
            "IF {body} THEN class {} (cov {}, prec {:.2})",
            self.class, self.coverage, self.precision
        )
    }
}

/// An ordered list of rules plus a default class, applied first-match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rules in priority order.
    pub rules: Vec<Rule>,
    /// Class assigned when no rule fires.
    pub default_class: i32,
}

impl RuleSet {
    /// Predicts by first matching rule, else the default class.
    pub fn predict(&self, x: &[f64]) -> i32 {
        self.rules.iter().find(|r| r.matches(x)).map(|r| r.class).unwrap_or(self.default_class)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> Rule {
        Rule {
            conditions: vec![
                Condition { feature: 0, op: Op::Gt, threshold: 1.0 },
                Condition { feature: 1, op: Op::Le, threshold: 0.5 },
            ],
            class: 1,
            coverage: 10,
            precision: 0.9,
            wracc: 0.1,
        }
    }

    #[test]
    fn conjunction_semantics() {
        let r = rule();
        assert!(r.matches(&[2.0, 0.3]));
        assert!(!r.matches(&[0.5, 0.3])); // first conjunct fails
        assert!(!r.matches(&[2.0, 0.7])); // second conjunct fails
    }

    #[test]
    fn display_uses_names() {
        let names = vec!["via45".to_string(), "slack".to_string()];
        let s = rule().display_with(&names);
        assert!(s.contains("via45 > 1.0000"));
        assert!(s.contains("slack <= 0.5000"));
        assert!(s.contains("THEN class 1"));
    }

    #[test]
    fn ruleset_first_match_wins() {
        let rs = RuleSet {
            rules: vec![
                Rule {
                    conditions: vec![Condition { feature: 0, op: Op::Gt, threshold: 5.0 }],
                    class: 2,
                    coverage: 1,
                    precision: 1.0,
                    wracc: 0.0,
                },
                Rule {
                    conditions: vec![Condition { feature: 0, op: Op::Gt, threshold: 1.0 }],
                    class: 1,
                    coverage: 1,
                    precision: 1.0,
                    wracc: 0.0,
                },
            ],
            default_class: 0,
        };
        assert_eq!(rs.predict(&[10.0]), 2);
        assert_eq!(rs.predict(&[3.0]), 1);
        assert_eq!(rs.predict(&[0.0]), 0);
    }

    #[test]
    fn empty_rule_matches_everything() {
        let r = Rule { conditions: vec![], class: 7, coverage: 0, precision: 0.0, wracc: 0.0 };
        assert!(r.matches(&[1.0, 2.0, 3.0]));
        assert!(r.display_with(&[]).contains("IF TRUE"));
    }
}
