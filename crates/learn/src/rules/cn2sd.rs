//! CN2-SD subgroup discovery (Lavrač et al., the paper's ref \[9\]).
//!
//! Induces rules for a target class by beam search over threshold
//! conditions, scoring candidates with *weighted relative accuracy*
//! (WRAcc) and re-weighting covered examples between rules
//! (multiplicative weighted covering), so later rules describe the
//! not-yet-explained part of the class instead of rediscovering the same
//! subgroup.
//!
//! This is the engine behind two of the paper's applications:
//! test-template refinement (Table 1: "learn the properties of the
//! special tests hitting a coverage point, feed them back") and
//! speed-path diagnosis (Fig. 10: "many layer-4-5/5-6 vias ⇒ slow").

use serde::{Deserialize, Serialize};

use crate::rules::{Condition, Op, Rule};
use crate::{error::check_xy, LearnError};

/// Hyperparameters for CN2-SD induction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cn2SdParams {
    /// Beam width of the refinement search.
    pub beam_width: usize,
    /// Maximum conditions per rule.
    pub max_conditions: usize,
    /// Maximum rules to induce for the target class.
    pub max_rules: usize,
    /// Candidate thresholds per feature (taken at quantiles).
    pub n_thresholds: usize,
    /// Multiplicative weight applied to covered positives after each
    /// rule, in `[0, 1)`; `0` reproduces classic CN2 covering.
    pub gamma: f64,
    /// Minimum (unweighted) positive coverage for a rule to be kept.
    pub min_coverage: usize,
}

impl Default for Cn2SdParams {
    fn default() -> Self {
        Cn2SdParams {
            beam_width: 5,
            max_conditions: 3,
            max_rules: 8,
            n_thresholds: 8,
            gamma: 0.5,
            min_coverage: 2,
        }
    }
}

#[derive(Clone)]
struct Candidate {
    conditions: Vec<Condition>,
    wracc: f64,
}

/// Weighted relative accuracy of a condition set for `target` under the
/// current example weights:
/// `WRAcc = p(cov) · (p(target|cov) − p(target))`.
fn wracc(x: &[Vec<f64>], y: &[i32], weights: &[f64], conditions: &[Condition], target: i32) -> f64 {
    let total_w: f64 = weights.iter().sum();
    if total_w <= 0.0 {
        return 0.0;
    }
    let prior_pos: f64 =
        y.iter().zip(weights).filter(|&(&l, _)| l == target).map(|(_, &w)| w).sum::<f64>()
            / total_w;
    let mut cov_w = 0.0;
    let mut cov_pos_w = 0.0;
    for ((xi, &yi), &wi) in x.iter().zip(y).zip(weights) {
        if conditions.iter().all(|c| c.matches(xi)) {
            cov_w += wi;
            if yi == target {
                cov_pos_w += wi;
            }
        }
    }
    if cov_w <= 0.0 {
        return 0.0;
    }
    (cov_w / total_w) * (cov_pos_w / cov_w - prior_pos)
}

/// Candidate thresholds per feature at evenly spaced quantiles of the
/// observed values.
fn candidate_conditions(x: &[Vec<f64>], n_thresholds: usize) -> Vec<Condition> {
    let d = x[0].len();
    let mut out = Vec::new();
    for f in 0..d {
        let mut vals: Vec<f64> = x.iter().map(|r| r[f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let k = n_thresholds.min(vals.len() - 1);
        for t in 1..=k {
            let pos = t * (vals.len() - 1) / (k + 1).max(1);
            let thr = 0.5 * (vals[pos] + vals[(pos + 1).min(vals.len() - 1)]);
            out.push(Condition { feature: f, op: Op::Le, threshold: thr });
            out.push(Condition { feature: f, op: Op::Gt, threshold: thr });
        }
    }
    out
}

/// Induces a rule list for `target` from labeled numeric data.
///
/// Rules are returned in induction order (strongest WRAcc first under the
/// evolving weights), each stamped with its unweighted coverage and
/// precision.
///
/// # Errors
///
/// [`LearnError::InvalidInput`] on inconsistent input or when `target`
/// never appears in `y`; [`LearnError::InvalidParameter`] on a zero beam
/// width or `gamma` outside `[0, 1)`.
pub fn learn_rules(
    x: &[Vec<f64>],
    y: &[i32],
    target: i32,
    params: Cn2SdParams,
) -> Result<Vec<Rule>, LearnError> {
    check_xy(x, y.len())?;
    if params.beam_width == 0 {
        return Err(LearnError::InvalidParameter {
            name: "beam_width",
            value: 0.0,
            constraint: "must be at least 1",
        });
    }
    if !(0.0..1.0).contains(&params.gamma) {
        return Err(LearnError::InvalidParameter {
            name: "gamma",
            value: params.gamma,
            constraint: "must be in [0, 1)",
        });
    }
    if !y.contains(&target) {
        return Err(LearnError::InvalidInput(format!("target class {target} absent from labels")));
    }

    let candidates = candidate_conditions(x, params.n_thresholds);
    let mut weights = vec![1.0; x.len()];
    let mut rules = Vec::new();

    for _ in 0..params.max_rules {
        // Beam search for the best rule under current weights.
        let mut beam = vec![Candidate { conditions: vec![], wracc: 0.0 }];
        let mut best: Option<Candidate> = None;
        for _ in 0..params.max_conditions {
            let mut pool: Vec<Candidate> = Vec::new();
            for cand in &beam {
                for cond in &candidates {
                    // Skip conditions on a feature/op already constrained
                    // the same way (keeps rules readable).
                    if cand.conditions.iter().any(|c| c.feature == cond.feature && c.op == cond.op)
                    {
                        continue;
                    }
                    let mut conds = cand.conditions.clone();
                    conds.push(*cond);
                    let q = wracc(x, y, &weights, &conds, target);
                    pool.push(Candidate { conditions: conds, wracc: q });
                }
            }
            if pool.is_empty() {
                break;
            }
            pool.sort_by(|a, b| b.wracc.partial_cmp(&a.wracc).expect("finite wracc"));
            pool.truncate(params.beam_width);
            if best.as_ref().is_none_or(|b| pool[0].wracc > b.wracc + 1e-12) {
                best = Some(pool[0].clone());
            } else {
                break; // no refinement improved the incumbent
            }
            beam = pool;
        }
        let Some(best) = best else { break };
        if best.wracc <= 1e-9 {
            break;
        }
        // Covering has converged when the search re-finds a rule already
        // in the list (same condition set, order-independent).
        let canonical = |conds: &[Condition]| -> Vec<(usize, Op, u64)> {
            let mut c: Vec<(usize, Op, u64)> =
                conds.iter().map(|c| (c.feature, c.op, c.threshold.to_bits())).collect();
            c.sort_unstable_by(|a, b| {
                (a.0, matches!(a.1, Op::Gt), a.2).cmp(&(b.0, matches!(b.1, Op::Gt), b.2))
            });
            c
        };
        let best_key = canonical(&best.conditions);
        if rules.iter().any(|r: &Rule| canonical(&r.conditions) == best_key) {
            break;
        }
        // Unweighted stats for reporting.
        let mut coverage = 0usize;
        let mut positives = 0usize;
        for (xi, &yi) in x.iter().zip(y) {
            if best.conditions.iter().all(|c| c.matches(xi)) {
                coverage += 1;
                if yi == target {
                    positives += 1;
                }
            }
        }
        if positives < params.min_coverage {
            break;
        }
        rules.push(Rule {
            conditions: best.conditions.clone(),
            class: target,
            coverage,
            precision: positives as f64 / coverage.max(1) as f64,
            wracc: best.wracc,
        });
        // Weighted covering: decay weights of covered positives.
        let mut remaining = 0.0;
        for ((xi, &yi), w) in x.iter().zip(y).zip(weights.iter_mut()) {
            if yi == target && best.conditions.iter().all(|c| c.matches(xi)) {
                *w *= params.gamma;
            }
            if yi == target {
                remaining += *w;
            }
        }
        if remaining < 1e-3 {
            break; // target class fully explained
        }
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class 1 iff f0 > 5 (f1 is noise).
    fn threshold_data() -> (Vec<Vec<f64>>, Vec<i32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 * 0.25; // 0.0 .. 9.75
            x.push(vec![v, (i % 7) as f64]);
            y.push(i32::from(v > 5.0));
        }
        (x, y)
    }

    #[test]
    fn recovers_single_threshold_rule() {
        let (x, y) = threshold_data();
        let rules = learn_rules(&x, &y, 1, Cn2SdParams::default()).unwrap();
        assert!(!rules.is_empty());
        let r = &rules[0];
        assert_eq!(r.class, 1);
        assert!(r.precision > 0.95, "precision {}", r.precision);
        // The discovered rule keys on feature 0 with a Gt condition near 5.
        assert!(r.conditions.iter().any(|c| c.feature == 0 && c.op == Op::Gt));
        // And it actually classifies the data.
        for (xi, &yi) in x.iter().zip(&y) {
            if r.matches(xi) {
                assert_eq!(yi, 1);
            }
        }
    }

    #[test]
    fn recovers_conjunctive_rule() {
        // Class 1 iff f0 > 3 AND f1 > 3 (the Fig. 10 shape: two via
        // counts jointly high).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                x.push(vec![a as f64, b as f64]);
                y.push(i32::from(a > 3 && b > 3));
            }
        }
        let rules = learn_rules(&x, &y, 1, Cn2SdParams::default()).unwrap();
        let r = &rules[0];
        assert!(r.precision > 0.9);
        let feats: Vec<usize> = r.conditions.iter().map(|c| c.feature).collect();
        assert!(feats.contains(&0) && feats.contains(&1), "rule should use both features: {r:?}");
    }

    #[test]
    fn weighted_covering_finds_disjoint_subgroups() {
        // Class 1 occupies two disjoint intervals of f0; covering should
        // produce (at least) two different rules.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f64 * 0.2; // 0..12
            x.push(vec![v]);
            y.push(i32::from((1.0..3.0).contains(&v) || (8.0..10.0).contains(&v)));
        }
        let params = Cn2SdParams { max_rules: 4, gamma: 0.1, ..Default::default() };
        let rules = learn_rules(&x, &y, 1, params).unwrap();
        assert!(rules.len() >= 2, "expected >= 2 rules, got {}", rules.len());
        // The two rules cover different samples.
        let cov = |r: &Rule| -> Vec<usize> {
            x.iter().enumerate().filter(|(_, xi)| r.matches(xi)).map(|(i, _)| i).collect()
        };
        assert_ne!(cov(&rules[0]), cov(&rules[1]));
    }

    #[test]
    fn absent_target_rejected() {
        assert!(matches!(
            learn_rules(&[vec![0.0]], &[0], 1, Cn2SdParams::default()),
            Err(LearnError::InvalidInput(_))
        ));
    }

    #[test]
    fn pure_noise_learns_nothing_strong() {
        // Labels independent of features: WRAcc stays ≈ 0 so no (or only
        // weak, low-precision) rules come out.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 5) as f64]).collect();
        let y: Vec<i32> = (0..40).map(|i| i % 2).collect();
        let rules = learn_rules(&x, &y, 1, Cn2SdParams::default()).unwrap();
        for r in &rules {
            assert!(r.precision < 0.8, "suspiciously strong rule on noise: {r:?}");
        }
    }
}
