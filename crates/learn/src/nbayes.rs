//! Gaussian naive Bayes — the paper's fourth "basic idea" (§2.1):
//! `P(class|x) ∝ P(class)·P(x|class)` with the likelihood factorized
//! under the mutual-independence assumption, each factor a per-feature
//! normal estimated from the feature's column of the dataset.

use serde::{Deserialize, Serialize};

use crate::{error::check_xy, LearnError};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassStats {
    label: i32,
    log_prior: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// A trained Gaussian naive Bayes classifier.
///
/// # Example
///
/// ```
/// use edm_learn::nbayes::GaussianNb;
///
/// let x = vec![vec![0.0, 0.1], vec![0.2, 0.0], vec![5.0, 5.1], vec![5.2, 4.9]];
/// let y = vec![0, 0, 1, 1];
/// let m = GaussianNb::fit(&x, &y)?;
/// assert_eq!(m.predict(&[0.1, 0.1]), 0);
/// assert_eq!(m.predict(&[5.0, 5.0]), 1);
/// # Ok::<(), edm_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    classes: Vec<ClassStats>,
    var_floor: f64,
}

impl GaussianNb {
    /// Fits per-class feature means/variances and class priors.
    ///
    /// Variances are floored at a small fraction of the largest feature
    /// variance so constant features do not produce infinite densities.
    ///
    /// # Errors
    ///
    /// [`LearnError::InvalidInput`] on inconsistent or empty input.
    pub fn fit(x: &[Vec<f64>], y: &[i32]) -> Result<Self, LearnError> {
        let d = check_xy(x, y.len())?;
        let n = x.len();
        let mut labels: Vec<i32> = y.to_vec();
        labels.sort_unstable();
        labels.dedup();
        // Global variance floor.
        let mut global_var = 0.0_f64;
        for j in 0..d {
            let col: Vec<f64> = x.iter().map(|r| r[j]).collect();
            global_var = global_var.max(edm_linalg::variance(&col));
        }
        let var_floor = (1e-9 * global_var).max(1e-12);

        let mut classes = Vec::with_capacity(labels.len());
        for &label in &labels {
            let members: Vec<&Vec<f64>> =
                x.iter().zip(y).filter(|&(_, &l)| l == label).map(|(r, _)| r).collect();
            let m = members.len() as f64;
            let mut means = vec![0.0; d];
            for r in &members {
                for (mu, &v) in means.iter_mut().zip(r.iter()) {
                    *mu += v;
                }
            }
            for mu in &mut means {
                *mu /= m;
            }
            let mut vars = vec![0.0; d];
            for r in &members {
                for ((s, &v), &mu) in vars.iter_mut().zip(r.iter()).zip(&means) {
                    *s += (v - mu) * (v - mu);
                }
            }
            for s in &mut vars {
                *s = (*s / m).max(var_floor);
            }
            classes.push(ClassStats { label, log_prior: (m / n as f64).ln(), means, vars });
        }
        Ok(GaussianNb { classes, var_floor })
    }

    /// Joint log-likelihood `log P(class) + Σⱼ log N(xⱼ; μ, σ²)` per
    /// class, in ascending label order.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn log_joint(&self, x: &[f64]) -> Vec<(i32, f64)> {
        self.classes
            .iter()
            .map(|c| {
                assert_eq!(x.len(), c.means.len(), "feature count mismatch");
                let mut ll = c.log_prior;
                for ((&v, &mu), &var) in x.iter().zip(&c.means).zip(&c.vars) {
                    ll += -0.5
                        * ((v - mu) * (v - mu) / var
                            + var.ln()
                            + (2.0 * std::f64::consts::PI).ln());
                }
                (c.label, ll)
            })
            .collect()
    }

    /// Predicts the maximum-a-posteriori label.
    pub fn predict(&self, x: &[f64]) -> i32 {
        self.log_joint(x)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite log-likelihood"))
            .expect("at least one class")
            .0
    }

    /// Posterior probabilities per class (ascending label order),
    /// normalized with the log-sum-exp trick.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<(i32, f64)> {
        let joint = self.log_joint(x);
        let max = joint.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = joint.iter().map(|&(_, v)| (v - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        joint.iter().zip(&exps).map(|(&(l, _), &e)| (l, e / z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_blobs() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.2],
            vec![0.1, 0.4],
            vec![9.0, 9.0],
            vec![9.5, 8.8],
            vec![9.2, 9.3],
        ];
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = GaussianNb::fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(m.predict(xi), yi);
        }
    }

    #[test]
    fn posterior_sums_to_one() {
        let x = vec![vec![0.0], vec![1.0], vec![4.0], vec![5.0]];
        let y = vec![0, 0, 1, 1];
        let m = GaussianNb::fit(&x, &y).unwrap();
        let p = m.predict_proba(&[2.5]);
        let total: f64 = p.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // midpoint is maximally uncertain
        assert!((p[0].1 - 0.5).abs() < 0.05);
    }

    #[test]
    fn prior_breaks_ties() {
        // Identical likelihoods; class 0 has 3x the prior.
        let x = vec![vec![0.0], vec![0.0], vec![0.0], vec![0.0]];
        let y = vec![0, 0, 0, 1];
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert_eq!(m.predict(&[0.0]), 0);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 10.0], vec![1.0, 11.0]];
        let y = vec![0, 0, 1, 1];
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert_eq!(m.predict(&[1.0, 0.5]), 0);
        assert_eq!(m.predict(&[1.0, 10.5]), 1);
        assert!(m.log_joint(&[1.0, 0.5])[0].1.is_finite());
    }
}
