use std::fmt;

/// Errors from learner training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LearnError {
    /// The training inputs were inconsistent or empty.
    InvalidInput(String),
    /// A hyperparameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An internal linear-algebra step failed (e.g. a singular normal
    /// matrix in least squares, a non-PSD kernel matrix in GP training).
    Numeric(String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::InvalidInput(msg) => write!(f, "invalid training input: {msg}"),
            LearnError::InvalidParameter { name, value, constraint } => {
                write!(f, "parameter {name} = {value} {constraint}")
            }
            LearnError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for LearnError {}

impl From<edm_linalg::LinalgError> for LearnError {
    fn from(e: edm_linalg::LinalgError) -> Self {
        LearnError::Numeric(e.to_string())
    }
}

pub(crate) fn check_xy(x: &[Vec<f64>], n_targets: usize) -> Result<usize, LearnError> {
    if x.is_empty() {
        return Err(LearnError::InvalidInput("empty training set".into()));
    }
    if x.len() != n_targets {
        return Err(LearnError::InvalidInput(format!(
            "{} samples but {} targets",
            x.len(),
            n_targets
        )));
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(LearnError::InvalidInput("ragged sample rows".into()));
    }
    if d == 0 {
        return Err(LearnError::InvalidInput("samples have zero features".into()));
    }
    Ok(d)
}
